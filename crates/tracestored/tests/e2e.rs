//! End-to-end daemon tests over a loopback port.
//!
//! The core contract under test: a daemon fed by N concurrent ingest
//! connections produces a shard directory **byte-identical** to an
//! offline [`FleetMerge`] of the same per-input streams run through an
//! identically configured [`ShardSet`] — and its query replies equal
//! the same analyses computed locally.

use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};

use fstrace::source::FleetMerge;
use fstrace::{AccessMode, FileId, IdOffsets, OpenId, TraceEvent, TraceRecord, UserId};
use tracestored::{
    fetch_metrics, protocol, render_suite, Client, ServerConfig, ShardPolicy, ShardSet,
};

/// A synthetic per-machine stream exercising every event kind, in
/// nondecreasing time order. Streams differ by seed so the merge
/// actually interleaves.
fn machine_stream(seed: u64, n: u64) -> Vec<TraceRecord> {
    let mut out = Vec::new();
    for i in 0..n {
        let t = i * (20 + seed * 7);
        let open = OpenId(i);
        let file = FileId(i % (5 + seed));
        let user = UserId((i % 3) as u32);
        out.push(TraceRecord::new(
            t,
            TraceEvent::Open {
                open_id: open,
                file_id: file,
                user_id: user,
                mode: if i % 2 == 0 {
                    AccessMode::ReadOnly
                } else {
                    AccessMode::WriteOnly
                },
                size: 512 * (i + 1),
                created: i % 4 == 0,
            },
        ));
        if i % 3 == 0 {
            out.push(TraceRecord::new(
                t + 5,
                TraceEvent::Seek {
                    open_id: open,
                    old_pos: 512,
                    new_pos: 0,
                },
            ));
        }
        out.push(TraceRecord::new(
            t + 10,
            TraceEvent::Close {
                open_id: open,
                final_pos: 512 * (i + 1),
            },
        ));
        if i % 7 == 0 {
            out.push(TraceRecord::new(
                t + 10,
                TraceEvent::Unlink {
                    file_id: file,
                    user_id: user,
                },
            ));
        }
        if i % 11 == 0 {
            out.push(TraceRecord::new(
                t + 10,
                TraceEvent::Execve {
                    file_id: file,
                    user_id: user,
                    size: 4096,
                },
            ));
        }
    }
    out
}

fn offsets_for(i: usize) -> IdOffsets {
    IdOffsets {
        open: i as u64 * 100_000,
        file: i as u64 * 100_000,
        user: i as u32 * 1_000,
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tracestored-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The canonical offline result: FleetMerge of the raw streams with
/// the declared offsets, through an identically configured ShardSet.
fn offline_shards(
    streams: &[Vec<TraceRecord>],
    policy: ShardPolicy,
) -> (Vec<TraceRecord>, Vec<PathBuf>) {
    let offsets: Vec<IdOffsets> = (0..streams.len()).map(offsets_for).collect();
    let mut merge = FleetMerge::new(offsets);
    for (i, stream) in streams.iter().enumerate() {
        for rec in stream {
            merge.push(i, rec);
        }
        merge.set_progress(i, u64::MAX);
        merge.finish_input(i);
    }
    let mut merged = Vec::new();
    let merge2 = {
        // Release into both a record vector (for local analyses) and a
        // shard set (for byte comparison) — run the merge twice; it is
        // deterministic by contract.
        let offsets: Vec<IdOffsets> = (0..streams.len()).map(offsets_for).collect();
        let mut m = FleetMerge::new(offsets);
        for (i, stream) in streams.iter().enumerate() {
            for rec in stream {
                m.push(i, rec);
            }
            m.set_progress(i, u64::MAX);
            m.finish_input(i);
        }
        m
    };
    merge.finish(&mut merged).expect("offline merge");
    let mut shards = ShardSet::create(policy).expect("offline shard set");
    merge2.finish(&mut shards).expect("offline merge to shards");
    let sealed = shards.finish().expect("offline seal");
    (merged, sealed.into_iter().map(|s| s.path).collect())
}

fn shard_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("shard dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "tsa"))
        .collect();
    files.sort();
    files
}

fn assert_dirs_byte_identical(server_dir: &Path, offline_dir: &Path) {
    let server = shard_files(server_dir);
    let offline = shard_files(offline_dir);
    let names = |v: &[PathBuf]| -> Vec<String> {
        v.iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect()
    };
    assert_eq!(names(&server), names(&offline), "shard file sets differ");
    for (s, o) in server.iter().zip(&offline) {
        let sb = std::fs::read(s).expect("server shard");
        let ob = std::fs::read(o).expect("offline shard");
        assert_eq!(sb, ob, "shard {} differs from offline merge", s.display());
    }
}

fn stream_as_client(
    addr: &str,
    total: u16,
    index: u16,
    records: &[TraceRecord],
    batch: usize,
) -> u64 {
    let mut client = Client::connect(addr).expect("connect");
    client
        .hello(
            total,
            index,
            offsets_for(index as usize),
            &format!("m{index}"),
        )
        .expect("hello");
    for chunk in records.chunks(batch) {
        client.send_records(chunk).expect("send");
        client
            .progress(chunk.last().expect("non-empty chunk").time.as_ms())
            .expect("progress");
    }
    client.progress(u64::MAX).expect("final progress");
    client.fin().expect("fin")
}

#[test]
fn concurrent_ingest_matches_offline_merge_and_local_analyses() {
    const N: usize = 4;
    let server_dir = tmpdir("main-server");
    let offline_dir = tmpdir("main-offline");
    let policy = ShardPolicy {
        dir: offline_dir.clone(),
        name: "served".into(),
        shard_target_bytes: 16 << 10,
        bucket_ms: 0,
        chunk_target_bytes: 4 << 10,
        compress: true,
    };
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        dir: server_dir.clone(),
        shard_target_bytes: policy.shard_target_bytes,
        bucket_ms: policy.bucket_ms,
        chunk_target_bytes: policy.chunk_target_bytes,
        compress: policy.compress,
        backpressure_records: 1 << 20,
        analysis_windows: vec![600, 10],
        query_jobs: 2,
    };
    let streams: Vec<Vec<TraceRecord>> = (0..N).map(|i| machine_stream(i as u64, 400)).collect();
    let (merged, _) = offline_shards(&streams, policy);

    let (addr, handle) = tracestored::spawn(config).expect("spawn server");
    let addr = addr.to_string();

    // N concurrent ingest clients, deliberately different batch sizes
    // so the push interleaving varies.
    let accepted: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(i, stream)| {
                let addr = addr.clone();
                scope
                    .spawn(move || stream_as_client(&addr, N as u16, i as u16, stream, 37 + i * 53))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    for (i, (&got, stream)) in accepted.iter().zip(&streams).enumerate() {
        assert_eq!(got, stream.len() as u64, "input {i} accepted count");
    }

    // Queries against the live daemon equal local computation.
    let mut q = Client::connect(&addr).expect("query client");
    let local_summary =
        fstrace::TraceSummary::compute(&fstrace::Trace::from_records(merged.clone()));
    assert_eq!(q.summary().expect("summary"), local_summary.to_string());
    let local_suite = fsanalysis::run_analyzers(merged.iter(), &[600, 10]);
    assert_eq!(q.analyze().expect("analyze"), render_suite(&local_suite));
    let (from, to) = (2_000, 6_000);
    let local_range: Vec<TraceRecord> = merged
        .iter()
        .filter(|r| r.time.as_ms() >= from && r.time.as_ms() < to)
        .copied()
        .collect();
    assert_eq!(q.range(from, to).expect("range"), local_range);
    let sweep = q.sweep(&[64, 400]).expect("sweep");
    assert_eq!(sweep.lines().count(), 3, "sweep rows: {sweep}");

    // /metrics over the same listener: per-connection and per-shard
    // counters present.
    let metrics = fetch_metrics(&addr).expect("metrics");
    assert!(
        metrics
            .lines()
            .any(|l| l.starts_with("tracestored_conn_") && l.contains("_records_in ")),
        "no per-connection counters in:\n{metrics}"
    );
    assert!(
        metrics.contains("tracestored_ingest_records"),
        "no ingest counter in:\n{metrics}"
    );

    q.shutdown().expect("shutdown");
    let stats = handle.join().expect("server thread").expect("server run");
    assert_eq!(stats.records_in, merged.len() as u64);
    assert_eq!(stats.records_merged, merged.len() as u64);
    assert!(!stats.shards.is_empty());

    // Per-shard counters appear once shards have sealed. The registry
    // is process-global, so read it directly.
    let snap = obs::global().snapshot();
    assert!(
        snap.counters
            .keys()
            .any(|k| k.starts_with("tracestored.shard.") && k.ends_with(".records")),
        "no per-shard counters registered"
    );

    // The tentpole assertion: server shards == offline merge, byte for
    // byte.
    assert_dirs_byte_identical(&server_dir, &offline_dir);

    let _ = std::fs::remove_dir_all(&server_dir);
    let _ = std::fs::remove_dir_all(&offline_dir);
}

#[test]
fn killed_mid_frame_connection_corrupts_nothing() {
    let server_dir = tmpdir("kill-server");
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        dir: server_dir.clone(),
        compress: false,
        ..ServerConfig::default()
    };
    let survivor = machine_stream(0, 300);
    let victim_sent = machine_stream(1, 100);
    let victim_lost = machine_stream(1, 150)[victim_sent.len()..].to_vec();
    assert!(!victim_lost.is_empty());

    let (addr, handle) = tracestored::spawn(config).expect("spawn server");
    let addr = addr.to_string();

    // The victim: hello, one complete batch, then half a frame, then a
    // dead socket.
    {
        let mut raw = TcpStream::connect(&addr).expect("victim connect");
        let hello = protocol::Hello {
            total_inputs: 2,
            input_index: 1,
            offsets: offsets_for(1),
            name: "victim".into(),
        };
        protocol::write_frame(&mut raw, protocol::OP_HELLO, &hello.encode()).expect("hello");
        protocol::read_reply(&mut raw).expect("hello ack");
        let mut payload = Vec::new();
        protocol::encode_records(&mut payload, &victim_sent);
        protocol::write_frame(&mut raw, protocol::OP_RECORDS, &payload).expect("batch");
        // Half a frame: full length prefix, half the body.
        let mut torn = Vec::new();
        protocol::encode_records(&mut torn, &victim_lost);
        let len = (1 + torn.len()) as u32;
        raw.write_all(&len.to_le_bytes()).expect("torn prefix");
        raw.write_all(&[protocol::OP_RECORDS]).expect("torn op");
        raw.write_all(&torn[..torn.len() / 2]).expect("torn body");
        // Drop: connection dies mid-frame.
    }

    // The survivor streams normally.
    let accepted = stream_as_client(&addr, 2, 0, &survivor, 64);
    assert_eq!(accepted, survivor.len() as u64);

    // Wait until the server has counted every complete record — the
    // victim's torn frame must never be part of that count.
    let expect = (survivor.len() + victim_sent.len()) as u64;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let metrics = fetch_metrics(&addr).expect("metrics");
        let got: u64 = metrics
            .lines()
            .find_map(|l| l.strip_prefix("tracestored_ingest_records "))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        if got >= expect {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never reached {expect} records (at {got})"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    let mut q = Client::connect(&addr).expect("query client");
    q.shutdown().expect("shutdown");
    let stats = handle.join().expect("server thread").expect("server run");
    assert_eq!(stats.records_in, expect, "torn frame leaked records");

    // Every shard verifies clean and the data equals an offline merge
    // of [survivor, victim's *complete* batches only].
    let (merged, _) = offline_shards(
        &[survivor, victim_sent],
        ShardPolicy {
            dir: tmpdir("kill-offline"),
            name: "served".into(),
            compress: false,
            ..ShardPolicy::default()
        },
    );
    let mut back = Vec::new();
    for path in shard_files(&server_dir) {
        let archive = tracestore::Archive::open(&path).expect("shard opens");
        assert!(!archive.footer_rebuilt(), "shard lost its footer");
        for rec in archive.records(tracestore::Corruption::Fail) {
            back.push(rec.expect("shard record decodes"));
        }
    }
    assert_eq!(back, merged);

    let _ = std::fs::remove_dir_all(&server_dir);
}

#[test]
fn rotation_and_backpressure_under_small_limits() {
    let server_dir = tmpdir("rotate-server");
    let offline_dir = tmpdir("rotate-offline");
    let policy = ShardPolicy {
        dir: offline_dir.clone(),
        name: "served".into(),
        shard_target_bytes: 4 << 10,
        bucket_ms: 0,
        chunk_target_bytes: 1 << 10,
        compress: false,
    };
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        dir: server_dir.clone(),
        shard_target_bytes: policy.shard_target_bytes,
        bucket_ms: policy.bucket_ms,
        chunk_target_bytes: policy.chunk_target_bytes,
        compress: policy.compress,
        // Tiny: forces the faster input through the backpressure wait.
        backpressure_records: 64,
        analysis_windows: vec![600, 10],
        query_jobs: 2,
    };
    let streams: Vec<Vec<TraceRecord>> = (0..2).map(|i| machine_stream(i as u64, 1500)).collect();
    let (merged, _) = offline_shards(&streams, policy);

    let (addr, handle) = tracestored::spawn(config).expect("spawn server");
    let addr = addr.to_string();
    std::thread::scope(|scope| {
        for (i, stream) in streams.iter().enumerate() {
            let addr = addr.clone();
            scope.spawn(move || stream_as_client(&addr, 2, i as u16, stream, 100));
        }
    });
    Client::connect(&addr)
        .expect("query client")
        .shutdown()
        .expect("shutdown");
    let stats = handle.join().expect("server thread").expect("server run");
    assert!(
        stats.shards.len() > 1,
        "expected shard rotation, got {}",
        stats.shards.len()
    );
    assert_eq!(stats.records_merged, merged.len() as u64);
    assert_dirs_byte_identical(&server_dir, &offline_dir);

    let _ = std::fs::remove_dir_all(&server_dir);
    let _ = std::fs::remove_dir_all(&offline_dir);
}
