//! Sharded archive storage: the daemon's append path.
//!
//! A [`ShardSet`] is a [`RecordSink`] that splits one logical record
//! stream — here, the server-side merge output — into a directory of
//! ordinary `.tsa` archives ("shards"). Each shard is a complete,
//! self-describing [`tracestore`] archive: footer, chunk index, CRCs.
//! Nothing downstream needs to know it was written by a daemon; the
//! existing `Archive` reader, `tracefmt`, and the pipelined analyzers
//! all work on a shard as-is.
//!
//! Rotation rules, in the order they are checked per record:
//!
//! 1. **Time bucket** — with `bucket_ms > 0`, a record whose
//!    `time / bucket_ms` differs from the open shard's bucket seals the
//!    shard first. Shard boundaries then align to wall-clock buckets,
//!    so a time-range query can skip whole shards by name order.
//! 2. **Time regression** — a record older than the last one written
//!    seals the shard. The chunk codec delta-encodes timestamps and
//!    cannot represent a negative step; a fresh shard restarts the
//!    delta base at zero. (The merge output is nondecreasing, so this
//!    fires only for degenerate single-input sessions that send
//!    unsorted data — but it must never corrupt a file.)
//! 3. **Size** — once a shard's *flushed* bytes reach
//!    `shard_target_bytes`, it seals after the current record. The
//!    check uses flushed bytes, so rotation happens on chunk
//!    granularity: a shard is N whole chunks, never a torn one.
//!
//! **Fsync-on-seal**: sealing flushes the final chunk, writes the
//! footer, and calls `File::sync_all` before the shard is published to
//! queries. Records in the open shard live in the in-memory `tail` and
//! are served from there; on a crash, the open shard's file may be
//! footer-less but every *sealed* shard is durable and verifies clean.

use std::fs::{self, File};
use std::io::{self, BufWriter};
use std::path::PathBuf;

use fstrace::{RecordSink, TraceRecord};
use tracestore::{ArchiveOptions, ArchiveWriter};

/// Where and how a [`ShardSet`] writes.
#[derive(Debug, Clone)]
pub struct ShardPolicy {
    /// Directory the shards are written into (created if missing).
    pub dir: PathBuf,
    /// Stem of every shard file name: `{name}-{seq:05}.tsa`.
    pub name: String,
    /// Flushed bytes that seal a shard (rule 3). Chunk-granular.
    pub shard_target_bytes: u64,
    /// Wall-clock bucket width for rule 1; `0` disables bucketing.
    pub bucket_ms: u64,
    /// Chunk rotation size inside each shard.
    pub chunk_target_bytes: usize,
    /// Compress chunk payloads.
    pub compress: bool,
}

impl Default for ShardPolicy {
    fn default() -> Self {
        ShardPolicy {
            dir: PathBuf::from("."),
            name: "served".into(),
            shard_target_bytes: 8 << 20,
            bucket_ms: 0,
            chunk_target_bytes: 64 << 10,
            compress: true,
        }
    }
}

/// One durable shard: sealed, fsynced, immutable.
#[derive(Debug, Clone)]
pub struct SealedShard {
    /// Path of the `.tsa` file.
    pub path: PathBuf,
    /// Records in the shard.
    pub records: u64,
    /// Total file size in bytes.
    pub bytes: u64,
    /// Timestamp of the first record, in ms.
    pub first_ms: u64,
    /// Timestamp of the last record, in ms.
    pub last_ms: u64,
}

struct OpenShard {
    writer: ArchiveWriter<BufWriter<File>>,
    path: PathBuf,
    bucket: u64,
    first_ms: u64,
    last_ms: u64,
}

/// A rotating set of archive shards; the server's [`RecordSink`].
pub struct ShardSet {
    policy: ShardPolicy,
    open: Option<OpenShard>,
    sealed: Vec<SealedShard>,
    seq: u64,
    /// Records of the open (unsealed) shard, for live-tail queries.
    tail: Vec<TraceRecord>,
}

impl ShardSet {
    /// Creates the set, making `policy.dir` if needed.
    pub fn create(policy: ShardPolicy) -> io::Result<ShardSet> {
        fs::create_dir_all(&policy.dir)?;
        Ok(ShardSet {
            policy,
            open: None,
            sealed: Vec::new(),
            seq: 0,
            tail: Vec::new(),
        })
    }

    fn shard_path(&self, seq: u64) -> PathBuf {
        self.policy
            .dir
            .join(format!("{}-{:05}.tsa", self.policy.name, seq))
    }

    fn open_shard(&mut self, bucket: u64, first_ms: u64) -> io::Result<()> {
        let path = self.shard_path(self.seq);
        let file = File::create(&path)?;
        let writer = ArchiveWriter::new(
            BufWriter::new(file),
            ArchiveOptions {
                chunk_target_bytes: self.policy.chunk_target_bytes,
                compress: self.policy.compress,
                name: format!("{}-{:05}", self.policy.name, self.seq),
            },
        )?;
        self.open = Some(OpenShard {
            writer,
            path,
            bucket,
            first_ms,
            last_ms: first_ms,
        });
        self.seq += 1;
        Ok(())
    }

    /// Seals the open shard, if any: final chunk, footer, `fsync`.
    pub fn seal_open(&mut self) -> io::Result<()> {
        let Some(shard) = self.open.take() else {
            return Ok(());
        };
        let seq = self.sealed.len();
        let _fsync = obs::global().span("tracestored.shard.seal").start();
        let (buf, summary) = shard.writer.finish()?;
        let file = buf.into_inner().map_err(|e| e.into_error())?;
        file.sync_all()?;
        obs::global().counter("tracestored.shard.seals").inc();
        obs::global()
            .counter(&format!("tracestored.shard.{seq}.records"))
            .add(summary.records);
        obs::global()
            .counter(&format!("tracestored.shard.{seq}.bytes"))
            .add(summary.bytes);
        self.sealed.push(SealedShard {
            path: shard.path,
            records: summary.records,
            bytes: summary.bytes,
            first_ms: shard.first_ms,
            last_ms: shard.last_ms,
        });
        self.tail.clear();
        Ok(())
    }

    /// Shards sealed so far.
    pub fn sealed(&self) -> &[SealedShard] {
        &self.sealed
    }

    /// Records written into the still-open shard (the live tail).
    pub fn tail(&self) -> &[TraceRecord] {
        &self.tail
    }

    /// Total records accepted, sealed and tail together.
    pub fn records(&self) -> u64 {
        self.sealed.iter().map(|s| s.records).sum::<u64>() + self.tail.len() as u64
    }

    /// Seals the last shard and returns the full durable set.
    pub fn finish(mut self) -> io::Result<Vec<SealedShard>> {
        self.seal_open()?;
        Ok(self.sealed)
    }
}

impl RecordSink for ShardSet {
    fn write_record(&mut self, rec: &TraceRecord) -> io::Result<()> {
        let ms = rec.time.as_ms();
        // `bucket_ms == 0` disables bucketing: everything in bucket 0.
        let bucket = ms.checked_div(self.policy.bucket_ms).unwrap_or(0);
        if let Some(open) = &self.open {
            // Rules 1 and 2: bucket change or time regression.
            if open.bucket != bucket || ms < open.last_ms {
                self.seal_open()?;
            }
        }
        if self.open.is_none() {
            self.open_shard(bucket, ms)?;
        }
        let open = self.open.as_mut().expect("shard opened above");
        open.writer.write(rec)?;
        open.last_ms = ms;
        self.tail.push(*rec);
        obs::global().counter("tracestored.shard.records_in").inc();
        // Rule 3: size, on flushed (chunk-granular) bytes.
        if open.writer.bytes_flushed() >= self.policy.shard_target_bytes {
            self.seal_open()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstrace::{FileId, OpenId, TraceEvent, UserId};
    use tracestore::{Archive, Corruption};

    fn rec(ms: u64, open: u64) -> TraceRecord {
        TraceRecord::new(
            ms,
            TraceEvent::Open {
                open_id: OpenId(open),
                file_id: FileId(open),
                user_id: UserId(1),
                mode: fstrace::AccessMode::ReadOnly,
                size: 1024,
                created: false,
            },
        )
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tracestored-shard-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn rotates_on_size_and_rereads_everything() {
        let dir = tmpdir("size");
        let mut set = ShardSet::create(ShardPolicy {
            dir: dir.clone(),
            name: "t".into(),
            shard_target_bytes: 2048,
            chunk_target_bytes: 512,
            compress: false,
            bucket_ms: 0,
        })
        .unwrap();
        let records: Vec<_> = (0..2000).map(|i| rec(i * 10, i)).collect();
        for r in &records {
            set.write_record(r).unwrap();
        }
        let sealed = set.finish().unwrap();
        assert!(
            sealed.len() > 1,
            "expected rotation, got {} shard(s)",
            sealed.len()
        );
        let mut back = Vec::new();
        for shard in &sealed {
            let archive = Archive::open(&shard.path).unwrap();
            assert!(!archive.footer_rebuilt());
            for r in archive.records(Corruption::Fail) {
                back.push(r.unwrap());
            }
        }
        assert_eq!(back, records);
        // Shard metadata matches contents.
        assert_eq!(sealed.iter().map(|s| s.records).sum::<u64>(), 2000);
        assert!(sealed.windows(2).all(|w| w[0].last_ms <= w[1].first_ms));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotates_on_time_bucket() {
        let dir = tmpdir("bucket");
        let mut set = ShardSet::create(ShardPolicy {
            dir: dir.clone(),
            name: "b".into(),
            bucket_ms: 1000,
            ..ShardPolicy::default()
        })
        .unwrap();
        for i in 0..10u64 {
            set.write_record(&rec(i * 500, i)).unwrap(); // Buckets 0,0,1,1,2,...
        }
        let sealed = set.finish().unwrap();
        assert_eq!(sealed.len(), 5);
        assert!(sealed.iter().all(|s| s.records == 2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn time_regression_seals_instead_of_corrupting() {
        let dir = tmpdir("regress");
        let mut set = ShardSet::create(ShardPolicy {
            dir: dir.clone(),
            name: "r".into(),
            ..ShardPolicy::default()
        })
        .unwrap();
        set.write_record(&rec(5000, 0)).unwrap();
        set.write_record(&rec(100, 1)).unwrap(); // Goes backwards.
        set.write_record(&rec(200, 2)).unwrap();
        let sealed = set.finish().unwrap();
        assert_eq!(sealed.len(), 2);
        for shard in &sealed {
            let archive = Archive::open(&shard.path).unwrap();
            let (recs, report) = archive.read_all();
            assert_eq!(report.bad_chunks.len(), 0);
            assert!(!recs.is_empty());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tail_serves_unsealed_records() {
        let dir = tmpdir("tail");
        let mut set = ShardSet::create(ShardPolicy {
            dir: dir.clone(),
            name: "l".into(),
            ..ShardPolicy::default()
        })
        .unwrap();
        let r = rec(10, 1);
        set.write_record(&r).unwrap();
        assert_eq!(set.tail(), &[r]);
        assert_eq!(set.records(), 1);
        set.seal_open().unwrap();
        assert!(set.tail().is_empty());
        assert_eq!(set.records(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
