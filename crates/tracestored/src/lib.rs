//! `tracestored`: a multi-client trace-serving daemon over sharded
//! archives.
//!
//! The paper's pipeline was offline: collect on three machines,
//! post-process later. This crate is the long-running form of the same
//! pipeline — a TCP daemon (std-net only; the build environment is
//! offline) that
//!
//! * **ingests** many concurrent connections, each one input of a
//!   deterministic watermark merge ([`fstrace::FleetMerge`]), with
//!   per-connection backpressure;
//! * **stores** the merged stream as a directory of rotating `.tsa`
//!   shards ([`shard::ShardSet`]), each a complete self-verifying
//!   [`tracestore`] archive, fsynced when sealed;
//! * **serves** Table-III summaries, time-range reads, the Section-5
//!   analyzer suite, and cache-grid sweeps over sealed shards plus the
//!   live tail, via chunk-parallel pipelined reads;
//! * **reports** per-connection and per-shard [`obs`] metrics on a
//!   plain-text `/metrics` HTTP GET over the same listener.
//!
//! Protocol frames, shard rotation rules, backpressure and failure
//! modes are specified in DESIGN.md §17; the e2e contract (server-side
//! shards byte-identical to an offline merge, served analyses equal to
//! local ones) lives in `tests/e2e.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod query;
pub mod server;
pub mod shard;

pub use client::{fetch_metrics, Client, IngestSink};
pub use query::{render_suite, DataSnapshot};
pub use server::{spawn, Server, ServerConfig, ServerStats};
pub use shard::{SealedShard, ShardPolicy, ShardSet};
