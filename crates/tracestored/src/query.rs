//! Query execution over a shard snapshot: sealed archives + live tail.
//!
//! Queries never run under the server's ingest lock. A handler takes a
//! [`DataSnapshot`] — the sealed shard *paths* plus a clone of the
//! open shard's tail — and releases the lock before touching disk.
//! Sealed shards are immutable (fsynced, never rewritten), so reading
//! them lock-free is safe; the tail clone freezes the moving part.
//!
//! The renderers here are the wire format of text replies. The e2e
//! tests assert a served reply equals `render_suite(run_analyzers(..))`
//! of the same records computed locally, so keep them deterministic:
//! fixed field order, fixed float precision, no timestamps.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use fsanalysis::{AnalysisStream, AnalysisSuite};
use fstrace::{Timestamp, Trace, TraceRecord, TraceSummary};
use tracestore::{Archive, Corruption};

/// A consistent view of the served data at one instant.
#[derive(Debug, Clone, Default)]
pub struct DataSnapshot {
    /// Sealed shard files, in stream order.
    pub shards: Vec<PathBuf>,
    /// Records of the still-open shard, in stream order.
    pub tail: Vec<TraceRecord>,
}

fn archive_error(path: &Path, e: impl std::fmt::Display) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("shard {}: {e}", path.display()),
    )
}

fn open_shard(path: &Path) -> io::Result<Archive> {
    Archive::open(path).map_err(|e| archive_error(path, e))
}

impl DataSnapshot {
    /// Decodes every record — sealed shards via chunk-parallel
    /// pipelined reads, then the tail — into one vector in stream
    /// order.
    pub fn materialize(&self, jobs: usize) -> io::Result<Vec<TraceRecord>> {
        let mut out = Vec::new();
        for path in &self.shards {
            let archive = Arc::new(open_shard(path)?);
            out.reserve(archive.meta().total_records as usize);
            for block in archive.pipelined(Corruption::Fail, jobs) {
                let block = block.map_err(|e| archive_error(path, e))?;
                for i in 0..block.len() {
                    out.push(block.get(i));
                }
            }
        }
        out.extend_from_slice(&self.tail);
        Ok(out)
    }

    /// Runs the full Section-5 analyzer suite in one streaming pass:
    /// pipelined block reads over each sealed shard, then the tail.
    /// Bit-identical to `run_analyzers` over [`Self::materialize`].
    pub fn analyze(&self, window_secs: &[u64], jobs: usize) -> io::Result<AnalysisSuite> {
        let mut stream = AnalysisStream::new(window_secs);
        for path in &self.shards {
            let archive = Arc::new(open_shard(path)?);
            for block in archive.pipelined(Corruption::Fail, jobs) {
                let block = block.map_err(|e| archive_error(path, e))?;
                stream.observe_block(&block);
            }
        }
        for rec in &self.tail {
            stream.observe(rec);
        }
        Ok(stream.finish())
    }

    /// Computes the Table-III whole-trace summary.
    pub fn summary(&self, jobs: usize) -> io::Result<TraceSummary> {
        let records = self.materialize(jobs)?;
        Ok(TraceSummary::compute(&Trace::from_records(records)))
    }

    /// Records with `from_ms <= time < to_ms`. The footer chunk index
    /// turns this into a seek: shards and chunks whose time ranges
    /// miss the window are never decoded.
    pub fn range(&self, from_ms: u64, to_ms: u64) -> io::Result<Vec<TraceRecord>> {
        let from_ticks = Timestamp::from_ms(from_ms).as_ticks();
        let to_ticks = Timestamp::from_ms(to_ms).as_ticks();
        let mut out = Vec::new();
        for path in &self.shards {
            let archive = open_shard(path)?;
            for rec in archive.records_in_ticks(from_ticks, to_ticks, Corruption::Fail) {
                let rec = rec.map_err(|e| archive_error(path, e))?;
                let ms = rec.time.as_ms();
                if ms >= from_ms && ms < to_ms {
                    out.push(rec);
                }
            }
        }
        out.extend(
            self.tail
                .iter()
                .filter(|r| r.time.as_ms() >= from_ms && r.time.as_ms() < to_ms),
        );
        Ok(out)
    }

    /// Runs a cache-size sweep (LRU, default policy) over the served
    /// trace, one cell per entry of `sizes_kb`.
    pub fn sweep(&self, sizes_kb: &[u64], jobs: usize) -> io::Result<String> {
        let records = self.materialize(jobs)?;
        let configs: Vec<cachesim::CacheConfig> = sizes_kb
            .iter()
            .map(|&kb| cachesim::CacheConfig {
                cache_bytes: kb * 1024,
                ..cachesim::CacheConfig::default()
            })
            .collect();
        let results = cachesim::sweep::run_source(|| records.iter(), &configs, jobs);
        let mut out = String::from("cache_kb  miss_ratio  disk_reads  disk_writes\n");
        for (config, metrics) in &results {
            out.push_str(&format!(
                "{:>8}  {:>10.6}  {:>10}  {:>11}\n",
                config.cache_bytes / 1024,
                metrics.miss_ratio(),
                metrics.disk_reads,
                metrics.disk_writes,
            ));
        }
        Ok(out)
    }
}

/// Renders an [`AnalysisSuite`] as the deterministic text the daemon
/// sends over the wire. One figure per line, `{:.6}` floats — equality
/// of two renders is the e2e test's definition of "analyses agree".
pub fn render_suite(suite: &AnalysisSuite) -> String {
    // Several accessors sort lazily and take `&mut self`; work on a
    // clone so rendering never mutates the caller's suite.
    let mut s = suite.clone();
    let mut out = String::new();
    out.push_str("== activity ==\n");
    out.push_str(&format!("total_bytes: {}\n", s.activity.total_bytes));
    out.push_str(&format!("total_users: {}\n", s.activity.total_users));
    out.push_str(&format!("duration_secs: {:.6}\n", s.activity.duration_secs));
    out.push_str(&format!(
        "avg_throughput: {:.6}\n",
        s.activity.avg_throughput
    ));
    out.push_str("== sequentiality ==\n");
    out.push_str(&format!(
        "total_accesses: {}\n",
        s.sequentiality.total_accesses()
    ));
    out.push_str(&format!("total_bytes: {}\n", s.sequentiality.total_bytes()));
    out.push_str(&format!(
        "whole_file_fraction: {:.6}\n",
        s.sequentiality.whole_file_fraction()
    ));
    out.push_str("== run_lengths ==\n");
    out.push_str(&format!("runs: {}\n", s.run_lengths.by_runs.total_weight()));
    for kb in [1u64, 4, 16] {
        out.push_str(&format!(
            "by_runs_le_{}k: {:.6}\n",
            kb,
            s.run_lengths.by_runs.fraction_le(kb * 1024)
        ));
    }
    out.push_str("== sizes ==\n");
    for kb in [1u64, 4, 16, 64] {
        out.push_str(&format!(
            "accesses_le_{}k: {:.6}\n",
            kb,
            s.sizes.fraction_of_accesses_le(kb * 1024)
        ));
    }
    out.push_str("== open_times ==\n");
    out.push_str(&format!(
        "median_ms: {}\n",
        s.open_times
            .median_ms()
            .map_or_else(|| "none".into(), |v| v.to_string())
    ));
    out.push_str(&format!(
        "le_10s: {:.6}\n",
        s.open_times.fraction_le_secs(10.0)
    ));
    out.push_str("== lifetimes ==\n");
    out.push_str(&format!("events: {}\n", s.lifetimes.events.len()));
    out.push_str(&format!("censored: {}\n", s.lifetimes.censored));
    out.push_str(&format!(
        "by_files_le_100s: {:.6}\n",
        s.lifetimes.by_files.fraction_le(100_000)
    ));
    out.push_str("== gaps ==\n");
    out.push_str(&format!("gaps: {}\n", s.gaps.gaps_ms.total_weight()));
    out.push_str(&format!("le_1s: {:.6}\n", s.gaps.fraction_le_secs(1.0)));
    out.push_str("== users ==\n");
    out.push_str(&format!("users: {}\n", s.users.users.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{ShardPolicy, ShardSet};
    use fsanalysis::run_analyzers;
    use fstrace::{AccessMode, FileId, OpenId, RecordSink, TraceEvent, UserId};

    fn synthetic(n: u64) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for i in 0..n {
            let t = i * 40;
            out.push(TraceRecord::new(
                t,
                TraceEvent::Open {
                    open_id: OpenId(i),
                    file_id: FileId(i % 7),
                    user_id: UserId((i % 3) as u32),
                    mode: AccessMode::ReadOnly,
                    size: 2048 + i * 16,
                    created: i % 5 == 0,
                },
            ));
            out.push(TraceRecord::new(
                t + 20,
                TraceEvent::Close {
                    open_id: OpenId(i),
                    final_pos: 2048 + i * 16,
                },
            ));
        }
        out.sort_by_key(|r| r.time);
        out
    }

    fn snapshot_of(records: &[TraceRecord], split: usize) -> (DataSnapshot, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("tracestored-query-{}-{split}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut set = ShardSet::create(ShardPolicy {
            dir: dir.clone(),
            name: "q".into(),
            ..ShardPolicy::default()
        })
        .unwrap();
        for rec in &records[..split] {
            set.write_record(rec).unwrap();
        }
        set.seal_open().unwrap();
        let shards = set.finish().unwrap();
        (
            DataSnapshot {
                shards: shards.into_iter().map(|s| s.path).collect(),
                tail: records[split..].to_vec(),
            },
            dir,
        )
    }

    #[test]
    fn materialize_analyze_and_range_cover_shards_plus_tail() {
        let records = synthetic(300);
        let (snap, dir) = snapshot_of(&records, 400);
        assert_eq!(snap.materialize(2).unwrap(), records);

        let local = run_analyzers(records.iter(), &[600, 10]);
        let served = snap.analyze(&[600, 10], 2).unwrap();
        assert_eq!(render_suite(&served), render_suite(&local));

        let from = 1000;
        let to = 5000;
        let expect: Vec<_> = records
            .iter()
            .filter(|r| r.time.as_ms() >= from && r.time.as_ms() < to)
            .copied()
            .collect();
        assert_eq!(snap.range(from, to).unwrap(), expect);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_matches_local_compute() {
        let records = synthetic(100);
        let (snap, dir) = snapshot_of(&records, 150);
        let local = TraceSummary::compute(&Trace::from_records(records));
        assert_eq!(snap.summary(2).unwrap().to_string(), local.to_string());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_is_deterministic_and_does_not_mutate() {
        let records = synthetic(50);
        let suite = run_analyzers(records.iter(), &[600, 10]);
        let a = render_suite(&suite);
        let b = render_suite(&suite);
        assert_eq!(a, b);
        assert!(a.contains("whole_file_fraction"));
    }

    #[test]
    fn sweep_renders_one_row_per_size() {
        let records = synthetic(80);
        let (snap, dir) = snapshot_of(&records, 100);
        let table = snap.sweep(&[64, 400], 2).unwrap();
        assert_eq!(table.lines().count(), 3);
        assert!(table.contains("miss_ratio"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
