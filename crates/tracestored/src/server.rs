//! The daemon: concurrent ingest into one merged, sharded archive set,
//! plus queries over the wire.
//!
//! # Architecture
//!
//! One listener thread accepts; each connection gets a handler thread.
//! All ingest state — the [`FleetMerge`], per-input bookkeeping, the
//! [`ShardSet`] — lives behind a single mutex with a condvar. That is
//! deliberate: the merge is a *serializing* data structure (its whole
//! point is one deterministic output order), so a finer lock would buy
//! nothing on the append path. Queries copy a [`DataSnapshot`] out
//! under the lock and run on the handler thread without it, so an
//! expensive analyzer pass never stalls ingest.
//!
//! # Determinism
//!
//! Each connection is one merge input. Handlers remap their own records
//! by the offsets declared in `hello` *before* pushing (the merge's own
//! offsets are identity), then rely on [`FleetMerge`]'s
//! schedule-independence: the released stream is byte-identical to an
//! offline merge of the same per-input streams, no matter how the
//! connection threads interleave. The e2e tests assert exactly that
//! against [`fstrace::FleetMerge`] run offline.
//!
//! # Backpressure
//!
//! The merge buffers only what the slowest input gates. A connection
//! that runs far ahead must wait, or an unbalanced fleet turns the
//! daemon into an unbounded buffer. After pushing a batch, a handler
//! waits on the condvar while the merge holds more than
//! `backpressure_records` *and* its own progress is strictly above the
//! fleet watermark. The strict comparison is the no-deadlock argument:
//! the gating input (progress equal to the watermark) never waits, so
//! it keeps advancing the watermark, which releases records and wakes
//! the others.
//!
//! # Failure modes
//!
//! A connection that dies mid-frame loses at most that frame: frames
//! are decoded only when complete, so a partial `records` batch is
//! discarded wholesale and the input is force-finished — prior batches
//! stay merged, shards stay verifiable. A `shutdown` op closes ingest,
//! force-finishes stragglers, drains the merge, seals every shard
//! (fsync), waits out in-flight queries, then stops the listener.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use fstrace::codec::{get_varint, put_varint};
use fstrace::source::remap_record;
use fstrace::{FleetMerge, IdOffsets, Timestamp};

use crate::protocol::{self, Hello};
use crate::query::{render_suite, DataSnapshot};
use crate::shard::{SealedShard, ShardPolicy, ShardSet};

/// How often an idle handler checks the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

/// Everything the daemon needs to start.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:0`.
    pub addr: String,
    /// Shard directory.
    pub dir: PathBuf,
    /// Shard stem and rotation rules; see [`ShardPolicy`].
    pub shard_target_bytes: u64,
    /// Wall-clock shard bucketing; `0` disables.
    pub bucket_ms: u64,
    /// Chunk rotation size inside each shard.
    pub chunk_target_bytes: usize,
    /// Compress chunk payloads.
    pub compress: bool,
    /// Merge occupancy above which a non-gating input waits.
    pub backpressure_records: usize,
    /// Activity windows for `analyze` queries (seconds).
    pub analysis_windows: Vec<u64>,
    /// Worker threads for pipelined query reads.
    pub query_jobs: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            dir: PathBuf::from("tracestored-data"),
            shard_target_bytes: 8 << 20,
            bucket_ms: 0,
            chunk_target_bytes: 64 << 10,
            compress: true,
            backpressure_records: 1 << 20,
            analysis_windows: vec![600, 10],
            query_jobs: 4,
        }
    }
}

/// What one completed daemon run produced.
#[derive(Debug)]
pub struct ServerStats {
    /// Every sealed shard, in stream order.
    pub shards: Vec<SealedShard>,
    /// Records accepted across all inputs (pre-merge count).
    pub records_in: u64,
    /// Records released through the merge into shards.
    pub records_merged: u64,
}

/// Per-input ingest bookkeeping the merge does not expose.
struct InputState {
    attached: bool,
    finished: bool,
    /// Progress promise, in ticks (quantized like the merge's own).
    progress_ticks: u64,
    /// Records accepted from this input.
    accepted: u64,
}

struct Ingest {
    merge: Option<FleetMerge>,
    inputs: Vec<InputState>,
    shards: Option<ShardSet>,
    queries_active: usize,
    /// Set by `shutdown`: refuse new ingest, wake waiters.
    closed: bool,
    records_in: u64,
}

struct Shared {
    state: Mutex<Ingest>,
    cond: Condvar,
    shutdown: AtomicBool,
    conn_seq: AtomicU64,
    config: ServerConfig,
}

impl Shared {
    /// Mirrors `FleetMerge::watermark()` from our own bookkeeping (the
    /// merge keeps its per-input progress private): minimum progress
    /// over every unfinished input, attached or not — an input that has
    /// not connected yet gates at zero, exactly as the merge sees it.
    fn fleet_watermark_ticks(inputs: &[InputState]) -> Option<u64> {
        inputs
            .iter()
            .filter(|s| !s.finished)
            .map(|s| s.progress_ticks)
            .min()
    }
}

/// The daemon. [`Server::bind`] then [`Server::run`]; `run` blocks
/// until a client sends the `shutdown` op.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and prepares the shard directory.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let shards = ShardSet::create(ShardPolicy {
            dir: config.dir.clone(),
            name: "served".into(),
            shard_target_bytes: config.shard_target_bytes,
            bucket_ms: config.bucket_ms,
            chunk_target_bytes: config.chunk_target_bytes,
            compress: config.compress,
        })?;
        let shared = Arc::new(Shared {
            state: Mutex::new(Ingest {
                merge: None,
                inputs: Vec::new(),
                shards: Some(shards),
                queries_active: 0,
                closed: false,
                records_in: 0,
            }),
            cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
            conn_seq: AtomicU64::new(0),
            config,
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until shutdown; returns what was ingested.
    pub fn run(self) -> io::Result<ServerStats> {
        let mut handlers = Vec::new();
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            let shared = Arc::clone(&self.shared);
            handlers.push(std::thread::spawn(move || {
                // A handler error is that connection's problem, not
                // the daemon's: log-free drop, state already repaired
                // by the kill path inside.
                let _ = Connection::new(shared).serve(stream);
            }));
        }
        for h in handlers {
            let _ = h.join();
        }
        let mut state = self.shared.state.lock().expect("server lock");
        let records_in = state.records_in;
        let merged = state.merge.as_ref().map_or(0, |m| m.released());
        let shards = state
            .shards
            .take()
            .expect("shards present until run() ends")
            .finish()?;
        Ok(ServerStats {
            shards,
            records_in,
            records_merged: merged,
        })
    }
}

/// How a blocking read ended.
enum ReadOutcome {
    Full,
    CleanEof,
    Shutdown,
}

/// One connection's handler state.
struct Connection {
    shared: Arc<Shared>,
    /// Merge input this connection drives, once `hello` arrives.
    input: Option<(usize, IdOffsets)>,
    /// Time of the last accepted record, for order validation.
    last_ticks: u64,
    conn_id: u64,
}

impl Connection {
    fn new(shared: Arc<Shared>) -> Connection {
        let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
        Connection {
            shared,
            input: None,
            last_ticks: 0,
            conn_id,
        }
    }

    /// Fills `buf`, polling the shutdown flag while idle. Once bytes
    /// have arrived, EOF mid-buffer is an error (torn frame).
    fn read_full(&self, stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<ReadOutcome> {
        let mut got = 0;
        while got < buf.len() {
            match stream.read(&mut buf[got..]) {
                Ok(0) if got == 0 => return Ok(ReadOutcome::CleanEof),
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection dropped mid-frame",
                    ))
                }
                Ok(n) => got += n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.shared.shutdown.load(Ordering::Acquire) {
                        return Ok(ReadOutcome::Shutdown);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(ReadOutcome::Full)
    }

    fn serve(mut self, mut stream: TcpStream) -> io::Result<()> {
        stream.set_read_timeout(Some(POLL))?;
        stream.set_nodelay(true).ok();
        let reg = obs::global();
        reg.counter("tracestored.conn.opened").inc();
        let result = self.serve_inner(&mut stream);
        reg.counter("tracestored.conn.closed").inc();
        // A connection that never said `fin` must not gate the merge
        // forever — whether it died, errored, or was shut down.
        self.finish_input_if_open();
        result
    }

    fn serve_inner(&mut self, stream: &mut TcpStream) -> io::Result<()> {
        let mut prefix = [0u8; 4];
        loop {
            match self.read_full(stream, &mut prefix)? {
                ReadOutcome::CleanEof | ReadOutcome::Shutdown => return Ok(()),
                ReadOutcome::Full => {}
            }
            if &prefix == b"GET " {
                // An HTTP client asking for /metrics; not our protocol.
                return self.serve_metrics(stream);
            }
            let len = u32::from_le_bytes(prefix);
            if len == 0 || len > protocol::MAX_FRAME {
                protocol::write_err(stream, &format!("bad frame length {len}"))?;
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "bad frame length",
                ));
            }
            let mut body = vec![0u8; len as usize];
            match self.read_full(stream, &mut body)? {
                ReadOutcome::Full => {}
                // Torn frame: discard, kill path cleans up.
                ReadOutcome::CleanEof | ReadOutcome::Shutdown => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection dropped mid-frame",
                    ))
                }
            }
            let op = body[0];
            let payload = &body[1..];
            match op {
                protocol::OP_HELLO => self.op_hello(stream, payload)?,
                protocol::OP_RECORDS => self.op_records(stream, payload)?,
                protocol::OP_PROGRESS => self.op_progress(payload)?,
                protocol::OP_FIN => {
                    self.op_fin(stream)?;
                    // The input is done; keep serving (queries allowed).
                }
                protocol::OP_SUMMARY
                | protocol::OP_RANGE
                | protocol::OP_ANALYZE
                | protocol::OP_SWEEP => self.op_query(stream, op, payload)?,
                protocol::OP_SHUTDOWN => {
                    self.op_shutdown(stream)?;
                    return Ok(());
                }
                other => {
                    protocol::write_err(stream, &format!("unknown op {other:#04x}"))?;
                }
            }
        }
    }

    fn op_hello(&mut self, stream: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
        let hello = match Hello::decode(payload) {
            Ok(h) => h,
            Err(e) => return protocol::write_err(stream, &format!("bad hello: {e}")),
        };
        if self.input.is_some() {
            return protocol::write_err(stream, "duplicate hello");
        }
        if hello.total_inputs == 0 || hello.input_index >= hello.total_inputs {
            return protocol::write_err(stream, "input index out of range");
        }
        let total = hello.total_inputs as usize;
        let index = hello.input_index as usize;
        {
            let mut state = self.shared.state.lock().expect("server lock");
            if state.closed {
                return protocol::write_err(stream, "server is shutting down");
            }
            match &state.merge {
                None => {
                    // First hello fixes the session geometry. The merge
                    // gets identity offsets: each handler remaps its own
                    // records before pushing, which is what makes the
                    // output byte-identical to an offline merge with the
                    // declared offsets.
                    state.merge = Some(FleetMerge::new(vec![IdOffsets::default(); total]));
                    state.inputs = (0..total)
                        .map(|_| InputState {
                            attached: false,
                            finished: false,
                            progress_ticks: 0,
                            accepted: 0,
                        })
                        .collect();
                }
                Some(merge) => {
                    if merge.input_count() != total {
                        return protocol::write_err(
                            stream,
                            &format!(
                                "session has {} inputs, hello declared {total}",
                                merge.input_count()
                            ),
                        );
                    }
                }
            }
            if state.inputs[index].attached {
                return protocol::write_err(stream, &format!("input {index} already attached"));
            }
            state.inputs[index].attached = true;
        }
        self.input = Some((index, hello.offsets));
        obs::global()
            .counter(&format!("tracestored.conn.{}.attached", self.conn_id))
            .inc();
        protocol::write_ok(stream, &[])
    }

    fn op_records(&mut self, stream: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
        let Some((index, offsets)) = self.input else {
            return protocol::write_err(stream, "records before hello");
        };
        let records = match protocol::decode_records(payload) {
            Ok(r) => r,
            Err(e) => {
                protocol::write_err(stream, &format!("bad record batch: {e}"))?;
                return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()));
            }
        };
        // Validate order before touching the merge: one bad client must
        // not poison the shared state (FleetMerge asserts on regress).
        for rec in &records {
            let ticks = rec.time.as_ticks();
            if ticks < self.last_ticks {
                protocol::write_err(stream, "records out of order within input")?;
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "records out of order",
                ));
            }
            self.last_ticks = ticks;
        }
        let n = records.len() as u64;
        let mut state = self.shared.state.lock().expect("server lock");
        if state.closed || state.inputs[index].finished {
            return protocol::write_err(stream, "input is closed");
        }
        {
            let merge = state.merge.as_mut().expect("merge exists after hello");
            for rec in &records {
                merge.push(index, &remap_record(rec, offsets));
            }
        }
        state.inputs[index].accepted += n;
        state.records_in += n;
        self.release_locked(&mut state)?;
        obs::global()
            .counter(&format!("tracestored.conn.{}.records_in", self.conn_id))
            .add(n);
        obs::global().counter("tracestored.ingest.records").add(n);
        // Backpressure: wait while the merge is over budget and some
        // *other* input is strictly behind us (we are not the gate).
        loop {
            let merge = state.merge.as_ref().expect("merge exists");
            let over = merge.buffered() > self.shared.config.backpressure_records;
            let behind_gate = Shared::fleet_watermark_ticks(&state.inputs)
                .is_some_and(|w| state.inputs[index].progress_ticks > w);
            if state.closed || !over || !behind_gate {
                break;
            }
            obs::global()
                .counter("tracestored.ingest.backpressure_waits")
                .inc();
            let (guard, _timeout) = self
                .shared
                .cond
                .wait_timeout(state, POLL)
                .expect("server lock");
            state = guard;
        }
        Ok(())
    }

    fn op_progress(&mut self, payload: &[u8]) -> io::Result<()> {
        let Some((index, _)) = self.input else {
            return Ok(()); // Progress before hello: ignore, unacked op.
        };
        let mut pos = 0;
        let Ok(up_to_ms) = get_varint(payload, &mut pos) else {
            return Ok(());
        };
        let mut state = self.shared.state.lock().expect("server lock");
        if state.closed || state.inputs[index].finished {
            return Ok(());
        }
        let ticks = Timestamp::from_ms(up_to_ms).as_ticks();
        if ticks > state.inputs[index].progress_ticks {
            state.inputs[index].progress_ticks = ticks;
        }
        state
            .merge
            .as_mut()
            .expect("merge exists after hello")
            .set_progress(index, up_to_ms);
        self.release_locked(&mut state)?;
        self.shared.cond.notify_all();
        Ok(())
    }

    fn op_fin(&mut self, stream: &mut TcpStream) -> io::Result<()> {
        let Some((index, _)) = self.input else {
            return protocol::write_err(stream, "fin before hello");
        };
        let accepted = {
            let mut state = self.shared.state.lock().expect("server lock");
            if !state.inputs[index].finished {
                state.inputs[index].finished = true;
                state
                    .merge
                    .as_mut()
                    .expect("merge exists after hello")
                    .finish_input(index);
                self.release_locked(&mut state)?;
                self.shared.cond.notify_all();
            }
            state.inputs[index].accepted
        };
        let mut reply = Vec::new();
        put_varint(&mut reply, accepted);
        protocol::write_ok(stream, &reply)
    }

    /// Releases merge output into the shards. Call with the lock held.
    fn release_locked(&self, state: &mut Ingest) -> io::Result<()> {
        let Ingest { merge, shards, .. } = state;
        let (Some(merge), Some(shards)) = (merge.as_mut(), shards.as_mut()) else {
            return Ok(());
        };
        let wrote = merge.release(shards)?;
        if wrote > 0 {
            self.shared.cond.notify_all();
        }
        Ok(())
    }

    fn op_query(&mut self, stream: &mut TcpStream, op: u8, payload: &[u8]) -> io::Result<()> {
        let snapshot = {
            let mut state = self.shared.state.lock().expect("server lock");
            let shards = state.shards.as_ref().expect("shards live while serving");
            let snapshot = DataSnapshot {
                shards: shards.sealed().iter().map(|s| s.path.clone()).collect(),
                tail: shards.tail().to_vec(),
            };
            state.queries_active += 1;
            snapshot
        };
        let _query_span = obs::global().span("tracestored.query").start();
        let jobs = self.shared.config.query_jobs;
        let result: io::Result<Vec<u8>> =
            match op {
                protocol::OP_SUMMARY => snapshot.summary(jobs).map(|s| s.to_string().into_bytes()),
                protocol::OP_ANALYZE => snapshot
                    .analyze(&self.shared.config.analysis_windows, jobs)
                    .map(|suite| render_suite(&suite).into_bytes()),
                protocol::OP_RANGE => (|| {
                    let mut pos = 0;
                    let from_ms = get_varint(payload, &mut pos)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                    let to_ms = get_varint(payload, &mut pos)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                    let records = snapshot.range(from_ms, to_ms)?;
                    let mut out = Vec::new();
                    protocol::encode_records(&mut out, &records);
                    Ok(out)
                })(),
                protocol::OP_SWEEP => (|| {
                    let mut pos = 0;
                    let count = get_varint(payload, &mut pos)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                    let mut sizes = Vec::new();
                    for _ in 0..count.min(64) {
                        sizes.push(get_varint(payload, &mut pos).map_err(|e| {
                            io::Error::new(io::ErrorKind::InvalidData, e.to_string())
                        })?);
                    }
                    snapshot.sweep(&sizes, jobs).map(String::into_bytes)
                })(),
                _ => unreachable!("dispatch only sends query ops"),
            };
        {
            let mut state = self.shared.state.lock().expect("server lock");
            state.queries_active -= 1;
            self.shared.cond.notify_all();
        }
        obs::global()
            .counter(&format!("tracestored.conn.{}.queries", self.conn_id))
            .inc();
        match result {
            Ok(reply) => protocol::write_ok(stream, &reply),
            Err(e) => protocol::write_err(stream, &e.to_string()),
        }
    }

    fn op_shutdown(&mut self, stream: &mut TcpStream) -> io::Result<()> {
        {
            let mut state = self.shared.state.lock().expect("server lock");
            state.closed = true;
            // Force-finish stragglers so the merge can drain fully.
            let Ingest { merge, inputs, .. } = &mut *state;
            if let Some(merge) = merge.as_mut() {
                for (i, input) in inputs.iter_mut().enumerate() {
                    if input.attached && !input.finished {
                        input.finished = true;
                        merge.finish_input(i);
                    }
                }
            }
            self.release_locked(&mut state)?;
            self.shared.cond.notify_all();
            // Drain in-flight queries before sealing under them.
            while state.queries_active > 0 {
                let (guard, _t) = self
                    .shared
                    .cond
                    .wait_timeout(state, POLL)
                    .expect("server lock");
                state = guard;
            }
            if let Some(shards) = state.shards.as_mut() {
                shards.seal_open()?;
            }
        }
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the accept loop so run() can join and return.
        if let Ok(addr) = stream.local_addr() {
            let _ = TcpStream::connect(addr);
        }
        protocol::write_ok(stream, &[])
    }

    /// Plain-text metrics for an HTTP GET on the same port.
    fn serve_metrics(&self, stream: &mut TcpStream) -> io::Result<()> {
        // Drain the request head; we answer any GET with the one page.
        let mut head = [0u8; 1024];
        let _ = stream.read(&mut head);
        let snap = obs::global().snapshot();
        let mut body = String::new();
        let clean = |name: &str| name.replace(['.', '-'], "_");
        for (name, value) in &snap.counters {
            body.push_str(&format!("{} {}\n", clean(name), value));
        }
        for (name, value) in &snap.gauges {
            body.push_str(&format!("{} {}\n", clean(name), value));
        }
        for (name, span) in &snap.spans {
            body.push_str(&format!("{}_count {}\n", clean(name), span.count));
            body.push_str(&format!("{}_total_ns {}\n", clean(name), span.total_ns));
        }
        for (name, hist) in &snap.histograms {
            body.push_str(&format!("{}_count {}\n", clean(name), hist.count));
        }
        let response = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        );
        stream.write_all(response.as_bytes())
    }

    /// The kill path: a connection that attached but never finished
    /// must not gate the merge forever.
    fn finish_input_if_open(&self) {
        let Some((index, _)) = self.input else {
            return;
        };
        let mut state = self.shared.state.lock().expect("server lock");
        if !state.inputs[index].finished {
            state.inputs[index].finished = true;
            if let Some(merge) = state.merge.as_mut() {
                merge.finish_input(index);
            }
            let _ = self.release_locked(&mut state);
            obs::global().counter("tracestored.conn.killed").inc();
            self.shared.cond.notify_all();
        }
    }
}

/// Spawns the server on a background thread; the common test/bench
/// harness. Returns the bound address and the join handle.
pub fn spawn(
    config: ServerConfig,
) -> io::Result<(SocketAddr, std::thread::JoinHandle<io::Result<ServerStats>>)> {
    let server = Server::bind(config)?;
    let addr = server.local_addr()?;
    let handle = std::thread::spawn(move || server.run());
    Ok((addr, handle))
}

/// Parses `k=v` overrides for ad-hoc tools; unknown keys error.
pub fn apply_config_overrides(
    config: &mut ServerConfig,
    overrides: &HashMap<String, String>,
) -> Result<(), String> {
    for (key, value) in overrides {
        match key.as_str() {
            "shard_kib" => {
                config.shard_target_bytes = value
                    .parse::<u64>()
                    .map_err(|e| format!("shard_kib: {e}"))?
                    << 10
            }
            "bucket_ms" => {
                config.bucket_ms = value.parse().map_err(|e| format!("bucket_ms: {e}"))?
            }
            "chunk_kib" => {
                config.chunk_target_bytes = value
                    .parse::<usize>()
                    .map_err(|e| format!("chunk_kib: {e}"))?
                    << 10
            }
            "compress" => config.compress = value == "true",
            other => return Err(format!("unknown config key {other:?}")),
        }
    }
    Ok(())
}
