//! The client side of the protocol: one struct per connection, plus a
//! [`RecordSink`] adapter so any generator (notably `mktrace --serve`)
//! can stream into a daemon as if it were writing a local file.

use std::io::{self, Read, Write};
use std::net::TcpStream;

use fstrace::codec::{get_varint, put_varint};
use fstrace::{IdOffsets, RecordSink, TraceRecord};

use crate::protocol::{self, Hello};

/// Records per batch frame the streaming adapter sends. Big enough to
/// amortize framing, small enough that backpressure stays responsive.
const BATCH: usize = 8192;

/// One protocol connection to a `tracestored`.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects; the socket stays open for the client's lifetime.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Declares this connection as merge input `index` of `total`.
    /// Acked: returns once the server accepted the attachment.
    pub fn hello(
        &mut self,
        total: u16,
        index: u16,
        offsets: IdOffsets,
        name: &str,
    ) -> io::Result<()> {
        let hello = Hello {
            total_inputs: total,
            input_index: index,
            offsets,
            name: name.to_string(),
        };
        protocol::write_frame(&mut self.stream, protocol::OP_HELLO, &hello.encode())?;
        protocol::read_reply(&mut self.stream).map(|_| ())
    }

    /// Streams one record batch. Unacked — errors surface on the next
    /// acked call (`fin`), which is what keeps ingest pipelined.
    pub fn send_records(&mut self, records: &[TraceRecord]) -> io::Result<()> {
        let mut payload = Vec::with_capacity(records.len() * 8 + 8);
        protocol::encode_records(&mut payload, records);
        protocol::write_frame(&mut self.stream, protocol::OP_RECORDS, &payload)
    }

    /// Advances this input's progress watermark. Unacked.
    pub fn progress(&mut self, up_to_ms: u64) -> io::Result<()> {
        let mut payload = Vec::new();
        put_varint(&mut payload, up_to_ms);
        protocol::write_frame(&mut self.stream, protocol::OP_PROGRESS, &payload)
    }

    /// Finishes this input; returns the server's accepted record count.
    pub fn fin(&mut self) -> io::Result<u64> {
        protocol::write_frame(&mut self.stream, protocol::OP_FIN, &[])?;
        let reply = protocol::read_reply(&mut self.stream)?;
        let mut pos = 0;
        get_varint(&reply, &mut pos)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    fn text_query(&mut self, op: u8, payload: &[u8]) -> io::Result<String> {
        protocol::write_frame(&mut self.stream, op, payload)?;
        let reply = protocol::read_reply(&mut self.stream)?;
        String::from_utf8(reply)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "reply is not utf-8"))
    }

    /// The Table-III summary of the served trace, as text.
    pub fn summary(&mut self) -> io::Result<String> {
        self.text_query(protocol::OP_SUMMARY, &[])
    }

    /// The full Section-5 analyzer suite, rendered server-side.
    pub fn analyze(&mut self) -> io::Result<String> {
        self.text_query(protocol::OP_ANALYZE, &[])
    }

    /// A cache sweep over the served trace, one row per size in KiB.
    pub fn sweep(&mut self, sizes_kb: &[u64]) -> io::Result<String> {
        let mut payload = Vec::new();
        put_varint(&mut payload, sizes_kb.len() as u64);
        for &kb in sizes_kb {
            put_varint(&mut payload, kb);
        }
        self.text_query(protocol::OP_SWEEP, &payload)
    }

    /// Records with `from_ms <= time < to_ms`.
    pub fn range(&mut self, from_ms: u64, to_ms: u64) -> io::Result<Vec<TraceRecord>> {
        let mut payload = Vec::new();
        put_varint(&mut payload, from_ms);
        put_varint(&mut payload, to_ms);
        protocol::write_frame(&mut self.stream, protocol::OP_RANGE, &payload)?;
        let reply = protocol::read_reply(&mut self.stream)?;
        protocol::decode_records(&reply)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Asks the daemon to seal, drain, and stop. Acked.
    pub fn shutdown(&mut self) -> io::Result<()> {
        protocol::write_frame(&mut self.stream, protocol::OP_SHUTDOWN, &[])?;
        protocol::read_reply(&mut self.stream).map(|_| ())
    }
}

/// Fetches the `/metrics` page over a plain HTTP GET on the daemon
/// port; returns the body.
pub fn fetch_metrics(addr: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_head, body)) => Ok(body.to_string()),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed http response",
        )),
    }
}

/// A [`RecordSink`] that streams into a daemon: batches records,
/// advancing the progress watermark to the last sent record after each
/// batch. Sound for any sink fed in nondecreasing time order (every
/// generator path is), because a record at time T promises nothing
/// earlier than T remains unsent.
pub struct IngestSink<'a> {
    client: &'a mut Client,
    buf: Vec<TraceRecord>,
    sent: u64,
}

impl<'a> IngestSink<'a> {
    /// Wraps a connection that has already said `hello`.
    pub fn new(client: &'a mut Client) -> Self {
        IngestSink {
            client,
            buf: Vec::with_capacity(BATCH),
            sent: 0,
        }
    }

    fn flush_batch(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.client.send_records(&self.buf)?;
        self.sent += self.buf.len() as u64;
        let last_ms = self.buf.last().expect("non-empty batch").time.as_ms();
        self.client.progress(last_ms)?;
        self.buf.clear();
        Ok(())
    }

    /// Flushes the tail batch and finishes the input; returns the
    /// server's accepted count.
    pub fn finish(mut self) -> io::Result<u64> {
        self.flush_batch()?;
        self.client.progress(u64::MAX)?;
        self.client.fin()
    }

    /// Records sent so far (flushed batches only).
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl RecordSink for IngestSink<'_> {
    fn write_record(&mut self, rec: &TraceRecord) -> io::Result<()> {
        self.buf.push(*rec);
        if self.buf.len() >= BATCH {
            self.flush_batch()?;
        }
        Ok(())
    }
}
