//! The `tracestored` wire protocol: length-prefixed binary frames.
//!
//! Every message — request or reply — is one *frame*:
//!
//! ```text
//! +--------------+--------+-----------------+
//! | u32 LE length| u8 op  | payload ...     |
//! +--------------+--------+-----------------+
//! ```
//!
//! The length covers the opcode byte and the payload (so an empty
//! message has length 1), and is capped at [`MAX_FRAME`] — a reader
//! never trusts the peer for its allocation size. Integers inside
//! payloads use the trace codec's varints ([`fstrace::codec`]);
//! records travel as [`encode_records`] batches: a varint count
//! followed by delta-encoded records whose tick base restarts at zero
//! per batch, exactly like a `tracestore` chunk — so a batch decodes
//! with no connection state.
//!
//! One special case: a connection whose first four bytes are `"GET "`
//! is not speaking this protocol at all — it is an HTTP client asking
//! for the plain-text `/metrics` page, and the server answers it as
//! such (see `server`). The magic works because `"GET "` read as a
//! little-endian u32 is far beyond [`MAX_FRAME`].

use std::io::{self, Read, Write};

use fstrace::codec::{self, DecodeError};
use fstrace::{IdOffsets, TraceRecord};

/// Ingest: declare this connection as input `index` of `total_inputs`.
pub const OP_HELLO: u8 = 0x01;
/// Ingest: a batch of records for this connection's input.
pub const OP_RECORDS: u8 = 0x02;
/// Ingest: progress watermark — everything below it has been sent.
pub const OP_PROGRESS: u8 = 0x03;
/// Ingest: this input is complete. Acked with the accepted count.
pub const OP_FIN: u8 = 0x04;
/// Query: Table III-style whole-trace summary, rendered as text.
pub const OP_SUMMARY: u8 = 0x10;
/// Query: records in a `[from_ms, to_ms)` window, as a record batch.
pub const OP_RANGE: u8 = 0x11;
/// Query: the full Section-5 analyzer suite, rendered as text.
pub const OP_ANALYZE: u8 = 0x12;
/// Query: cache-grid sweep over the served trace, rendered as text.
pub const OP_SWEEP: u8 = 0x13;
/// Control: seal all shards, drain queries, stop the daemon.
pub const OP_SHUTDOWN: u8 = 0x1f;
/// Reply: success; payload depends on the request op.
pub const OP_OK: u8 = 0x80;
/// Reply: failure; payload is a UTF-8 message.
pub const OP_ERR: u8 = 0x81;

/// Hard cap on one frame's length (op byte + payload).
pub const MAX_FRAME: u32 = 64 << 20;

/// The ingest handshake: which merge input this connection feeds.
///
/// `offsets` are the id offsets this input's records are remapped by
/// before entering the merge — the same role [`fstrace::IdOffsets`]
/// plays in an offline [`fstrace::FleetMerge`], so a server-side merge
/// fed by N connections is byte-identical to an offline merge of the
/// same N streams with the same offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Total ingest inputs of this session; the merge waits for all.
    pub total_inputs: u16,
    /// This connection's input index, in `0..total_inputs`.
    pub input_index: u16,
    /// Id remapping applied to this input's records.
    pub offsets: IdOffsets,
    /// Client-chosen stream name (machine name, profile, ...).
    pub name: String,
}

impl Hello {
    /// Serializes the handshake payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.name.len());
        codec::put_varint(&mut out, self.total_inputs as u64);
        codec::put_varint(&mut out, self.input_index as u64);
        codec::put_varint(&mut out, self.offsets.open);
        codec::put_varint(&mut out, self.offsets.file);
        codec::put_varint(&mut out, self.offsets.user as u64);
        codec::put_varint(&mut out, self.name.len() as u64);
        out.extend_from_slice(self.name.as_bytes());
        out
    }

    /// Parses a handshake payload.
    pub fn decode(buf: &[u8]) -> Result<Hello, DecodeError> {
        let mut pos = 0;
        let total = codec::get_varint(buf, &mut pos)?;
        let index = codec::get_varint(buf, &mut pos)?;
        let open = codec::get_varint(buf, &mut pos)?;
        let file = codec::get_varint(buf, &mut pos)?;
        let user = codec::get_varint(buf, &mut pos)?;
        let name_len = codec::get_varint(buf, &mut pos)? as usize;
        let name_end = pos
            .checked_add(name_len)
            .filter(|&e| e <= buf.len())
            .ok_or(DecodeError::BadField("hello name length"))?;
        let name = std::str::from_utf8(&buf[pos..name_end])
            .map_err(|_| DecodeError::BadField("hello name utf-8"))?
            .to_string();
        Ok(Hello {
            total_inputs: u16::try_from(total)
                .map_err(|_| DecodeError::BadField("total inputs"))?,
            input_index: u16::try_from(index).map_err(|_| DecodeError::BadField("input index"))?,
            offsets: IdOffsets {
                open,
                file,
                user: u32::try_from(user).map_err(|_| DecodeError::BadField("user offset"))?,
            },
            name,
        })
    }
}

/// Appends a record batch to `out`: a varint count, then each record
/// delta-encoded with the tick base restarting at zero — the same
/// self-contained framing a `tracestore` chunk uses.
pub fn encode_records(out: &mut Vec<u8>, records: &[TraceRecord]) {
    codec::put_varint(out, records.len() as u64);
    let mut prev = 0u64;
    for rec in records {
        prev = codec::encode_into(out, rec, prev);
    }
}

/// Decodes a record batch produced by [`encode_records`].
pub fn decode_records(buf: &[u8]) -> Result<Vec<TraceRecord>, DecodeError> {
    let mut pos = 0;
    let count = codec::get_varint(buf, &mut pos)? as usize;
    // A record is at least 2 bytes; reject counts the buffer cannot hold.
    if count > buf.len() {
        return Err(DecodeError::BadField("record batch count"));
    }
    let mut out = Vec::with_capacity(count);
    let mut prev = 0u64;
    for _ in 0..count {
        let (rec, ticks) = codec::decode_from(buf, &mut pos, prev)?;
        prev = ticks;
        out.push(rec);
    }
    if pos != buf.len() {
        return Err(DecodeError::BadField("record batch trailer"));
    }
    Ok(out)
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, op: u8, payload: &[u8]) -> io::Result<()> {
    let len = 1 + payload.len();
    if len > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&[op])?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame, given its already-read 4-byte length prefix.
pub fn read_frame_body(r: &mut impl Read, prefix: [u8; 4]) -> io::Result<(u8, Vec<u8>)> {
    let len = u32::from_le_bytes(prefix);
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let op = body[0];
    body.drain(..1);
    Ok((op, body))
}

/// Reads one frame; `Ok(None)` on clean EOF at a frame boundary.
/// A connection that dies mid-frame surfaces as an error — the caller
/// discards the partial frame, never acts on it.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection dropped inside a frame header",
                ))
            }
            Ok(n) => got += n,
            Err(e) => return Err(e),
        }
    }
    read_frame_body(r, prefix).map(Some)
}

/// Sends a reply frame: `OP_OK` with `payload`.
pub fn write_ok(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    write_frame(w, OP_OK, payload)
}

/// Sends an error reply carrying a human-readable message.
pub fn write_err(w: &mut impl Write, msg: &str) -> io::Result<()> {
    write_frame(w, OP_ERR, msg.as_bytes())
}

/// Reads a reply frame and surfaces `OP_ERR` as an [`io::Error`].
pub fn read_reply(r: &mut impl Read) -> io::Result<Vec<u8>> {
    match read_frame(r)? {
        Some((OP_OK, payload)) => Ok(payload),
        Some((OP_ERR, payload)) => Err(io::Error::other(format!(
            "server error: {}",
            String::from_utf8_lossy(&payload)
        ))),
        Some((op, _)) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected reply op {op:#04x}"),
        )),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before the reply",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstrace::{AccessMode, TraceEvent};

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::new(
                100,
                TraceEvent::Open {
                    open_id: fstrace::OpenId(7),
                    file_id: fstrace::FileId(3),
                    user_id: fstrace::UserId(2),
                    mode: AccessMode::ReadWrite,
                    size: 4096,
                    created: true,
                },
            ),
            TraceRecord::new(
                250,
                TraceEvent::Seek {
                    open_id: fstrace::OpenId(7),
                    old_pos: 4096,
                    new_pos: 0,
                },
            ),
            TraceRecord::new(
                900,
                TraceEvent::Close {
                    open_id: fstrace::OpenId(7),
                    final_pos: 8192,
                },
            ),
        ]
    }

    #[test]
    fn hello_roundtrips() {
        let hello = Hello {
            total_inputs: 4,
            input_index: 2,
            offsets: IdOffsets {
                open: 1 << 41,
                file: 1 << 40,
                user: 1 << 17,
            },
            name: "machine-2".into(),
        };
        assert_eq!(Hello::decode(&hello.encode()).unwrap(), hello);
    }

    #[test]
    fn hello_rejects_bad_name_length() {
        let hello = Hello {
            total_inputs: 1,
            input_index: 0,
            offsets: IdOffsets::default(),
            name: "x".into(),
        };
        let mut bytes = hello.encode();
        bytes.truncate(bytes.len() - 1); // Name shorter than declared.
        assert!(Hello::decode(&bytes).is_err());
    }

    #[test]
    fn record_batch_roundtrips() {
        let records = sample_records();
        let mut buf = Vec::new();
        encode_records(&mut buf, &records);
        assert_eq!(decode_records(&buf).unwrap(), records);
        // Empty batch too.
        let mut empty = Vec::new();
        encode_records(&mut empty, &[]);
        assert!(decode_records(&empty).unwrap().is_empty());
    }

    #[test]
    fn record_batch_rejects_trailing_garbage() {
        let mut buf = Vec::new();
        encode_records(&mut buf, &sample_records());
        buf.push(0xAA);
        assert!(decode_records(&buf).is_err());
    }

    #[test]
    fn frames_roundtrip_over_a_pipe() {
        let mut wire = Vec::new();
        write_frame(&mut wire, OP_PROGRESS, &[1, 2, 3]).unwrap();
        write_ok(&mut wire, b"done").unwrap();
        let mut r = wire.as_slice();
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some((OP_PROGRESS, vec![1, 2, 3]))
        );
        assert_eq!(read_frame(&mut r).unwrap(), Some((OP_OK, b"done".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn partial_frame_is_an_error_not_a_message() {
        let mut wire = Vec::new();
        write_frame(&mut wire, OP_RECORDS, &[9; 100]).unwrap();
        // Kill the connection mid-frame: only half the bytes arrive.
        let mut r = &wire[..wire.len() / 2];
        assert!(read_frame(&mut r).is_err());
        // And mid-header too.
        let mut r = &wire[..2];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let prefix = (MAX_FRAME + 1).to_le_bytes();
        let mut r: &[u8] = &[];
        assert!(read_frame_body(&mut r, prefix).is_err());
        let mut r: &[u8] = &[];
        assert!(read_frame_body(&mut r, 0u32.to_le_bytes()).is_err());
    }

    #[test]
    fn err_reply_surfaces_as_io_error() {
        let mut wire = Vec::new();
        write_err(&mut wire, "no such input").unwrap();
        let err = read_reply(&mut wire.as_slice()).unwrap_err();
        assert!(err.to_string().contains("no such input"));
    }
}
