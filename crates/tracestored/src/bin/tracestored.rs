//! The `tracestored` binary: `serve` runs the daemon, `client` drives
//! one against it (queries, ingest from a trace file, shutdown).

use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;

use fstrace::IdOffsets;
use tracestored::{fetch_metrics, Client, IngestSink, Server, ServerConfig};

const USAGE: &str = "\
usage:
  tracestored serve [--addr A] [--dir D] [--shard-kib N] [--bucket-ms MS]
                    [--chunk-kib N] [--no-compress] [--port-file F]
      Run the daemon until a client sends `shutdown`. With --port-file,
      write the bound port there once listening (for scripts using :0).

  tracestored client --addr A CMD
      CMD: summary | analyze | sweep KB[,KB...] | range FROM_MS TO_MS
         | metrics | ingest FILE.tsa | shutdown";

fn die(msg: &str) -> ! {
    eprintln!("tracestored: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        _ => die("expected `serve` or `client`"),
    }
}

fn cmd_serve(args: &[String]) {
    let mut config = ServerConfig::default();
    let mut port_file: Option<PathBuf> = None;
    let mut overrides = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--dir" => config.dir = PathBuf::from(value("--dir")),
            "--shard-kib" => {
                overrides.insert("shard_kib".into(), value("--shard-kib"));
            }
            "--bucket-ms" => {
                overrides.insert("bucket_ms".into(), value("--bucket-ms"));
            }
            "--chunk-kib" => {
                overrides.insert("chunk_kib".into(), value("--chunk-kib"));
            }
            "--no-compress" => {
                overrides.insert("compress".into(), "false".into());
            }
            "--port-file" => port_file = Some(PathBuf::from(value("--port-file"))),
            other => die(&format!("unknown serve flag {other:?}")),
        }
    }
    if let Err(e) = tracestored::server::apply_config_overrides(&mut config, &overrides) {
        die(&e);
    }
    let server = match Server::bind(config) {
        Ok(s) => s,
        Err(e) => die(&format!("bind failed: {e}")),
    };
    let addr = server.local_addr().expect("bound listener has an address");
    eprintln!("tracestored: listening on {addr}");
    if let Some(path) = port_file {
        let mut f = std::fs::File::create(&path)
            .unwrap_or_else(|e| die(&format!("port file {}: {e}", path.display())));
        writeln!(f, "{}", addr.port()).expect("port file write");
    }
    match server.run() {
        Ok(stats) => eprintln!(
            "tracestored: stopped; {} records in, {} merged, {} shard(s)",
            stats.records_in,
            stats.records_merged,
            stats.shards.len()
        ),
        Err(e) => die(&format!("server error: {e}")),
    }
}

fn cmd_client(args: &[String]) {
    let mut addr = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().cloned(),
            other => rest.push(other.to_string()),
        }
    }
    let addr = addr.unwrap_or_else(|| die("client needs --addr"));
    let run = || -> std::io::Result<()> {
        match rest
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>()
            .as_slice()
        {
            ["summary"] => print!("{}", Client::connect(&addr)?.summary()?),
            ["analyze"] => print!("{}", Client::connect(&addr)?.analyze()?),
            ["sweep", sizes] => {
                let sizes: Vec<u64> = sizes
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| die("bad sweep size")))
                    .collect();
                print!("{}", Client::connect(&addr)?.sweep(&sizes)?);
            }
            ["range", from, to] => {
                let from: u64 = from.parse().unwrap_or_else(|_| die("bad FROM_MS"));
                let to: u64 = to.parse().unwrap_or_else(|_| die("bad TO_MS"));
                let records = Client::connect(&addr)?.range(from, to)?;
                for rec in &records {
                    println!("{}", fstrace::codec::to_text(rec));
                }
                eprintln!("{} record(s)", records.len());
            }
            ["metrics"] => print!("{}", fetch_metrics(&addr)?),
            ["shutdown"] => Client::connect(&addr)?.shutdown()?,
            ["ingest", file] => {
                let archive = tracestore::Archive::open(std::path::Path::new(file))
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
                let mut client = Client::connect(&addr)?;
                client.hello(1, 0, IdOffsets::default(), file)?;
                let mut sink = IngestSink::new(&mut client);
                for rec in archive.records(tracestore::Corruption::Fail) {
                    let rec = rec.map_err(|e| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                    })?;
                    fstrace::RecordSink::write_record(&mut sink, &rec)?;
                }
                let accepted = sink.finish()?;
                eprintln!("ingested {accepted} record(s)");
            }
            _ => die("unknown client command"),
        }
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("tracestored: {e}");
        std::process::exit(1);
    }
}
