//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real crates-io
//! `rand` cannot be fetched. This crate implements the small API
//! subset the workspace uses — `rngs::StdRng`, [`SeedableRng`], and
//! [`Rng`] with `gen`, `gen_range`, and `fill_bytes` — on top of a
//! seedable xoshiro256++ generator (Blackman & Vigna). The stream
//! differs from crates-io `StdRng` (which is ChaCha12); everything in
//! this workspace treats the generator as an opaque deterministic
//! stream, so only self-consistency matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the `rand` trait, reduced to what is used).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator (the
/// `Standard` distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Rejection-free multiply-shift; bias is < 2^-64 for the
                // span sizes this workspace draws, which is far below
                // every tolerance in the calibration suite.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                self.start + (wide >> 64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                lo + (wide >> 64) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through
    /// SplitMix64 (so any 64-bit seed, including 0, yields a
    /// well-mixed state).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..14);
            assert!((10..14).contains(&v));
            seen_lo |= v == 10;
            seen_hi |= v == 13;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn range_mean_is_central() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000u64;
        let sum: u64 = (0..n).map(|_| r.gen_range(0u64..1000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 499.5).abs() < 5.0, "mean {mean}");
    }
}
