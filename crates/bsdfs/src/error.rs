//! File system error codes, in the spirit of Unix errno values.

use std::fmt;

/// Result alias for file system operations.
pub type FsResult<T> = Result<T, FsError>;

/// Errors returned by the system call layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// A path component does not exist (`ENOENT`).
    NotFound,
    /// The file already exists and exclusive creation was requested
    /// (`EEXIST`).
    Exists,
    /// A non-directory appeared where a directory was required
    /// (`ENOTDIR`).
    NotDir,
    /// A directory appeared where a file was required (`EISDIR`).
    IsDir,
    /// The directory is not empty (`ENOTEMPTY`).
    NotEmpty,
    /// A file descriptor is not open (`EBADF`).
    BadFd,
    /// The operation conflicts with the descriptor's open mode (`EACCES`).
    BadMode,
    /// No free data fragments remain (`ENOSPC`).
    NoSpace,
    /// No free inodes remain (`ENOSPC` for inodes).
    NoInodes,
    /// A path component exceeds the name length limit (`ENAMETOOLONG`).
    NameTooLong,
    /// The path is empty or otherwise malformed (`EINVAL`).
    BadPath,
    /// The file would exceed the maximum mappable size (`EFBIG`).
    FileTooBig,
    /// An argument was out of range (`EINVAL`).
    InvalidArg,
    /// The directory has no room for another entry and cannot grow.
    DirFull,
    /// Attempt to unlink or modify a directory through a file call
    /// (`EPERM`).
    NotPermitted,
    /// An internal consistency check failed; indicates a bug.
    Corrupt(&'static str),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::Exists => write!(f, "file exists"),
            FsError::NotDir => write!(f, "not a directory"),
            FsError::IsDir => write!(f, "is a directory"),
            FsError::NotEmpty => write!(f, "directory not empty"),
            FsError::BadFd => write!(f, "bad file descriptor"),
            FsError::BadMode => write!(f, "operation not permitted by open mode"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::NoInodes => write!(f, "no free inodes"),
            FsError::NameTooLong => write!(f, "file name too long"),
            FsError::BadPath => write!(f, "malformed path"),
            FsError::FileTooBig => write!(f, "file too large"),
            FsError::InvalidArg => write!(f, "invalid argument"),
            FsError::DirFull => write!(f, "directory full"),
            FsError::NotPermitted => write!(f, "operation not permitted"),
            FsError::Corrupt(what) => write!(f, "file system corrupt: {what}"),
        }
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(FsError::NotFound.to_string(), "no such file or directory");
        assert!(FsError::Corrupt("bitmap").to_string().contains("bitmap"));
    }
}
