//! The simulated disk: flat fragment-addressed storage with transfer
//! accounting.
//!
//! The disk stores real bytes. It is addressed in *fragments* (the FFS
//! allocation unit); an extent is a contiguous run of fragments that
//! never crosses a block boundary, matching FFS's rule that a file's
//! partial tail block occupies adjacent fragments of one block.

/// Counters of physical disk activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of read operations (one per extent transfer).
    pub reads: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
}

impl DiskStats {
    /// Total read plus write operations.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes
    }
}

/// A flat in-memory disk addressed in fragments.
///
/// Fragment 0 is reserved (it holds the superblock copy) so that fragment
/// address 0 can serve as the null pointer in inodes, as in FFS.
#[derive(Debug)]
pub struct Disk {
    frag_size: u32,
    data: Vec<u8>,
    stats: DiskStats,
}

impl Disk {
    /// Creates a disk of `total_frags` fragments of `frag_size` bytes.
    ///
    /// The backing store is zero-filled lazily by the allocator
    /// (`vec![0; n]` maps pages on demand).
    pub fn new(frag_size: u32, total_frags: u64) -> Self {
        let len = (frag_size as u64 * total_frags) as usize;
        Disk {
            frag_size,
            data: vec![0; len],
            stats: DiskStats::default(),
        }
    }

    /// Fragment size in bytes.
    pub fn frag_size(&self) -> u32 {
        self.frag_size
    }

    /// Total fragments on the disk.
    pub fn total_frags(&self) -> u64 {
        self.data.len() as u64 / self.frag_size as u64
    }

    fn range(&self, frag: u64, nfrags: u32) -> std::ops::Range<usize> {
        let start = (frag * self.frag_size as u64) as usize;
        let end = start + (nfrags as u64 * self.frag_size as u64) as usize;
        assert!(
            end <= self.data.len(),
            "disk access out of range: frag {frag} + {nfrags}"
        );
        start..end
    }

    /// Reads an extent into `out` (one physical read operation).
    ///
    /// # Panics
    ///
    /// Panics if the extent lies outside the disk or `out` is not exactly
    /// the extent length — both indicate file system bugs, not user
    /// errors.
    pub fn read_extent(&mut self, frag: u64, nfrags: u32, out: &mut [u8]) {
        let r = self.range(frag, nfrags);
        assert_eq!(out.len(), r.len(), "read buffer size mismatch");
        out.copy_from_slice(&self.data[r]);
        self.stats.reads += 1;
        self.stats.bytes_read += out.len() as u64;
    }

    /// Writes an extent from `src` (one physical write operation).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Disk::read_extent`].
    pub fn write_extent(&mut self, frag: u64, nfrags: u32, src: &[u8]) {
        let r = self.range(frag, nfrags);
        assert_eq!(src.len(), r.len(), "write buffer size mismatch");
        self.data[r].copy_from_slice(src);
        self.stats.writes += 1;
        self.stats.bytes_written += src.len() as u64;
    }

    /// Physical transfer counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Raw view of an extent without charging an I/O (for tests and
    /// consistency checks only).
    pub fn peek(&self, frag: u64, nfrags: u32) -> &[u8] {
        let start = (frag * self.frag_size as u64) as usize;
        let end = start + (nfrags as u64 * self.frag_size as u64) as usize;
        &self.data[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_accounting() {
        let mut d = Disk::new(1024, 16);
        let src = vec![0xabu8; 2048];
        d.write_extent(4, 2, &src);
        let mut out = vec![0u8; 2048];
        d.read_extent(4, 2, &mut out);
        assert_eq!(out, src);
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.bytes_read, 2048);
        assert_eq!(s.bytes_written, 2048);
        assert_eq!(s.total_ops(), 2);
    }

    #[test]
    fn fresh_disk_reads_zero() {
        let mut d = Disk::new(512, 8);
        let mut out = vec![0xffu8; 512];
        d.read_extent(3, 1, &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn peek_does_not_charge_io() {
        let mut d = Disk::new(512, 8);
        d.write_extent(1, 1, &vec![7u8; 512]);
        let before = d.stats();
        assert_eq!(d.peek(1, 1)[0], 7);
        assert_eq!(d.stats(), before);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut d = Disk::new(512, 8);
        let mut out = vec![0u8; 512];
        d.read_extent(8, 1, &mut out);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_buffer_size_panics() {
        let mut d = Disk::new(512, 8);
        let mut out = vec![0u8; 100];
        d.read_extent(0, 1, &mut out);
    }
}
