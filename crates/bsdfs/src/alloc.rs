//! Cylinder-group block and fragment allocation.
//!
//! The data region is divided into cylinder groups, each with its own
//! fragment bitmap and allocation rotor, as in FFS. Full blocks are
//! aligned runs of `frags_per_block` fragments; small allocations take a
//! shorter run of fragments that never crosses a block boundary —
//! mirroring the FFS rule that lets small files occupy less than a full
//! block on disk (the property Section 6.3 of the paper notes composes
//! well with a fixed-block-size cache).

use crate::error::{FsError, FsResult};

/// A fragment bitmap for one cylinder group.
#[derive(Debug, Clone)]
struct Group {
    /// One bit per fragment; `true` = allocated.
    bits: Vec<u64>,
    nfrags: u64,
    free: u64,
    /// Next block index to start searching from (in blocks).
    rotor: u64,
}

impl Group {
    fn new(nfrags: u64) -> Self {
        Group {
            bits: vec![0; nfrags.div_ceil(64) as usize],
            nfrags,
            free: nfrags,
            rotor: 0,
        }
    }

    fn get(&self, i: u64) -> bool {
        self.bits[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    fn set(&mut self, i: u64, v: bool) {
        let w = (i / 64) as usize;
        let m = 1u64 << (i % 64);
        let was = self.bits[w] & m != 0;
        if v {
            self.bits[w] |= m;
        } else {
            self.bits[w] &= !m;
        }
        match (was, v) {
            (false, true) => self.free -= 1,
            (true, false) => self.free += 1,
            _ => {}
        }
    }

    /// Returns the first offset within block-window `b` (of `fpb` frags)
    /// holding `k` consecutive free fragments, if any.
    fn find_run_in_block(&self, b: u64, fpb: u32, k: u32) -> Option<u64> {
        let base = b * fpb as u64;
        if base + fpb as u64 > self.nfrags {
            return None;
        }
        let mut run = 0u32;
        for off in 0..fpb {
            if self.get(base + off as u64) {
                run = 0;
            } else {
                run += 1;
                if run == k {
                    return Some(base + (off + 1 - k) as u64);
                }
            }
        }
        None
    }

    /// `true` if any fragment in block-window `b` is allocated.
    fn block_partially_used(&self, b: u64, fpb: u32) -> bool {
        let base = b * fpb as u64;
        (0..fpb).any(|off| self.get(base + off as u64))
    }
}

/// Fragment allocator over the data region.
#[derive(Debug, Clone)]
pub struct FragAllocator {
    fpb: u32,
    data_start: u64,
    frags_per_group: u64,
    groups: Vec<Group>,
}

impl FragAllocator {
    /// Creates an allocator for a data region of `data_frags` fragments
    /// starting at absolute fragment address `data_start`, split into
    /// `cyl_groups` groups.
    ///
    /// Each group is rounded down to whole blocks; leftover fragments at
    /// the end of the region are unused, as in a real mkfs.
    pub fn new(fpb: u32, data_start: u64, data_frags: u64, cyl_groups: u32) -> Self {
        let per_group = data_frags / cyl_groups as u64 / fpb as u64 * fpb as u64;
        assert!(per_group >= fpb as u64, "cylinder group too small");
        let groups = (0..cyl_groups).map(|_| Group::new(per_group)).collect();
        FragAllocator {
            fpb,
            data_start,
            frags_per_group: per_group,
            groups,
        }
    }

    /// Fragments per full block.
    pub fn frags_per_block(&self) -> u32 {
        self.fpb
    }

    /// Total free fragments across all groups.
    pub fn free_frags(&self) -> u64 {
        self.groups.iter().map(|g| g.free).sum()
    }

    /// Total fragments managed.
    pub fn total_frags(&self) -> u64 {
        self.frags_per_group * self.groups.len() as u64
    }

    fn addr(&self, group: usize, local: u64) -> u64 {
        self.data_start + group as u64 * self.frags_per_group + local
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let rel = addr
            .checked_sub(self.data_start)
            .expect("address below data region");
        let g = (rel / self.frags_per_group) as usize;
        assert!(g < self.groups.len(), "address beyond data region");
        (g, rel % self.frags_per_group)
    }

    /// Allocates a run of `k` fragments (`1..=frags_per_block`) that does
    /// not cross a block boundary, preferring `pref_group`.
    ///
    /// Full-block requests take only fully free blocks. Sub-block
    /// requests prefer partially used blocks, keeping whole blocks free
    /// for large files (FFS's fragment packing).
    pub fn alloc(&mut self, pref_group: u32, k: u32) -> FsResult<u64> {
        assert!(k >= 1 && k <= self.fpb, "extent size out of range");
        let ngroups = self.groups.len();
        for gi in 0..ngroups {
            let g = (pref_group as usize + gi) % ngroups;
            if let Some(addr) = self.alloc_in_group(g, k) {
                return Ok(addr);
            }
        }
        Err(FsError::NoSpace)
    }

    fn alloc_in_group(&mut self, gi: usize, k: u32) -> Option<u64> {
        let blocks = self.frags_per_group / self.fpb as u64;
        let rotor = self.groups[gi].rotor;
        // Pass 1 (sub-block requests only): pack into partially used blocks.
        if k < self.fpb {
            for bi in 0..blocks {
                let b = (rotor + bi) % blocks;
                let g = &self.groups[gi];
                if g.block_partially_used(b, self.fpb) {
                    if let Some(local) = g.find_run_in_block(b, self.fpb, k) {
                        return Some(self.take(gi, b, local, k));
                    }
                }
            }
        }
        // Pass 2: any block with room.
        for bi in 0..blocks {
            let b = (rotor + bi) % blocks;
            if let Some(local) = self.groups[gi].find_run_in_block(b, self.fpb, k) {
                return Some(self.take(gi, b, local, k));
            }
        }
        None
    }

    fn take(&mut self, gi: usize, block: u64, local: u64, k: u32) -> u64 {
        let g = &mut self.groups[gi];
        for i in 0..k as u64 {
            debug_assert!(!g.get(local + i), "double allocation");
            g.set(local + i, true);
        }
        g.rotor = block;
        self.addr(gi, local)
    }

    /// Frees a run of `k` fragments starting at absolute address `addr`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any fragment was already free —
    /// double frees are file system bugs.
    pub fn free(&mut self, addr: u64, k: u32) {
        let (gi, local) = self.locate(addr);
        let g = &mut self.groups[gi];
        for i in 0..k as u64 {
            debug_assert!(g.get(local + i), "double free at {}", addr + i);
            g.set(local + i, false);
        }
    }

    /// Tries to extend the run at `addr` from `old_k` to `new_k`
    /// fragments in place (within the same block), returning `true` on
    /// success — FFS's cheap path when a small file grows.
    pub fn extend_in_place(&mut self, addr: u64, old_k: u32, new_k: u32) -> bool {
        assert!(old_k >= 1 && new_k > old_k && new_k <= self.fpb);
        let (gi, local) = self.locate(addr);
        // The extension must stay inside the block containing the run.
        let block_base = local / self.fpb as u64 * self.fpb as u64;
        if local - block_base + new_k as u64 > self.fpb as u64 {
            return false;
        }
        let g = &mut self.groups[gi];
        for i in old_k as u64..new_k as u64 {
            if g.get(local + i) {
                return false;
            }
        }
        for i in old_k as u64..new_k as u64 {
            g.set(local + i, true);
        }
        true
    }

    /// The group an absolute fragment address belongs to.
    pub fn group_of(&self, addr: u64) -> u32 {
        self.locate(addr).0 as u32
    }

    /// `true` if every fragment of the run is currently allocated (for
    /// consistency checks).
    pub fn is_allocated(&self, addr: u64, k: u32) -> bool {
        let (gi, local) = self.locate(addr);
        (0..k as u64).all(|i| self.groups[gi].get(local + i))
    }
}

/// Inode number allocator: a bitmap with a rotor.
#[derive(Debug, Clone)]
pub struct InoAllocator {
    bits: Vec<u64>,
    ninodes: u32,
    free: u32,
    rotor: u32,
}

impl InoAllocator {
    /// Creates an allocator for inodes `2..ninodes` (0 is the null inode,
    /// 1 is historically reserved).
    pub fn new(ninodes: u32) -> Self {
        let mut a = InoAllocator {
            bits: vec![0; (ninodes as usize).div_ceil(64)],
            ninodes,
            free: ninodes,
            rotor: 2,
        };
        a.mark(0);
        a.mark(1);
        a
    }

    fn mark(&mut self, ino: u32) {
        let w = (ino / 64) as usize;
        let m = 1u64 << (ino % 64);
        debug_assert!(self.bits[w] & m == 0);
        self.bits[w] |= m;
        self.free -= 1;
    }

    fn is_set(&self, ino: u32) -> bool {
        self.bits[(ino / 64) as usize] >> (ino % 64) & 1 == 1
    }

    /// Allocates a free inode number.
    pub fn alloc(&mut self) -> FsResult<u32> {
        if self.free == 0 {
            return Err(FsError::NoInodes);
        }
        for i in 0..self.ninodes {
            let ino = 2 + (self.rotor.wrapping_add(i).wrapping_sub(2)) % (self.ninodes - 2);
            if !self.is_set(ino) {
                self.mark(ino);
                self.rotor = ino + 1;
                if self.rotor >= self.ninodes {
                    self.rotor = 2;
                }
                return Ok(ino);
            }
        }
        Err(FsError::NoInodes)
    }

    /// Releases an inode number.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) on double free.
    pub fn release(&mut self, ino: u32) {
        debug_assert!(ino >= 2, "cannot free reserved inode {ino}");
        let w = (ino / 64) as usize;
        let m = 1u64 << (ino % 64);
        debug_assert!(self.bits[w] & m != 0, "double inode free {ino}");
        self.bits[w] &= !m;
        self.free += 1;
    }

    /// Number of free inodes.
    pub fn free_count(&self) -> u32 {
        self.free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc4() -> FragAllocator {
        // data_start 16, 64 data frags, 2 groups of 32, fpb 4.
        FragAllocator::new(4, 16, 64, 2)
    }

    #[test]
    fn geometry() {
        let a = alloc4();
        assert_eq!(a.total_frags(), 64);
        assert_eq!(a.free_frags(), 64);
        assert_eq!(a.frags_per_block(), 4);
    }

    #[test]
    fn full_block_is_aligned() {
        let mut a = alloc4();
        for _ in 0..16 {
            let addr = a.alloc(0, 4).unwrap();
            assert_eq!((addr - 16) % 4, 0, "block at {addr} not aligned");
        }
        assert_eq!(a.free_frags(), 0);
        assert_eq!(a.alloc(0, 4), Err(FsError::NoSpace));
    }

    #[test]
    fn fragments_pack_into_partial_blocks() {
        let mut a = alloc4();
        let x = a.alloc(0, 1).unwrap();
        let y = a.alloc(0, 1).unwrap();
        // Both fragments land in the same block window.
        assert_eq!((x - 16) / 4, (y - 16) / 4);
        assert_ne!(x, y);
    }

    #[test]
    fn fragments_do_not_cross_block_boundary() {
        let mut a = alloc4();
        let x = a.alloc(0, 3).unwrap();
        let y = a.alloc(0, 3).unwrap();
        for addr in [x, y] {
            let local = addr - 16;
            assert_eq!(local / 4, (local + 2) / 4, "run crosses block boundary");
        }
    }

    #[test]
    fn free_makes_space_reusable() {
        let mut a = alloc4();
        let mut addrs = Vec::new();
        while let Ok(addr) = a.alloc(0, 4) {
            addrs.push(addr);
        }
        for &addr in &addrs {
            a.free(addr, 4);
        }
        assert_eq!(a.free_frags(), 64);
        assert!(a.alloc(0, 4).is_ok());
    }

    #[test]
    fn extend_in_place_success_and_failure() {
        let mut a = alloc4();
        let x = a.alloc(0, 1).unwrap();
        assert!(a.extend_in_place(x, 1, 2));
        assert!(a.is_allocated(x, 2));
        // Block the next fragment, then extension must fail.
        let y = a.alloc(0, 1).unwrap();
        assert_eq!(y, x + 2); // Packed right after.
        assert!(!a.extend_in_place(x, 2, 3));
        // At the block edge extension also fails.
        let z = a.alloc(0, 3).unwrap();
        let local = z - 16;
        assert_eq!(local % 4, 0); // Starts a fresh block.
        assert!(a.extend_in_place(z, 3, 4)); // Room to grow to 4.
    }

    #[test]
    fn spills_to_next_group_when_full() {
        let mut a = alloc4();
        // Fill group 0 (32 frags = 8 blocks).
        for _ in 0..8 {
            a.alloc(0, 4).unwrap();
        }
        let addr = a.alloc(0, 4).unwrap();
        assert_eq!(a.group_of(addr), 1);
    }

    #[test]
    fn prefers_requested_group() {
        let mut a = alloc4();
        let addr = a.alloc(1, 4).unwrap();
        assert_eq!(a.group_of(addr), 1);
    }

    #[test]
    fn ino_allocator_basics() {
        let mut a = InoAllocator::new(8);
        assert_eq!(a.free_count(), 6); // 0 and 1 reserved.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..6 {
            let ino = a.alloc().unwrap();
            assert!((2..8).contains(&ino));
            assert!(seen.insert(ino));
        }
        assert_eq!(a.alloc(), Err(FsError::NoInodes));
        a.release(5);
        assert_eq!(a.alloc().unwrap(), 5);
    }
}
