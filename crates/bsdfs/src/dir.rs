//! Directory entry format.
//!
//! Directories are regular files whose data blocks hold fixed-size
//! 32-byte entries: a 4-byte inode number, a 1-byte name length, and up
//! to 27 bytes of name. A zero inode number marks a free slot. (Real
//! 4.2 BSD uses variable-length records; fixed slots keep the on-disk
//! walk simple while preserving what matters here — directories consume
//! data blocks that are read and written through the buffer cache.)

use crate::error::{FsError, FsResult};
use crate::inode::Ino;

/// Size of one directory entry slot in bytes.
pub const DIRENT_SIZE: usize = 32;

/// Maximum file name length in bytes.
pub const MAX_NAME: usize = DIRENT_SIZE - 5;

/// A parsed directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dirent {
    /// The inode the name refers to.
    pub ino: Ino,
    /// The component name.
    pub name: String,
}

/// Validates a single path component.
pub fn check_name(name: &str) -> FsResult<()> {
    if name.is_empty() || name == "." || name == ".." {
        return Err(FsError::BadPath);
    }
    if name.len() > MAX_NAME {
        return Err(FsError::NameTooLong);
    }
    if name.contains('/') || name.contains('\0') {
        return Err(FsError::BadPath);
    }
    Ok(())
}

/// Serializes an entry into a 32-byte slot.
///
/// # Panics
///
/// Panics if the name is longer than [`MAX_NAME`]; callers must validate
/// with [`check_name`] first.
pub fn pack(ino: Ino, name: &str) -> [u8; DIRENT_SIZE] {
    assert!(name.len() <= MAX_NAME, "name too long for slot");
    let mut b = [0u8; DIRENT_SIZE];
    b[0..4].copy_from_slice(&ino.0.to_le_bytes());
    b[4] = name.len() as u8;
    b[5..5 + name.len()].copy_from_slice(name.as_bytes());
    b
}

/// Parses a 32-byte slot; `None` for free slots or malformed names.
pub fn unpack(slot: &[u8]) -> Option<Dirent> {
    if slot.len() < DIRENT_SIZE {
        return None;
    }
    let ino = u32::from_le_bytes([slot[0], slot[1], slot[2], slot[3]]);
    if ino == 0 {
        return None;
    }
    let len = slot[4] as usize;
    if len > MAX_NAME {
        return None;
    }
    let name = std::str::from_utf8(&slot[5..5 + len]).ok()?.to_string();
    Some(Dirent {
        ino: Ino(ino),
        name,
    })
}

/// Scans a directory data buffer for `name`, returning the matching
/// entry's byte offset and inode.
pub fn find_in_block(data: &[u8], base_offset: u64, name: &str) -> Option<(u64, Ino)> {
    for (i, slot) in data.chunks_exact(DIRENT_SIZE).enumerate() {
        if let Some(e) = unpack(slot) {
            if e.name == name {
                return Some((base_offset + (i * DIRENT_SIZE) as u64, e.ino));
            }
        }
    }
    None
}

/// Scans a directory data buffer for a free slot, returning its offset.
pub fn free_slot_in_block(data: &[u8], base_offset: u64) -> Option<u64> {
    for (i, slot) in data.chunks_exact(DIRENT_SIZE).enumerate() {
        let ino = u32::from_le_bytes([slot[0], slot[1], slot[2], slot[3]]);
        if ino == 0 {
            return Some(base_offset + (i * DIRENT_SIZE) as u64);
        }
    }
    None
}

/// Collects every live entry in a directory data buffer.
pub fn entries_in_block(data: &[u8]) -> Vec<Dirent> {
    data.chunks_exact(DIRENT_SIZE).filter_map(unpack).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let slot = pack(Ino(42), "hello.c");
        let e = unpack(&slot).unwrap();
        assert_eq!(e.ino, Ino(42));
        assert_eq!(e.name, "hello.c");
    }

    #[test]
    fn free_slot_unpacks_to_none() {
        assert!(unpack(&[0u8; DIRENT_SIZE]).is_none());
    }

    #[test]
    fn name_validation() {
        assert!(check_name("ok.txt").is_ok());
        assert!(check_name("").is_err());
        assert!(check_name(".").is_err());
        assert!(check_name("..").is_err());
        assert!(check_name("a/b").is_err());
        assert!(check_name("a\0b").is_err());
        assert_eq!(
            check_name(&"x".repeat(MAX_NAME + 1)),
            Err(FsError::NameTooLong)
        );
        assert!(check_name(&"x".repeat(MAX_NAME)).is_ok());
    }

    #[test]
    fn find_and_free_slot() {
        let mut data = vec![0u8; DIRENT_SIZE * 4];
        data[0..DIRENT_SIZE].copy_from_slice(&pack(Ino(10), "a"));
        data[DIRENT_SIZE * 2..DIRENT_SIZE * 3].copy_from_slice(&pack(Ino(11), "b"));

        let (off, ino) = find_in_block(&data, 1000, "b").unwrap();
        assert_eq!(off, 1000 + 2 * DIRENT_SIZE as u64);
        assert_eq!(ino, Ino(11));
        assert!(find_in_block(&data, 0, "zzz").is_none());

        // First free slot is index 1.
        assert_eq!(free_slot_in_block(&data, 0), Some(DIRENT_SIZE as u64));

        let entries = entries_in_block(&data);
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn max_len_name_roundtrip() {
        let name = "n".repeat(MAX_NAME);
        let e = unpack(&pack(Ino(1), &name)).unwrap();
        assert_eq!(e.name, name);
    }

    #[test]
    #[should_panic(expected = "name too long")]
    fn pack_oversized_panics() {
        let _ = pack(Ino(1), &"n".repeat(MAX_NAME + 1));
    }
}
