//! File system geometry and tuning parameters.

/// Geometry and cache parameters for a [`crate::Fs`] instance.
///
/// Defaults mirror a typical 4.2 BSD configuration from the paper's era:
/// 4096-byte blocks divided into 1024-byte fragments, and a buffer cache
/// of about 400 kbytes ("about 10% of main memory", Section 6) flushed
/// every 30 seconds by `sync`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsParams {
    /// Fragment size in bytes; the allocation and addressing unit.
    pub frag_size: u32,
    /// Fragments per full block (block size = `frag_size * frags_per_block`).
    pub frags_per_block: u32,
    /// Total data fragments on the "disk" (excluding superblock and inode
    /// region).
    pub data_frags: u64,
    /// Number of inodes.
    pub ninodes: u32,
    /// Number of cylinder groups the data region is divided into.
    pub cyl_groups: u32,
    /// Buffer cache capacity in bytes.
    pub bcache_bytes: u64,
    /// Directory name cache capacity in entries.
    pub ncache_entries: usize,
    /// In-core inode table capacity (unreferenced entries kept cached).
    pub icache_entries: usize,
    /// Automatic `sync` interval in milliseconds (`None` = delayed write:
    /// dirty buffers only reach disk on eviction or explicit `sync`).
    pub sync_interval_ms: Option<u64>,
}

impl FsParams {
    /// A typical 4.2 BSD configuration: 4096/1024 blocks, a 128 Mbyte
    /// data region, and a 400 kbyte buffer cache synced every 30 s.
    pub fn bsd42() -> Self {
        FsParams {
            frag_size: 1024,
            frags_per_block: 4,
            data_frags: 128 * 1024, // 128 Mbytes of data space.
            ninodes: 65_536,
            cyl_groups: 16,
            bcache_bytes: 400 * 1024,
            ncache_entries: 512,
            icache_entries: 256,
            sync_interval_ms: Some(30_000),
        }
    }

    /// A memory-frugal configuration for fleet-scale trace generation
    /// (DESIGN.md §14): identical block geometry and cache sizes to
    /// [`FsParams::bsd42`] — so per-machine cache behavior is
    /// unchanged — but a 48 Mbyte data region and a quarter of the
    /// inodes. Hundreds of simulated machines each carry a full `Fs`;
    /// the allocator bitmaps and inode table dominate that footprint
    /// and scale with the data region, not with the cache.
    pub fn fleet() -> Self {
        FsParams {
            data_frags: 48 * 1024, // 48 Mbytes of data space.
            ninodes: 16_384,
            cyl_groups: 8,
            ..FsParams::bsd42()
        }
    }

    /// A small configuration for unit tests: 8 Mbytes of data space.
    pub fn small() -> Self {
        FsParams {
            frag_size: 1024,
            frags_per_block: 4,
            data_frags: 8 * 1024,
            ninodes: 4_096,
            cyl_groups: 4,
            bcache_bytes: 64 * 1024,
            ncache_entries: 64,
            icache_entries: 32,
            sync_interval_ms: Some(30_000),
        }
    }

    /// A tiny configuration that exhausts space quickly, for ENOSPC and
    /// allocator stress tests: 256 kbytes of data space.
    pub fn tiny() -> Self {
        FsParams {
            frag_size: 1024,
            frags_per_block: 4,
            data_frags: 256,
            ninodes: 64,
            cyl_groups: 2,
            bcache_bytes: 16 * 1024,
            ncache_entries: 16,
            icache_entries: 8,
            sync_interval_ms: Some(30_000),
        }
    }

    /// Full block size in bytes.
    pub fn block_size(&self) -> u32 {
        self.frag_size * self.frags_per_block
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.frag_size == 0 || !self.frag_size.is_power_of_two() {
            return Err("frag_size must be a positive power of two");
        }
        if self.frags_per_block == 0 || !self.frags_per_block.is_power_of_two() {
            return Err("frags_per_block must be a positive power of two");
        }
        if self.cyl_groups == 0 {
            return Err("cyl_groups must be positive");
        }
        if self.data_frags / u64::from(self.cyl_groups) < u64::from(self.frags_per_block) {
            return Err("each cylinder group needs at least one full block");
        }
        if self.ninodes < 2 {
            return Err("need at least two inodes (root and one file)");
        }
        if self.bcache_bytes < self.block_size() as u64 * 4 {
            return Err("buffer cache must hold at least four blocks");
        }
        Ok(())
    }
}

impl Default for FsParams {
    fn default() -> Self {
        FsParams::bsd42()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        FsParams::bsd42().validate().unwrap();
        FsParams::fleet().validate().unwrap();
        FsParams::small().validate().unwrap();
        FsParams::tiny().validate().unwrap();
    }

    #[test]
    fn block_size_is_product() {
        assert_eq!(FsParams::bsd42().block_size(), 4096);
    }

    #[test]
    fn fleet_preset_keeps_cache_geometry() {
        let fleet = FsParams::fleet();
        let bsd = FsParams::bsd42();
        assert_eq!(fleet.block_size(), bsd.block_size());
        assert_eq!(fleet.bcache_bytes, bsd.bcache_bytes);
        assert_eq!(fleet.ncache_entries, bsd.ncache_entries);
        assert_eq!(fleet.icache_entries, bsd.icache_entries);
        assert_eq!(fleet.sync_interval_ms, bsd.sync_interval_ms);
        assert!(fleet.data_frags < bsd.data_frags);
        assert!(fleet.ninodes < bsd.ninodes);
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let mut p = FsParams::small();
        p.frag_size = 1000;
        assert!(p.validate().is_err());

        let mut p = FsParams::small();
        p.cyl_groups = 0;
        assert!(p.validate().is_err());

        let mut p = FsParams::small();
        p.data_frags = 4;
        p.cyl_groups = 4;
        assert!(p.validate().is_err());

        let mut p = FsParams::small();
        p.bcache_bytes = 0;
        assert!(p.validate().is_err());
    }
}
