//! An in-memory 4.2 BSD-style fast file system with logical-level tracer
//! hooks.
//!
//! This crate is the *substrate* the reproduced paper's tracer ran on: a
//! file system in the style of the Berkeley Fast File System (McKusick et
//! al., 1984) exposing a Unix-flavored system call layer. It exists so
//! that synthetic workloads exercise a real storage stack — path lookup
//! through directory blocks, inode I/O, block/fragment allocation, and a
//! buffer cache — and so the tracer can hook the exact seven events of
//! Table II where the 4.2 BSD kernel hooks sat.
//!
//! Architecture, bottom up:
//!
//! * [`disk`] — a flat in-memory "disk" addressed in fragments, counting
//!   physical transfers.
//! * [`alloc`] — a cylinder-group block/fragment allocator over a frag
//!   bitmap; small files occupy only the fragments they need.
//! * [`inode`] — on-disk inodes (12 direct + single + double indirect
//!   pointers at fragment resolution) with byte-level serialization, plus
//!   the in-core inode table with reference counts.
//! * [`buf`] — the buffer cache: variable-size buffers keyed by fragment
//!   address, LRU replacement, write-through / flush-back / delayed-write
//!   policies, and hit/miss accounting (the `bsdfs` counterpart of the
//!   paper's Section 6 cache, but fed by *all* traffic including inodes
//!   and directories — the basis of the Section 6.4 comparison against
//!   Leffler's measurements).
//! * [`dir`] — directory blocks holding fixed-size entries.
//! * [`fs`] — the [`Fs`] system call layer: `open`, `close`, `read`,
//!   `write`, `lseek`, `creat`, `unlink`, `truncate`, `mkdir`, `stat`,
//!   `execve`, `sync`, with a [`tracer::Tracer`] recording Table II
//!   events.
//!
//! Simulated time is supplied by the caller on every call (`now_ms`); the
//! crate never reads a real clock.
//!
//! # Examples
//!
//! ```
//! use bsdfs::{Fs, FsParams, OpenFlags};
//!
//! let mut fs = Fs::new(FsParams::small()).unwrap();
//! fs.mkdir("/tmp", 0, 0).unwrap();
//! let fd = fs.open("/tmp/a.out", OpenFlags::create_write(), 0, 10).unwrap();
//! fs.write(fd, 12, 10).unwrap();
//! fs.close(fd, 15).unwrap();
//! assert_eq!(fs.stat("/tmp/a.out", 20).unwrap().size, 12);
//! let trace = fs.take_trace();
//! assert_eq!(trace.len(), 2); // create + close
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod buf;
pub mod dir;
pub mod disk;
mod error;
pub mod fs;
pub mod inode;
mod params;
pub mod tracer;

pub use buf::{BufCacheStats, BufWritePolicy};
pub use error::{FsError, FsResult};
pub use fs::{Fd, Fs, FsStats, OpenFlags, SeekFrom, Stat};
pub use inode::{FileType, Ino};
pub use params::FsParams;
pub use tracer::Tracer;
