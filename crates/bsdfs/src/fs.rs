//! The system call layer: a Unix-flavored API over the FFS structures.
//!
//! All operations take the current simulated time in milliseconds; the
//! file system never reads a real clock. Paths are absolute
//! (`/usr/src/main.c`); `.` and `..` components are not supported.
//!
//! The tracer records the seven Table II events at this layer. Reads and
//! writes are *not* traced — their effects are deducible from the
//! positions recorded at `open`, `seek`, and `close`, which is the
//! paper's central tracing idea.

use std::collections::{HashMap, HashSet};

use fstrace::{AccessMode, FileId, OpenId, Trace, UserId};

use crate::alloc::{FragAllocator, InoAllocator};
use crate::buf::{BufCache, BufCacheStats, BufWritePolicy};
use crate::dir;
use crate::disk::{Disk, DiskStats};
use crate::error::{FsError, FsResult};
use crate::inode::{
    FileType, Ino, Inode, InodeTable, InodeTableStats, INODE_SIZE, NDIRECT, ROOT_INO,
};
use crate::params::FsParams;
use crate::tracer::Tracer;

/// Flags for [`Fs::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create the file if it does not exist.
    pub create: bool,
    /// Truncate the file to zero length if it exists.
    pub truncate: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    pub fn read_only() -> Self {
        OpenFlags {
            read: true,
            ..Default::default()
        }
    }

    /// `O_WRONLY`.
    pub fn write_only() -> Self {
        OpenFlags {
            write: true,
            ..Default::default()
        }
    }

    /// `O_RDWR`.
    pub fn read_write() -> Self {
        OpenFlags {
            read: true,
            write: true,
            ..Default::default()
        }
    }

    /// `creat()`: write-only, create, truncate — the canonical way new
    /// files were made in 1985.
    pub fn create_write() -> Self {
        OpenFlags {
            write: true,
            create: true,
            truncate: true,
            ..Default::default()
        }
    }

    /// The trace access mode for these flags.
    pub fn mode(&self) -> FsResult<AccessMode> {
        match (self.read, self.write) {
            (true, false) => Ok(AccessMode::ReadOnly),
            (false, true) => Ok(AccessMode::WriteOnly),
            (true, true) => Ok(AccessMode::ReadWrite),
            (false, false) => Err(FsError::InvalidArg),
        }
    }
}

/// Whence argument for [`Fs::lseek`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeekFrom {
    /// Absolute position.
    Set(u64),
    /// Relative to end of file.
    End(i64),
    /// Relative to the current position.
    Current(i64),
}

/// A file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub u32);

/// Metadata returned by [`Fs::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// Inode number.
    pub ino: Ino,
    /// File type.
    pub file_type: FileType,
    /// Size in bytes.
    pub size: u64,
    /// Link count.
    pub nlink: u16,
    /// Trace file id.
    pub fid: u64,
    /// Modification time (ms).
    pub mtime: u64,
}

/// System call counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsStats {
    /// `open` calls that succeeded (including creates).
    pub opens: u64,
    /// Opens that created or truncated-to-zero the file.
    pub creates: u64,
    /// `close` calls.
    pub closes: u64,
    /// `read` calls.
    pub reads: u64,
    /// `write` calls.
    pub writes: u64,
    /// `lseek` calls.
    pub seeks: u64,
    /// `unlink` calls.
    pub unlinks: u64,
    /// `truncate` calls.
    pub truncates: u64,
    /// `execve` calls.
    pub execves: u64,
    /// Bytes read through `read`.
    pub bytes_read: u64,
    /// Bytes written through `write`.
    pub bytes_written: u64,
}

/// Name cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NameCacheStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that scanned directory blocks.
    pub misses: u64,
}

impl NameCacheStats {
    /// Hit ratio in `[0, 1]` (Leffler et al. report ~85% for 4.3 BSD).
    ///
    /// Zero lookups yield `0.0`, per the workspace-wide [`obs::ratio`]
    /// convention.
    pub fn hit_ratio(&self) -> f64 {
        obs::ratio(self.hits, self.hits + self.misses)
    }
}

/// Live counter handles behind [`NameCacheStats`].
#[derive(Debug, Clone, Default)]
struct NameCounters {
    hits: obs::Counter,
    misses: obs::Counter,
}

impl NameCounters {
    fn snapshot(&self) -> NameCacheStats {
        NameCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
        }
    }

    fn register(&self, registry: &obs::Registry, prefix: &str) {
        registry.attach_counter(&format!("{prefix}.hits"), &self.hits);
        registry.attach_counter(&format!("{prefix}.misses"), &self.misses);
    }
}

/// Directory name lookup cache: two-generation approximate LRU.
///
/// When the new generation fills half the capacity, it becomes the old
/// generation and lookups promote survivors back — O(1) per operation
/// with hit behavior close to true LRU.
struct NameCache {
    cap: usize,
    new: HashMap<(Ino, String), Ino>,
    old: HashMap<(Ino, String), Ino>,
    stats: NameCounters,
}

impl NameCache {
    fn new(cap: usize) -> Self {
        NameCache {
            cap: cap.max(2),
            new: HashMap::new(),
            old: HashMap::new(),
            stats: NameCounters::default(),
        }
    }

    fn lookup(&mut self, dirino: Ino, name: &str) -> Option<Ino> {
        let key = (dirino, name.to_string());
        if let Some(&ino) = self.new.get(&key) {
            self.stats.hits.inc();
            return Some(ino);
        }
        if let Some(&ino) = self.old.get(&key) {
            self.stats.hits.inc();
            self.insert(dirino, name, ino); // Promote.
            return Some(ino);
        }
        self.stats.misses.inc();
        None
    }

    fn insert(&mut self, dirino: Ino, name: &str, ino: Ino) {
        if self.new.len() >= self.cap / 2 {
            self.old = std::mem::take(&mut self.new);
        }
        self.new.insert((dirino, name.to_string()), ino);
    }

    fn invalidate(&mut self, dirino: Ino, name: &str) {
        let key = (dirino, name.to_string());
        self.new.remove(&key);
        self.old.remove(&key);
    }

    fn purge_dir(&mut self, dirino: Ino) {
        self.new.retain(|(d, _), _| *d != dirino);
        self.old.retain(|(d, _), _| *d != dirino);
    }
}

/// An open file description.
#[derive(Debug, Clone)]
struct OpenFile {
    ino: Ino,
    pos: u64,
    mode: AccessMode,
    open_id: OpenId,
}

/// The file system: disk, allocators, caches, descriptors, and tracer.
///
/// See the crate documentation for an overview and example.
pub struct Fs {
    params: FsParams,
    disk: Disk,
    falloc: FragAllocator,
    ialloc: InoAllocator,
    itable: InodeTable,
    bcache: BufCache,
    ncache: NameCache,
    fds: Vec<Option<OpenFile>>,
    free_fds: Vec<u32>,
    orphans: HashSet<Ino>,
    tracer: Tracer,
    stats: FsStats,
    next_fid: u64,
    last_sync_ms: u64,
    data_start: u64,
}

impl Fs {
    /// Creates ("mkfs") a file system with the given parameters, using
    /// the flush-back or delayed-write policy implied by
    /// `params.sync_interval_ms`. Tracing starts enabled.
    pub fn new(params: FsParams) -> FsResult<Self> {
        let policy = match params.sync_interval_ms {
            Some(interval_ms) => BufWritePolicy::FlushBack { interval_ms },
            None => BufWritePolicy::DelayedWrite,
        };
        Fs::with_policy(params, policy)
    }

    /// Creates a file system with an explicit buffer cache write policy.
    pub fn with_policy(params: FsParams, policy: BufWritePolicy) -> FsResult<Self> {
        params.validate().map_err(FsError::Corrupt)?;
        let inode_bytes = params.ninodes as u64 * INODE_SIZE as u64;
        let inode_frags = inode_bytes.div_ceil(params.frag_size as u64);
        let data_start = 1 + inode_frags; // Frag 0 is the superblock.
        let total_frags = data_start + params.data_frags;
        let mut disk = Disk::new(params.frag_size, total_frags);
        // Write a minimal superblock so the disk is self-describing.
        let mut sb = vec![0u8; params.frag_size as usize];
        sb[0..4].copy_from_slice(b"FFS\x01");
        sb[4..8].copy_from_slice(&params.frag_size.to_le_bytes());
        sb[8..12].copy_from_slice(&params.frags_per_block.to_le_bytes());
        sb[12..16].copy_from_slice(&params.ninodes.to_le_bytes());
        disk.write_extent(0, 1, &sb);
        let falloc = FragAllocator::new(
            params.frags_per_block,
            data_start,
            params.data_frags,
            params.cyl_groups,
        );
        let mut fs = Fs {
            bcache: BufCache::new(params.bcache_bytes, policy),
            ncache: NameCache::new(params.ncache_entries),
            itable: InodeTable::new(params.icache_entries),
            ialloc: InoAllocator::new(params.ninodes),
            falloc,
            disk,
            fds: Vec::new(),
            free_fds: Vec::new(),
            orphans: HashSet::new(),
            tracer: Tracer::new(true),
            stats: FsStats::default(),
            next_fid: 1,
            last_sync_ms: 0,
            data_start,
            params,
        };
        // Create the root directory.
        let root = fs.ialloc.alloc()?;
        debug_assert_eq!(Ino(root), ROOT_INO);
        let mut inode = Inode::empty(FileType::Directory, 0, 0);
        inode.nlink = 1;
        fs.istore(ROOT_INO, inode);
        fs.sync(0);
        Ok(fs)
    }

    /// Geometry and tuning parameters.
    pub fn params(&self) -> &FsParams {
        &self.params
    }

    /// Full block size in bytes.
    fn bs(&self) -> u64 {
        self.params.block_size() as u64
    }

    /// Pointers per indirect block.
    fn ppb(&self) -> u64 {
        self.bs() / 4
    }

    // ------------------------------------------------------------------
    // Inode I/O.

    fn inode_frag(&self, ino: Ino) -> u64 {
        1 + (ino.0 as u64 * INODE_SIZE as u64) / self.params.frag_size as u64
    }

    fn inode_off(&self, ino: Ino) -> usize {
        (ino.0 as usize * INODE_SIZE) % self.params.frag_size as usize
    }

    fn iflush(&mut self, ino: Ino, inode: &Inode) {
        let frag = self.inode_frag(ino);
        let off = self.inode_off(ino);
        let bytes = inode.to_bytes();
        self.bcache.modify(&mut self.disk, frag, 1, false, |b| {
            b[off..off + INODE_SIZE].copy_from_slice(&bytes);
        });
    }

    /// Loads an inode (through the caches) and returns a copy.
    fn iget(&mut self, ino: Ino) -> FsResult<Inode> {
        if let Some(i) = self.itable.get(ino) {
            return Ok(i.clone());
        }
        let frag = self.inode_frag(ino);
        let off = self.inode_off(ino);
        let inode = self
            .bcache
            .read(&mut self.disk, frag, 1, |b| {
                Inode::from_bytes(&b[off..off + INODE_SIZE])
            })
            .ok_or(FsError::Corrupt("reference to free inode"))?;
        let evicted = self.itable.insert(ino, inode.clone(), false);
        for (eino, einode) in evicted {
            self.iflush(eino, &einode);
        }
        Ok(inode)
    }

    /// Stores an updated inode into the in-core table (dirty).
    fn istore(&mut self, ino: Ino, inode: Inode) {
        if let Some(slot) = self.itable.get_mut(ino) {
            *slot = inode;
            return;
        }
        let evicted = self.itable.insert(ino, inode, true);
        for (eino, einode) in evicted {
            self.iflush(eino, &einode);
        }
    }

    /// Frees an inode: zeroes the on-disk slot and releases the number.
    fn ifree(&mut self, ino: Ino) {
        let frag = self.inode_frag(ino);
        let off = self.inode_off(ino);
        self.bcache.modify(&mut self.disk, frag, 1, false, |b| {
            b[off..off + INODE_SIZE].fill(0);
        });
        self.itable.remove(ino);
        self.ialloc.release(ino.0);
    }

    // ------------------------------------------------------------------
    // Block mapping.

    /// Fragments occupied by file block `fb` of a file of `size` bytes.
    fn frags_of_block(&self, size: u64, fb: u64) -> u32 {
        let bs = self.bs();
        let start = fb * bs;
        debug_assert!(size > start);
        let bytes = (size - start).min(bs);
        bytes.div_ceil(self.params.frag_size as u64) as u32
    }

    fn max_blocks(&self) -> u64 {
        NDIRECT as u64 + self.ppb() + self.ppb() * self.ppb()
    }

    /// Returns the fragment address of file block `fb`, or 0 if unmapped.
    fn bmap_read(&mut self, inode: &Inode, fb: u64) -> FsResult<u32> {
        let ppb = self.ppb();
        if fb < NDIRECT as u64 {
            return Ok(inode.direct[fb as usize]);
        }
        let fb = fb - NDIRECT as u64;
        if fb < ppb {
            if inode.indirect == 0 {
                return Ok(0);
            }
            let addr = inode.indirect as u64;
            let fpb = self.params.frags_per_block;
            return Ok(self.bcache.read(&mut self.disk, addr, fpb, |b| {
                let i = fb as usize * 4;
                u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]])
            }));
        }
        let fb = fb - ppb;
        if fb >= ppb * ppb {
            return Err(FsError::FileTooBig);
        }
        if inode.dindirect == 0 {
            return Ok(0);
        }
        let fpb = self.params.frags_per_block;
        let l1 = self
            .bcache
            .read(&mut self.disk, inode.dindirect as u64, fpb, |b| {
                let i = (fb / ppb) as usize * 4;
                u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]])
            });
        if l1 == 0 {
            return Ok(0);
        }
        Ok(self.bcache.read(&mut self.disk, l1 as u64, fpb, |b| {
            let i = (fb % ppb) as usize * 4;
            u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]])
        }))
    }

    /// Allocates a zeroed full block for metadata (indirect blocks).
    fn alloc_meta_block(&mut self, pref: u32) -> FsResult<u32> {
        let fpb = self.params.frags_per_block;
        let addr = self.falloc.alloc(pref, fpb)?;
        self.bcache
            .modify(&mut self.disk, addr, fpb, true, |b| b.fill(0));
        u32::try_from(addr).map_err(|_| FsError::FileTooBig)
    }

    fn write_ptr(&mut self, block_addr: u32, index: u64, value: u32) {
        let fpb = self.params.frags_per_block;
        self.bcache
            .modify(&mut self.disk, block_addr as u64, fpb, false, |b| {
                let i = index as usize * 4;
                b[i..i + 4].copy_from_slice(&value.to_le_bytes());
            });
    }

    /// Records `addr` as the location of file block `fb`, allocating
    /// indirect blocks as needed. Mutates the caller's inode copy.
    fn bmap_set(&mut self, ino: Ino, inode: &mut Inode, fb: u64, addr: u32) -> FsResult<()> {
        let ppb = self.ppb();
        let pref = ino.0 % self.params.cyl_groups;
        if fb < NDIRECT as u64 {
            inode.direct[fb as usize] = addr;
            return Ok(());
        }
        let fb = fb - NDIRECT as u64;
        if fb < ppb {
            if inode.indirect == 0 {
                inode.indirect = self.alloc_meta_block(pref)?;
            }
            self.write_ptr(inode.indirect, fb, addr);
            return Ok(());
        }
        let fb = fb - ppb;
        if fb >= ppb * ppb {
            return Err(FsError::FileTooBig);
        }
        if inode.dindirect == 0 {
            inode.dindirect = self.alloc_meta_block(pref)?;
        }
        let fpb = self.params.frags_per_block;
        let l1_index = fb / ppb;
        let l1 = self
            .bcache
            .read(&mut self.disk, inode.dindirect as u64, fpb, |b| {
                let i = l1_index as usize * 4;
                u32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]])
            });
        let l1 = if l1 == 0 {
            let fresh = self.alloc_meta_block(pref)?;
            self.write_ptr(inode.dindirect, l1_index, fresh);
            fresh
        } else {
            l1
        };
        self.write_ptr(l1, fb % ppb, addr);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Data I/O.

    /// Writes `len` bytes at `pos`, growing the file. `src` supplies the
    /// data: `Some(bytes)` for real content, `None` for the file's fill
    /// pattern byte.
    fn do_write(
        &mut self,
        ino: Ino,
        inode: Inode,
        pos: u64,
        len: u64,
        src: Option<&[u8]>,
        now_ms: u64,
    ) -> FsResult<Inode> {
        let pattern = (inode.fid as u8) | 1;
        self.do_write_fill(ino, inode, pos, len, src, pattern, now_ms)
    }

    #[allow(clippy::too_many_arguments)]
    fn do_write_fill(
        &mut self,
        ino: Ino,
        mut inode: Inode,
        pos: u64,
        len: u64,
        src: Option<&[u8]>,
        pattern: u8,
        now_ms: u64,
    ) -> FsResult<Inode> {
        if len == 0 {
            return Ok(inode);
        }
        if let Some(s) = src {
            debug_assert_eq!(s.len() as u64, len);
        }
        // Fill any gap between EOF and pos with zeros first (no sparse
        // files), so every mapped block below EOF is allocated.
        if pos > inode.size {
            let gap = pos - inode.size;
            let start = inode.size;
            inode = self.do_write_fill(ino, inode, start, gap, None, 0, now_ms)?;
        }
        let bs = self.bs();
        let end = pos + len;
        if end.div_ceil(bs) > self.max_blocks() {
            return Err(FsError::FileTooBig);
        }
        let frag = self.params.frag_size as u64;
        let first_fb = pos / bs;
        let last_fb = (end - 1) / bs;
        for fb in first_fb..=last_fb {
            let block_start = fb * bs;
            let write_lo = pos.max(block_start);
            let write_hi = end.min(block_start + bs);
            let old_bytes = inode.size.saturating_sub(block_start).min(bs);
            let new_bytes = old_bytes.max(write_hi - block_start);
            let req = new_bytes.div_ceil(frag) as u32;
            let cur_addr = self.bmap_read(&inode, fb)?;
            let cur_frags = if cur_addr == 0 {
                0
            } else {
                old_bytes.div_ceil(frag) as u32
            };
            let pref = ino.0 % self.params.cyl_groups;
            let (addr, fresh) = if cur_addr == 0 {
                let a = self.falloc.alloc(pref, req)?;
                let a32 = u32::try_from(a).map_err(|_| FsError::FileTooBig)?;
                self.bmap_set(ino, &mut inode, fb, a32)?;
                (a, true)
            } else if req > cur_frags {
                // Grow the tail extent: capture current content, then
                // either extend in place or reallocate (FFS realloccg).
                let old = cur_addr as u64;
                let mut kept = vec![0u8; (cur_frags as u64 * frag) as usize];
                self.bcache.read(&mut self.disk, old, cur_frags, |b| {
                    kept.copy_from_slice(b);
                });
                self.bcache.invalidate(old);
                let a = if self.falloc.extend_in_place(old, cur_frags, req) {
                    old
                } else {
                    self.falloc.free(old, cur_frags);
                    let a = self.falloc.alloc(pref, req)?;
                    let a32 = u32::try_from(a).map_err(|_| FsError::FileTooBig)?;
                    self.bmap_set(ino, &mut inode, fb, a32)?;
                    a
                };
                // Rebuild the (larger) extent wholesale from kept bytes;
                // the write below then lays new data over it.
                self.bcache.modify(&mut self.disk, a, req, true, |b| {
                    b.fill(0);
                    b[..kept.len()].copy_from_slice(&kept);
                });
                (a, false)
            } else {
                (cur_addr as u64, false)
            };
            // Whole-extent overwrite elision: safe when the write covers
            // every previously valid byte of the block.
            let whole = fresh || (write_lo == block_start && write_hi - block_start >= old_bytes);
            let lo = (write_lo - block_start) as usize;
            let hi = (write_hi - block_start) as usize;
            let src_off = (write_lo - pos) as usize;
            self.bcache.modify(&mut self.disk, addr, req, whole, |b| {
                if fresh && whole {
                    b.fill(0);
                }
                match src {
                    Some(s) => b[lo..hi].copy_from_slice(&s[src_off..src_off + (hi - lo)]),
                    None => b[lo..hi].fill(pattern),
                }
            });
            inode.size = inode.size.max(write_hi);
        }
        inode.mtime = now_ms;
        Ok(inode)
    }

    /// Reads up to `len` bytes at `pos`; returns bytes read (short at
    /// EOF). `out` receives the data when provided.
    fn do_read(
        &mut self,
        inode: &Inode,
        pos: u64,
        len: u64,
        mut out: Option<&mut [u8]>,
    ) -> FsResult<u64> {
        if pos >= inode.size || len == 0 {
            return Ok(0);
        }
        let n = len.min(inode.size - pos);
        let bs = self.bs();
        let frag = self.params.frag_size as u64;
        let end = pos + n;
        for fb in pos / bs..=(end - 1) / bs {
            let block_start = fb * bs;
            let lo = pos.max(block_start);
            let hi = end.min(block_start + bs);
            let addr = self.bmap_read(inode, fb)?;
            if addr == 0 {
                return Err(FsError::Corrupt("hole inside file"));
            }
            let nfrags = self.frags_of_block(inode.size, fb);
            debug_assert!((hi - 1 - block_start) / frag < nfrags as u64);
            self.bcache.read(&mut self.disk, addr as u64, nfrags, |b| {
                if let Some(buf) = out.as_deref_mut() {
                    let dst_lo = (lo - pos) as usize;
                    let dst_hi = (hi - pos) as usize;
                    buf[dst_lo..dst_hi].copy_from_slice(
                        &b[(lo - block_start) as usize..(hi - block_start) as usize],
                    );
                }
            });
        }
        Ok(n)
    }

    /// Frees all blocks beyond `new_len` and shrinks the tail extent.
    fn do_truncate(&mut self, ino: Ino, mut inode: Inode, new_len: u64) -> FsResult<Inode> {
        if new_len >= inode.size {
            inode.size = new_len.max(inode.size);
            return Ok(inode);
        }
        let bs = self.bs();
        let frag = self.params.frag_size as u64;
        let old_blocks = inode.size.div_ceil(bs);
        let new_blocks = new_len.div_ceil(bs);
        // Free whole blocks past the new end.
        for fb in new_blocks..old_blocks {
            let addr = self.bmap_read(&inode, fb)?;
            if addr != 0 {
                let nfrags = self.frags_of_block(inode.size, fb);
                self.bcache.invalidate(addr as u64);
                self.falloc.free(addr as u64, nfrags);
                self.bmap_set(ino, &mut inode, fb, 0)?;
            }
        }
        // Shrink the new tail block's fragment run if it got shorter.
        if new_len > 0 {
            let fb = new_blocks - 1;
            let addr = self.bmap_read(&inode, fb)?;
            if addr != 0 {
                let old_tail = self.frags_of_block(inode.size, fb);
                let new_tail = (new_len - fb * bs).div_ceil(frag) as u32;
                if new_tail < old_tail {
                    let keep_len = (new_tail as u64 * frag) as usize;
                    let mut kept = vec![0u8; keep_len];
                    self.bcache
                        .read(&mut self.disk, addr as u64, old_tail, |b| {
                            kept.copy_from_slice(&b[..keep_len]);
                        });
                    self.bcache.invalidate(addr as u64);
                    self.falloc
                        .free(addr as u64 + new_tail as u64, old_tail - new_tail);
                    self.bcache
                        .modify(&mut self.disk, addr as u64, new_tail, true, |b| {
                            b.copy_from_slice(&kept);
                        });
                }
            }
        }
        // Release indirect blocks that no longer map anything.
        let fpb = self.params.frags_per_block;
        let ppb = self.ppb();
        if new_blocks <= NDIRECT as u64 && inode.indirect != 0 {
            self.bcache.invalidate(inode.indirect as u64);
            self.falloc.free(inode.indirect as u64, fpb);
            inode.indirect = 0;
        }
        if new_blocks <= NDIRECT as u64 + ppb && inode.dindirect != 0 {
            // Free all live level-1 blocks, then the root.
            let dind = inode.dindirect as u64;
            let mut l1s = Vec::new();
            self.bcache.read(&mut self.disk, dind, fpb, |b| {
                for c in b.chunks_exact(4) {
                    let p = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
                    if p != 0 {
                        l1s.push(p);
                    }
                }
            });
            for p in l1s {
                self.bcache.invalidate(p as u64);
                self.falloc.free(p as u64, fpb);
            }
            self.bcache.invalidate(dind);
            self.falloc.free(dind, fpb);
            inode.dindirect = 0;
        }
        inode.size = new_len;
        Ok(inode)
    }

    // ------------------------------------------------------------------
    // Directories and path lookup.

    /// Looks up `name` in directory `dirino`, through the name cache.
    fn dir_lookup(&mut self, dirino: Ino, name: &str) -> FsResult<Option<Ino>> {
        if let Some(ino) = self.ncache.lookup(dirino, name) {
            return Ok(Some(ino));
        }
        let dnode = self.iget(dirino)?;
        if !dnode.is_dir() {
            return Err(FsError::NotDir);
        }
        let bs = self.bs();
        let mut found = None;
        for fb in 0..dnode.size.div_ceil(bs) {
            let addr = self.bmap_read(&dnode, fb)?;
            if addr == 0 {
                continue;
            }
            let nfrags = self.frags_of_block(dnode.size, fb);
            let hit = self.bcache.read(&mut self.disk, addr as u64, nfrags, |b| {
                dir::find_in_block(b, fb * bs, name)
            });
            if let Some((_, ino)) = hit {
                found = Some(ino);
                break;
            }
        }
        if let Some(ino) = found {
            self.ncache.insert(dirino, name, ino);
        }
        Ok(found)
    }

    /// Adds an entry to a directory, growing it if needed.
    fn dir_add(&mut self, dirino: Ino, name: &str, ino: Ino, now_ms: u64) -> FsResult<()> {
        dir::check_name(name)?;
        let dnode = self.iget(dirino)?;
        if !dnode.is_dir() {
            return Err(FsError::NotDir);
        }
        let bs = self.bs();
        let slot_bytes = dir::pack(ino, name);
        // Find a free slot in existing blocks.
        for fb in 0..dnode.size.div_ceil(bs) {
            let addr = self.bmap_read(&dnode, fb)?;
            if addr == 0 {
                continue;
            }
            let nfrags = self.frags_of_block(dnode.size, fb);
            let slot = self.bcache.read(&mut self.disk, addr as u64, nfrags, |b| {
                dir::free_slot_in_block(b, fb * bs)
            });
            if let Some(off) = slot {
                let within = (off - fb * bs) as usize;
                self.bcache
                    .modify(&mut self.disk, addr as u64, nfrags, false, |b| {
                        b[within..within + dir::DIRENT_SIZE].copy_from_slice(&slot_bytes);
                    });
                self.ncache.insert(dirino, name, ino);
                return Ok(());
            }
        }
        // Grow the directory by one fragment of fresh (zero) slots and
        // put the entry at its head.
        let grow_at = dnode.size;
        let frag = self.params.frag_size as u64;
        let mut data = vec![0u8; frag as usize];
        data[..dir::DIRENT_SIZE].copy_from_slice(&slot_bytes);
        let newnode = self.do_write(dirino, dnode, grow_at, frag, Some(&data), now_ms)?;
        self.istore(dirino, newnode);
        self.ncache.insert(dirino, name, ino);
        Ok(())
    }

    /// Removes an entry from a directory.
    fn dir_remove(&mut self, dirino: Ino, name: &str) -> FsResult<Ino> {
        let dnode = self.iget(dirino)?;
        if !dnode.is_dir() {
            return Err(FsError::NotDir);
        }
        let bs = self.bs();
        for fb in 0..dnode.size.div_ceil(bs) {
            let addr = self.bmap_read(&dnode, fb)?;
            if addr == 0 {
                continue;
            }
            let nfrags = self.frags_of_block(dnode.size, fb);
            let hit = self.bcache.read(&mut self.disk, addr as u64, nfrags, |b| {
                dir::find_in_block(b, fb * bs, name)
            });
            if let Some((off, ino)) = hit {
                let within = (off - fb * bs) as usize;
                self.bcache
                    .modify(&mut self.disk, addr as u64, nfrags, false, |b| {
                        b[within..within + dir::DIRENT_SIZE].fill(0);
                    });
                self.ncache.invalidate(dirino, name);
                return Ok(ino);
            }
        }
        Err(FsError::NotFound)
    }

    /// `true` if the directory holds no live entries.
    fn dir_is_empty(&mut self, dirino: Ino) -> FsResult<bool> {
        let dnode = self.iget(dirino)?;
        let bs = self.bs();
        for fb in 0..dnode.size.div_ceil(bs) {
            let addr = self.bmap_read(&dnode, fb)?;
            if addr == 0 {
                continue;
            }
            let nfrags = self.frags_of_block(dnode.size, fb);
            let any = self.bcache.read(&mut self.disk, addr as u64, nfrags, |b| {
                !dir::entries_in_block(b).is_empty()
            });
            if any {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Lists a directory's entries (the workload's `ls`). Not traced —
    /// the real `ls` opens and reads the directory as a file, which the
    /// workload models with `open`/`read`/`close`.
    pub fn readdir(&mut self, path: &str, _now_ms: u64) -> FsResult<Vec<String>> {
        let ino = self.resolve(path)?;
        let dnode = self.iget(ino)?;
        if !dnode.is_dir() {
            return Err(FsError::NotDir);
        }
        let bs = self.bs();
        let mut names = Vec::new();
        for fb in 0..dnode.size.div_ceil(bs) {
            let addr = self.bmap_read(&dnode, fb)?;
            if addr == 0 {
                continue;
            }
            let nfrags = self.frags_of_block(dnode.size, fb);
            self.bcache.read(&mut self.disk, addr as u64, nfrags, |b| {
                for e in dir::entries_in_block(b) {
                    names.push(e.name);
                }
            });
        }
        Ok(names)
    }

    fn split_path(path: &str) -> FsResult<Vec<&str>> {
        if !path.starts_with('/') {
            return Err(FsError::BadPath);
        }
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        for c in &comps {
            dir::check_name(c)?;
        }
        Ok(comps)
    }

    /// Resolves an absolute path to an inode.
    pub fn resolve(&mut self, path: &str) -> FsResult<Ino> {
        let comps = Self::split_path(path)?;
        let mut cur = ROOT_INO;
        for c in comps {
            cur = self.dir_lookup(cur, c)?.ok_or(FsError::NotFound)?;
        }
        Ok(cur)
    }

    /// Resolves a path to its parent directory, final component, and the
    /// component's inode if it exists.
    fn resolve_parent<'p>(&mut self, path: &'p str) -> FsResult<(Ino, &'p str, Option<Ino>)> {
        let comps = Self::split_path(path)?;
        let Some((&last, dirs)) = comps.split_last() else {
            return Err(FsError::BadPath); // "/" itself has no parent entry.
        };
        let mut cur = ROOT_INO;
        for c in dirs {
            cur = self.dir_lookup(cur, c)?.ok_or(FsError::NotFound)?;
        }
        let target = self.dir_lookup(cur, last)?;
        Ok((cur, last, target))
    }

    // ------------------------------------------------------------------
    // Periodic sync.

    fn tick(&mut self, now_ms: u64) {
        if let Some(interval) = self.params.sync_interval_ms {
            if now_ms.saturating_sub(self.last_sync_ms) >= interval {
                self.sync(now_ms);
            }
        }
    }

    /// Writes all dirty inodes and buffers to disk (the `sync` call; also
    /// run automatically every `sync_interval_ms`).
    pub fn sync(&mut self, now_ms: u64) {
        for (ino, inode) in self.itable.take_dirty() {
            self.iflush(ino, &inode);
        }
        self.bcache.sync(&mut self.disk, now_ms);
        self.last_sync_ms = now_ms;
    }

    // ------------------------------------------------------------------
    // System calls.

    /// Opens (and possibly creates) a file; returns a descriptor.
    pub fn open(&mut self, path: &str, flags: OpenFlags, uid: u32, now_ms: u64) -> FsResult<Fd> {
        self.tick(now_ms);
        let mode = flags.mode()?;
        let (parent, name, existing) = self.resolve_parent(path)?;
        let (ino, created) = match existing {
            Some(ino) => {
                let inode = self.iget(ino)?;
                if inode.is_dir() {
                    if flags.write {
                        return Err(FsError::IsDir);
                    }
                    (ino, false)
                } else if flags.truncate && flags.write && inode.size > 0 {
                    // Truncation to zero counts as creating new data
                    // (the paper's definition of a "new file").
                    let newnode = self.do_truncate(ino, inode, 0)?;
                    self.istore(ino, newnode);
                    (ino, true)
                } else if flags.truncate && flags.write {
                    (ino, true) // Already empty; still "created" data-wise.
                } else {
                    (ino, false)
                }
            }
            None => {
                if !flags.create {
                    return Err(FsError::NotFound);
                }
                let ino = Ino(self.ialloc.alloc()?);
                let fid = self.next_fid;
                self.next_fid += 1;
                let mut inode = Inode::empty(FileType::Regular, fid, now_ms);
                inode.nlink = 1;
                self.istore(ino, inode);
                if let Err(e) = self.dir_add(parent, name, ino, now_ms) {
                    self.ifree(ino); // Roll the new inode back.
                    return Err(e);
                }
                (ino, true)
            }
        };
        let inode = self.iget(ino)?;
        let open_id = self.tracer.next_open_id();
        self.tracer.open(
            now_ms,
            open_id,
            FileId(inode.fid),
            UserId(uid),
            mode,
            inode.size,
            created,
        );
        self.itable.incref(ino);
        let of = OpenFile {
            ino,
            pos: 0,
            mode,
            open_id,
        };
        let fd = match self.free_fds.pop() {
            Some(i) => {
                self.fds[i as usize] = Some(of);
                Fd(i)
            }
            None => {
                self.fds.push(Some(of));
                Fd((self.fds.len() - 1) as u32)
            }
        };
        self.stats.opens += 1;
        if created {
            self.stats.creates += 1;
        }
        Ok(fd)
    }

    fn file(&self, fd: Fd) -> FsResult<&OpenFile> {
        self.fds
            .get(fd.0 as usize)
            .and_then(|o| o.as_ref())
            .ok_or(FsError::BadFd)
    }

    /// Closes a descriptor, freeing the file if it was unlinked while
    /// open.
    pub fn close(&mut self, fd: Fd, now_ms: u64) -> FsResult<()> {
        self.tick(now_ms);
        let of = self
            .fds
            .get_mut(fd.0 as usize)
            .and_then(Option::take)
            .ok_or(FsError::BadFd)?;
        self.free_fds.push(fd.0);
        self.tracer.close(now_ms, of.open_id, of.pos);
        let refs = self.itable.decref(of.ino);
        if refs == 0 && self.orphans.remove(&of.ino) {
            let inode = self.iget(of.ino)?;
            let inode = self.do_truncate(of.ino, inode, 0)?;
            let _ = inode;
            self.ifree(of.ino);
        }
        self.stats.closes += 1;
        Ok(())
    }

    /// Reads `len` bytes at the current position, discarding the data
    /// (the workload reads for effect, not content). Returns bytes read.
    pub fn read(&mut self, fd: Fd, len: u64, now_ms: u64) -> FsResult<u64> {
        self.tick(now_ms);
        let (ino, pos, mode) = {
            let of = self.file(fd)?;
            (of.ino, of.pos, of.mode)
        };
        if !mode.can_read() {
            return Err(FsError::BadMode);
        }
        let inode = self.iget(ino)?;
        let n = self.do_read(&inode, pos, len, None)?;
        if let Some(of) = self.fds[fd.0 as usize].as_mut() {
            of.pos += n;
        }
        if let Some(i) = self.itable.get_mut(ino) {
            i.atime = now_ms;
        }
        self.stats.reads += 1;
        self.stats.bytes_read += n;
        Ok(n)
    }

    /// Reads into `out` at the current position; returns bytes read.
    pub fn read_into(&mut self, fd: Fd, out: &mut [u8], now_ms: u64) -> FsResult<u64> {
        self.tick(now_ms);
        let (ino, pos, mode) = {
            let of = self.file(fd)?;
            (of.ino, of.pos, of.mode)
        };
        if !mode.can_read() {
            return Err(FsError::BadMode);
        }
        let inode = self.iget(ino)?;
        let n = self.do_read(&inode, pos, out.len() as u64, Some(out))?;
        if let Some(of) = self.fds[fd.0 as usize].as_mut() {
            of.pos += n;
        }
        if let Some(i) = self.itable.get_mut(ino) {
            i.atime = now_ms;
        }
        self.stats.reads += 1;
        self.stats.bytes_read += n;
        Ok(n)
    }

    /// Writes `len` pattern bytes at the current position.
    pub fn write(&mut self, fd: Fd, len: u64, now_ms: u64) -> FsResult<()> {
        self.write_impl(fd, len, None, now_ms)
    }

    /// Writes real bytes at the current position.
    pub fn write_bytes(&mut self, fd: Fd, data: &[u8], now_ms: u64) -> FsResult<()> {
        self.write_impl(fd, data.len() as u64, Some(data), now_ms)
    }

    fn write_impl(&mut self, fd: Fd, len: u64, src: Option<&[u8]>, now_ms: u64) -> FsResult<()> {
        self.tick(now_ms);
        let (ino, pos, mode) = {
            let of = self.file(fd)?;
            (of.ino, of.pos, of.mode)
        };
        if !mode.can_write() {
            return Err(FsError::BadMode);
        }
        let inode = self.iget(ino)?;
        let inode = self.do_write(ino, inode, pos, len, src, now_ms)?;
        self.istore(ino, inode);
        if let Some(of) = self.fds[fd.0 as usize].as_mut() {
            of.pos += len;
        }
        self.stats.writes += 1;
        self.stats.bytes_written += len;
        Ok(())
    }

    /// Repositions a descriptor; returns the new position.
    pub fn lseek(&mut self, fd: Fd, whence: SeekFrom, now_ms: u64) -> FsResult<u64> {
        self.tick(now_ms);
        let (ino, old_pos, open_id) = {
            let of = self.file(fd)?;
            (of.ino, of.pos, of.open_id)
        };
        let size = self.iget(ino)?.size;
        let new_pos = match whence {
            SeekFrom::Set(p) => p,
            SeekFrom::End(d) => {
                let p = size as i64 + d;
                u64::try_from(p).map_err(|_| FsError::InvalidArg)?
            }
            SeekFrom::Current(d) => {
                let p = old_pos as i64 + d;
                u64::try_from(p).map_err(|_| FsError::InvalidArg)?
            }
        };
        self.tracer.seek(now_ms, open_id, old_pos, new_pos);
        if let Some(of) = self.fds[fd.0 as usize].as_mut() {
            of.pos = new_pos;
        }
        self.stats.seeks += 1;
        Ok(new_pos)
    }

    /// Deletes a file. If it is open, freeing is deferred to last close.
    pub fn unlink(&mut self, path: &str, uid: u32, now_ms: u64) -> FsResult<()> {
        self.tick(now_ms);
        let (parent, name, target) = self.resolve_parent(path)?;
        let ino = target.ok_or(FsError::NotFound)?;
        let mut inode = self.iget(ino)?;
        if inode.is_dir() {
            return Err(FsError::NotPermitted);
        }
        self.dir_remove(parent, name)?;
        inode.nlink = inode.nlink.saturating_sub(1);
        self.tracer.unlink(now_ms, FileId(inode.fid), UserId(uid));
        self.stats.unlinks += 1;
        if inode.nlink == 0 {
            if self.itable.refs(ino) > 0 {
                self.istore(ino, inode);
                self.orphans.insert(ino);
            } else {
                let inode = self.do_truncate(ino, inode, 0)?;
                let _ = inode;
                self.ifree(ino);
            }
        } else {
            self.istore(ino, inode);
        }
        Ok(())
    }

    /// Shortens a file to `new_len` bytes.
    pub fn truncate(&mut self, path: &str, new_len: u64, uid: u32, now_ms: u64) -> FsResult<()> {
        self.tick(now_ms);
        let ino = self.resolve(path)?;
        let inode = self.iget(ino)?;
        if inode.is_dir() {
            return Err(FsError::IsDir);
        }
        if new_len > inode.size {
            return Err(FsError::InvalidArg);
        }
        let fid = inode.fid;
        let mut inode = self.do_truncate(ino, inode, new_len)?;
        inode.mtime = now_ms;
        self.istore(ino, inode);
        self.tracer
            .truncate(now_ms, FileId(fid), new_len, UserId(uid));
        self.stats.truncates += 1;
        Ok(())
    }

    /// Loads a program: reads the whole file (paging it in) and records
    /// an `execve` event.
    pub fn execve(&mut self, path: &str, uid: u32, now_ms: u64) -> FsResult<()> {
        self.tick(now_ms);
        let ino = self.resolve(path)?;
        let inode = self.iget(ino)?;
        if inode.is_dir() {
            return Err(FsError::IsDir);
        }
        self.do_read(&inode, 0, inode.size, None)?;
        if let Some(i) = self.itable.get_mut(ino) {
            i.atime = now_ms;
        }
        self.tracer
            .execve(now_ms, FileId(inode.fid), UserId(uid), inode.size);
        self.stats.execves += 1;
        Ok(())
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &str, _uid: u32, now_ms: u64) -> FsResult<()> {
        self.tick(now_ms);
        let (parent, name, existing) = self.resolve_parent(path)?;
        if existing.is_some() {
            return Err(FsError::Exists);
        }
        let ino = Ino(self.ialloc.alloc()?);
        let fid = self.next_fid;
        self.next_fid += 1;
        let mut inode = Inode::empty(FileType::Directory, fid, now_ms);
        inode.nlink = 1;
        self.istore(ino, inode);
        if let Err(e) = self.dir_add(parent, name, ino, now_ms) {
            self.ifree(ino);
            return Err(e);
        }
        Ok(())
    }

    /// Creates a hard link: `new_path` names the same inode as
    /// `existing`. Not traced — the 1985 trace package logged no link
    /// events, and Table III shows none.
    pub fn link(&mut self, existing: &str, new_path: &str, _uid: u32, now_ms: u64) -> FsResult<()> {
        self.tick(now_ms);
        let ino = self.resolve(existing)?;
        let mut inode = self.iget(ino)?;
        if inode.is_dir() {
            return Err(FsError::NotPermitted); // No directory hard links.
        }
        let (parent, name, target) = self.resolve_parent(new_path)?;
        if target.is_some() {
            return Err(FsError::Exists);
        }
        self.dir_add(parent, name, ino, now_ms)?;
        inode.nlink += 1;
        inode.ctime = now_ms;
        self.istore(ino, inode);
        Ok(())
    }

    /// Renames a file or (empty-target) directory. Not traced — the
    /// 1985 trace package did not log renames (Table II has no such
    /// event), so this call leaves no trace records either.
    pub fn rename(&mut self, from: &str, to: &str, uid: u32, now_ms: u64) -> FsResult<()> {
        self.tick(now_ms);
        let (fparent, fname, fino) = self.resolve_parent(from)?;
        let ino = fino.ok_or(FsError::NotFound)?;
        let moving_dir = self.iget(ino)?.is_dir();
        let (tparent, tname, tino) = self.resolve_parent(to)?;
        if let Some(existing) = tino {
            if existing == ino {
                return Ok(()); // Renaming onto itself is a no-op.
            }
            let enode = self.iget(existing)?;
            match (moving_dir, enode.is_dir()) {
                (false, false) => {
                    // Replace the target file, Unix style.
                    self.unlink(to, uid, now_ms)?;
                }
                (true, true) => {
                    if !self.dir_is_empty(existing)? {
                        return Err(FsError::NotEmpty);
                    }
                    self.rmdir(to, uid, now_ms)?;
                }
                (true, false) => return Err(FsError::NotDir),
                (false, true) => return Err(FsError::IsDir),
            }
        }
        // Moving a directory into itself would orphan the subtree.
        if moving_dir && to.starts_with(&format!("{from}/")) {
            return Err(FsError::InvalidArg);
        }
        let tname = tname.to_string();
        let fname = fname.to_string();
        self.dir_remove(fparent, &fname)?;
        self.dir_add(tparent, &tname, ino, now_ms)?;
        if let Some(i) = self.itable.get_mut(ino) {
            i.ctime = now_ms;
        }
        Ok(())
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, path: &str, _uid: u32, now_ms: u64) -> FsResult<()> {
        self.tick(now_ms);
        let (parent, name, existing) = self.resolve_parent(path)?;
        let ino = existing.ok_or(FsError::NotFound)?;
        let inode = self.iget(ino)?;
        if !inode.is_dir() {
            return Err(FsError::NotDir);
        }
        if !self.dir_is_empty(ino)? {
            return Err(FsError::NotEmpty);
        }
        self.dir_remove(parent, name)?;
        self.ncache.purge_dir(ino);
        let inode = self.do_truncate(ino, inode, 0)?;
        let _ = inode;
        self.ifree(ino);
        Ok(())
    }

    /// Returns a file's metadata.
    pub fn stat(&mut self, path: &str, now_ms: u64) -> FsResult<Stat> {
        self.tick(now_ms);
        let ino = self.resolve(path)?;
        let inode = self.iget(ino)?;
        Ok(Stat {
            ino,
            file_type: inode.itype,
            size: inode.size,
            nlink: inode.nlink,
            fid: inode.fid,
            mtime: inode.mtime,
        })
    }

    /// `true` if the path resolves to an existing file or directory.
    pub fn exists(&mut self, path: &str) -> bool {
        self.resolve(path).is_ok()
    }

    /// The current position of a descriptor (no trace event).
    pub fn tell(&self, fd: Fd) -> FsResult<u64> {
        Ok(self.file(fd)?.pos)
    }

    /// Size of the file a descriptor refers to.
    pub fn fd_size(&mut self, fd: Fd) -> FsResult<u64> {
        let ino = self.file(fd)?.ino;
        Ok(self.iget(ino)?.size)
    }

    // ------------------------------------------------------------------
    // Introspection.

    /// System call counters.
    pub fn stats(&self) -> FsStats {
        self.stats
    }

    /// Buffer cache counters.
    pub fn bcache_stats(&self) -> BufCacheStats {
        self.bcache.stats()
    }

    /// Physical disk counters.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// Name cache counters.
    pub fn ncache_stats(&self) -> NameCacheStats {
        self.ncache.stats.snapshot()
    }

    /// In-core inode table counters.
    pub fn itable_stats(&self) -> InodeTableStats {
        self.itable.stats()
    }

    /// Exports this file system's cache counters into `registry` under
    /// `prefix`: `{prefix}.bufcache.*`, `{prefix}.namecache.*`, and
    /// `{prefix}.itable.*`.
    ///
    /// The handles are live — registry snapshots reflect all activity
    /// before and after registration — so `repro --metrics` registers
    /// each generated trace's file system once and snapshots at exit.
    pub fn register_obs(&self, registry: &obs::Registry, prefix: &str) {
        self.bcache
            .register_obs(registry, &format!("{prefix}.bufcache"));
        self.ncache
            .stats
            .register(registry, &format!("{prefix}.namecache"));
        self.itable
            .register_obs(registry, &format!("{prefix}.itable"));
    }

    /// Free data fragments remaining.
    pub fn free_frags(&self) -> u64 {
        self.falloc.free_frags()
    }

    /// Free inodes remaining.
    pub fn free_inodes(&self) -> u32 {
        self.ialloc.free_count()
    }

    /// Enables or disables the tracer; collected records are preserved.
    pub fn set_trace_enabled(&mut self, enabled: bool) {
        self.tracer.set_enabled(enabled);
    }

    /// Takes the trace collected so far.
    pub fn take_trace(&mut self) -> Trace {
        self.tracer.take()
    }

    /// Drains the raw trace records collected so far, in arrival order.
    ///
    /// Streaming consumers call this after every batch of operations so
    /// the tracer's buffer never grows beyond one batch.
    pub fn drain_trace_records(&mut self) -> std::vec::Drain<'_, fstrace::TraceRecord> {
        self.tracer.drain_records()
    }

    /// Drains the collected trace records into a consumer-side
    /// [`fstrace::ReorderBuffer`] (see [`crate::Tracer::drain_into`]).
    pub fn drain_trace_into(&mut self, buf: &mut fstrace::ReorderBuffer) {
        self.tracer.drain_into(buf);
    }

    /// Walks the directory tree verifying structural invariants; returns
    /// the number of live files found. Used by tests ("fsck-lite").
    ///
    /// Checks: every reachable extent is marked allocated, extents do not
    /// overlap, and file sizes are consistent with their block maps.
    pub fn check_consistency(&mut self) -> FsResult<u64> {
        let mut stack = vec![ROOT_INO];
        let mut seen_extents: HashMap<u64, u32> = HashMap::new();
        let mut files = 0u64;
        let mut visited: HashSet<Ino> = HashSet::new();
        while let Some(ino) = stack.pop() {
            let inode = self.iget(ino)?;
            if !visited.insert(ino) {
                if inode.is_dir() {
                    return Err(FsError::Corrupt("directory cycle"));
                }
                continue; // A hard link: already accounted.
            }
            let bs = self.bs();
            for fb in 0..inode.size.div_ceil(bs) {
                let addr = self.bmap_read(&inode, fb)?;
                if addr == 0 {
                    return Err(FsError::Corrupt("hole in file"));
                }
                let nfrags = self.frags_of_block(inode.size, fb);
                if !self.falloc.is_allocated(addr as u64, nfrags) {
                    return Err(FsError::Corrupt("extent not allocated"));
                }
                if seen_extents.insert(addr as u64, nfrags).is_some() {
                    return Err(FsError::Corrupt("extent shared by two blocks"));
                }
            }
            if inode.is_dir() {
                let names = {
                    let mut v = Vec::new();
                    for fb in 0..inode.size.div_ceil(bs) {
                        let addr = self.bmap_read(&inode, fb)?;
                        let nfrags = self.frags_of_block(inode.size, fb);
                        self.bcache.read(&mut self.disk, addr as u64, nfrags, |b| {
                            v.extend(dir::entries_in_block(b));
                        });
                    }
                    v
                };
                for e in names {
                    stack.push(e.ino);
                }
            } else {
                files += 1;
            }
        }
        // Check extent overlap at fragment granularity.
        let mut frags: HashSet<u64> = HashSet::new();
        for (&addr, &n) in &seen_extents {
            for i in 0..n as u64 {
                if !frags.insert(addr + i) {
                    return Err(FsError::Corrupt("overlapping extents"));
                }
            }
        }
        let _ = self.data_start;
        Ok(files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_name_cache_hit_ratio_is_zero_not_nan() {
        let s = NameCacheStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert!(!s.hit_ratio().is_nan());
    }

    fn fs() -> Fs {
        Fs::new(FsParams::small()).unwrap()
    }

    #[test]
    fn mkfs_creates_root() {
        let mut f = fs();
        assert!(f.exists("/"));
        assert_eq!(f.resolve("/").unwrap(), ROOT_INO);
        assert_eq!(f.check_consistency().unwrap(), 0);
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut f = fs();
        let fd = f.open("/a.txt", OpenFlags::create_write(), 1, 0).unwrap();
        f.write_bytes(fd, b"hello world", 1).unwrap();
        f.close(fd, 2).unwrap();

        let fd = f.open("/a.txt", OpenFlags::read_only(), 1, 10).unwrap();
        let mut buf = [0u8; 11];
        assert_eq!(f.read_into(fd, &mut buf, 11).unwrap(), 11);
        assert_eq!(&buf, b"hello world");
        assert_eq!(f.read(fd, 100, 12).unwrap(), 0); // At EOF.
        f.close(fd, 13).unwrap();
        assert_eq!(f.check_consistency().unwrap(), 1);
    }

    #[test]
    fn large_file_through_indirect_blocks() {
        let mut f = fs();
        // 12 direct blocks of 4 KiB = 48 KiB; write 200 KiB to force
        // the single-indirect path.
        let fd = f.open("/big", OpenFlags::create_write(), 1, 0).unwrap();
        let chunk = vec![7u8; 8192];
        for _ in 0..25 {
            f.write_bytes(fd, &chunk, 1).unwrap();
        }
        f.close(fd, 2).unwrap();
        assert_eq!(f.stat("/big", 3).unwrap().size, 200 * 1024);
        // Read it all back and verify contents.
        let fd = f.open("/big", OpenFlags::read_only(), 1, 4).unwrap();
        let mut buf = vec![0u8; 8192];
        for _ in 0..25 {
            assert_eq!(f.read_into(fd, &mut buf, 5).unwrap(), 8192);
            assert!(buf.iter().all(|&b| b == 7));
        }
        f.close(fd, 6).unwrap();
        f.check_consistency().unwrap();
    }

    #[test]
    fn small_file_uses_fragments() {
        let mut f = fs();
        // Warm up: let the root directory allocate its first fragment.
        let fd = f.open("/warmup", OpenFlags::create_write(), 1, 0).unwrap();
        f.close(fd, 0).unwrap();
        let before = f.free_frags();
        let fd = f.open("/tiny", OpenFlags::create_write(), 1, 0).unwrap();
        f.write(fd, 100, 1).unwrap();
        f.close(fd, 2).unwrap();
        f.sync(3);
        // A 100-byte file should consume exactly one fragment.
        assert_eq!(before - f.free_frags(), 1);
    }

    #[test]
    fn growing_file_reallocates_tail() {
        let mut f = fs();
        let fd = f.open("/grow", OpenFlags::create_write(), 1, 0).unwrap();
        f.write_bytes(fd, &[1u8; 100], 1).unwrap(); // 1 frag.
        f.write_bytes(fd, &[2u8; 2000], 2).unwrap(); // Grows to 3 frags.
        f.write_bytes(fd, &[3u8; 3000], 3).unwrap(); // Crosses into block 2.
        f.close(fd, 4).unwrap();
        let fd = f.open("/grow", OpenFlags::read_only(), 1, 5).unwrap();
        let mut buf = vec![0u8; 5100];
        assert_eq!(f.read_into(fd, &mut buf, 6).unwrap(), 5100);
        assert!(buf[..100].iter().all(|&b| b == 1));
        assert!(buf[100..2100].iter().all(|&b| b == 2));
        assert!(buf[2100..].iter().all(|&b| b == 3));
        f.close(fd, 7).unwrap();
        f.check_consistency().unwrap();
    }

    #[test]
    fn unlink_frees_space() {
        let mut f = fs();
        // Warm up the root directory's fragment (directories never shrink).
        let fd = f.open("/warmup", OpenFlags::create_write(), 1, 0).unwrap();
        f.close(fd, 0).unwrap();
        f.unlink("/warmup", 1, 0).unwrap();
        let before = f.free_frags();
        let fd = f.open("/x", OpenFlags::create_write(), 1, 0).unwrap();
        f.write(fd, 10_000, 1).unwrap();
        f.close(fd, 2).unwrap();
        assert!(f.free_frags() < before);
        f.unlink("/x", 1, 3).unwrap();
        assert_eq!(f.free_frags(), before);
        assert!(!f.exists("/x"));
        assert_eq!(f.check_consistency().unwrap(), 0);
    }

    #[test]
    fn unlink_while_open_defers_free() {
        let mut f = fs();
        let fd = f.open("/t", OpenFlags::create_write(), 1, 0).unwrap();
        f.write(fd, 5_000, 1).unwrap();
        let before = f.free_frags();
        f.unlink("/t", 1, 2).unwrap();
        assert!(!f.exists("/t"));
        // Still open: space not yet freed, I/O still works.
        assert_eq!(f.free_frags(), before);
        f.write(fd, 1_000, 3).unwrap();
        f.close(fd, 4).unwrap();
        assert!(f.free_frags() > before);
        // Reserved inodes 0 and 1, plus the root: everything else free.
        assert_eq!(f.free_inodes(), FsParams::small().ninodes - 3);
    }

    #[test]
    fn truncate_to_zero_and_partial() {
        let mut f = fs();
        let fd = f.open("/t", OpenFlags::create_write(), 1, 0).unwrap();
        f.write_bytes(fd, &[9u8; 10_000], 1).unwrap();
        f.close(fd, 2).unwrap();
        f.truncate("/t", 4_500, 1, 3).unwrap();
        assert_eq!(f.stat("/t", 4).unwrap().size, 4_500);
        let fd = f.open("/t", OpenFlags::read_only(), 1, 5).unwrap();
        let mut buf = vec![0u8; 4_500];
        assert_eq!(f.read_into(fd, &mut buf, 6).unwrap(), 4_500);
        assert!(buf.iter().all(|&b| b == 9));
        f.close(fd, 7).unwrap();
        f.truncate("/t", 0, 1, 8).unwrap();
        assert_eq!(f.stat("/t", 9).unwrap().size, 0);
        f.check_consistency().unwrap();
    }

    #[test]
    fn mkdir_and_nested_paths() {
        let mut f = fs();
        f.mkdir("/usr", 0, 0).unwrap();
        f.mkdir("/usr/src", 0, 1).unwrap();
        let fd = f
            .open("/usr/src/main.c", OpenFlags::create_write(), 1, 2)
            .unwrap();
        f.write(fd, 1234, 3).unwrap();
        f.close(fd, 4).unwrap();
        assert_eq!(f.stat("/usr/src/main.c", 5).unwrap().size, 1234);
        assert_eq!(f.readdir("/usr", 6).unwrap(), vec!["src".to_string()]);
        assert_eq!(f.rmdir("/usr", 0, 7), Err(FsError::NotEmpty));
        f.unlink("/usr/src/main.c", 1, 8).unwrap();
        f.rmdir("/usr/src", 0, 9).unwrap();
        f.rmdir("/usr", 0, 10).unwrap();
        assert_eq!(f.check_consistency().unwrap(), 0);
    }

    #[test]
    fn open_errors() {
        let mut f = fs();
        assert_eq!(
            f.open("/nope", OpenFlags::read_only(), 1, 0),
            Err(FsError::NotFound)
        );
        assert_eq!(
            f.open("relative", OpenFlags::read_only(), 1, 0),
            Err(FsError::BadPath)
        );
        f.mkdir("/d", 0, 0).unwrap();
        assert_eq!(
            f.open("/d", OpenFlags::write_only(), 1, 0),
            Err(FsError::IsDir)
        );
        // Reading a directory as a file is allowed (4.2 BSD semantics).
        let fd = f.open("/d", OpenFlags::read_only(), 1, 1).unwrap();
        f.close(fd, 2).unwrap();
        let bad = OpenFlags::default();
        assert_eq!(f.open("/x", bad, 1, 3), Err(FsError::InvalidArg));
    }

    #[test]
    fn mode_enforcement() {
        let mut f = fs();
        let fd = f.open("/m", OpenFlags::create_write(), 1, 0).unwrap();
        assert_eq!(f.read(fd, 10, 1), Err(FsError::BadMode));
        f.close(fd, 2).unwrap();
        let fd = f.open("/m", OpenFlags::read_only(), 1, 3).unwrap();
        assert_eq!(f.write(fd, 10, 4), Err(FsError::BadMode));
        f.close(fd, 5).unwrap();
    }

    #[test]
    fn lseek_semantics() {
        let mut f = fs();
        let fd = f.open("/s", OpenFlags::create_write(), 1, 0).unwrap();
        f.write(fd, 1000, 1).unwrap();
        assert_eq!(f.lseek(fd, SeekFrom::Set(500), 2).unwrap(), 500);
        assert_eq!(f.lseek(fd, SeekFrom::Current(-100), 3).unwrap(), 400);
        assert_eq!(f.lseek(fd, SeekFrom::End(-10), 4).unwrap(), 990);
        assert_eq!(f.lseek(fd, SeekFrom::End(5), 5).unwrap(), 1005);
        assert_eq!(f.lseek(fd, SeekFrom::Set(0), 6).unwrap(), 0);
        assert_eq!(
            f.lseek(fd, SeekFrom::Current(-1), 7),
            Err(FsError::InvalidArg)
        );
        f.close(fd, 8).unwrap();
    }

    #[test]
    fn write_after_seek_past_eof_zero_fills() {
        let mut f = fs();
        let fd = f.open("/gap", OpenFlags::create_write(), 1, 0).unwrap();
        f.write_bytes(fd, b"ab", 1).unwrap();
        f.lseek(fd, SeekFrom::Set(6000), 2).unwrap();
        f.write_bytes(fd, b"cd", 3).unwrap();
        f.close(fd, 4).unwrap();
        let fd = f.open("/gap", OpenFlags::read_only(), 1, 5).unwrap();
        let mut buf = vec![0xffu8; 6002];
        assert_eq!(f.read_into(fd, &mut buf, 6).unwrap(), 6002);
        assert_eq!(&buf[0..2], b"ab");
        assert!(buf[2..6000].iter().all(|&b| b == 0));
        assert_eq!(&buf[6000..], b"cd");
        f.close(fd, 7).unwrap();
        f.check_consistency().unwrap();
    }

    #[test]
    fn trace_records_table_ii_events() {
        let mut f = fs();
        let fd = f.open("/tr", OpenFlags::create_write(), 7, 100).unwrap();
        f.write(fd, 2048, 110).unwrap();
        f.lseek(fd, SeekFrom::Set(0), 120).unwrap();
        f.close(fd, 130).unwrap();
        f.truncate("/tr", 1000, 7, 140).unwrap();
        f.unlink("/tr", 7, 150).unwrap();
        let trace = f.take_trace();
        let kinds: Vec<_> = trace.records().iter().map(|r| r.event.kind()).collect();
        use fstrace::EventKind::*;
        assert_eq!(kinds, vec![Create, Seek, Close, Truncate, Unlink]);
        // The session reconstructs the 2048-byte sequential write.
        let sessions = trace.sessions();
        assert_eq!(sessions.total_bytes_transferred(), 2048);
        assert_eq!(sessions.anomalies(), 0);
    }

    #[test]
    fn truncating_open_counts_as_create() {
        let mut f = fs();
        let fd = f.open("/c", OpenFlags::create_write(), 1, 0).unwrap();
        f.write(fd, 100, 1).unwrap();
        f.close(fd, 2).unwrap();
        let fd = f.open("/c", OpenFlags::create_write(), 1, 3).unwrap();
        f.close(fd, 4).unwrap();
        let trace = f.take_trace();
        let creates = trace
            .records()
            .iter()
            .filter(|r| r.event.kind() == fstrace::EventKind::Create)
            .count();
        assert_eq!(creates, 2);
        assert_eq!(f.stats().creates, 2);
    }

    #[test]
    fn name_cache_hits_on_repeat_lookups() {
        let mut f = fs();
        let fd = f.open("/n", OpenFlags::create_write(), 1, 0).unwrap();
        f.close(fd, 1).unwrap();
        for t in 0..10 {
            f.stat("/n", 10 + t).unwrap();
        }
        let s = f.ncache_stats();
        assert!(s.hits >= 9, "expected hits, got {s:?}");
    }

    #[test]
    fn concurrent_fds_share_file_size() {
        let mut f = fs();
        let w = f.open("/sh", OpenFlags::create_write(), 1, 0).unwrap();
        f.write(w, 100, 1).unwrap();
        let r = f.open("/sh", OpenFlags::read_only(), 2, 2).unwrap();
        f.write(w, 100, 3).unwrap();
        assert_eq!(f.read(r, 500, 4).unwrap(), 200);
        f.close(w, 5).unwrap();
        f.close(r, 6).unwrap();
    }

    #[test]
    fn enospc_on_tiny_fs() {
        let mut f = Fs::new(FsParams::tiny()).unwrap();
        let fd = f.open("/fill", OpenFlags::create_write(), 1, 0).unwrap();
        let mut wrote = 0u64;
        let err = loop {
            match f.write(fd, 16 * 1024, 1) {
                Ok(()) => wrote += 16 * 1024,
                Err(e) => break e,
            }
        };
        assert_eq!(err, FsError::NoSpace);
        assert!(wrote > 0);
        f.close(fd, 2).unwrap();
        // Deleting recovers space.
        f.unlink("/fill", 1, 3).unwrap();
        let fd = f.open("/again", OpenFlags::create_write(), 1, 4).unwrap();
        f.write(fd, 16 * 1024, 5).unwrap();
        f.close(fd, 6).unwrap();
    }

    #[test]
    fn execve_reads_program_and_traces() {
        let mut f = fs();
        let fd = f.open("/bin", OpenFlags::create_write(), 1, 0).unwrap();
        f.write(fd, 20_000, 1).unwrap();
        f.close(fd, 2).unwrap();
        let reads_before = f.bcache_stats().logical_reads;
        f.execve("/bin", 3, 10).unwrap();
        assert!(f.bcache_stats().logical_reads > reads_before);
        let trace = f.take_trace();
        let execs = trace.sessions();
        assert_eq!(execs.execs().len(), 1);
        assert_eq!(execs.execs()[0].size, 20_000);
    }

    #[test]
    fn sync_writes_everything() {
        let mut f = Fs::with_policy(FsParams::small(), BufWritePolicy::DelayedWrite).unwrap();
        let fd = f.open("/d", OpenFlags::create_write(), 1, 0).unwrap();
        f.write(fd, 9_000, 1).unwrap();
        f.close(fd, 2).unwrap();
        let w_before = f.disk_stats().writes;
        f.sync(3);
        assert!(f.disk_stats().writes > w_before);
        // Second sync is a no-op.
        let w = f.disk_stats().writes;
        f.sync(4);
        assert_eq!(f.disk_stats().writes, w);
    }

    #[test]
    fn periodic_flush_back_fires() {
        let mut f = fs(); // 30 s flush-back by default.
        let fd = f.open("/p", OpenFlags::create_write(), 1, 1_000).unwrap();
        f.write(fd, 4_096, 1_100).unwrap();
        f.close(fd, 1_200).unwrap();
        let w_before = f.disk_stats().writes;
        // An op past the interval triggers the flush.
        f.stat("/p", 40_000).unwrap();
        assert!(f.disk_stats().writes > w_before);
    }

    #[test]
    fn stats_count_syscalls() {
        let mut f = fs();
        let fd = f.open("/s", OpenFlags::create_write(), 1, 0).unwrap();
        f.write(fd, 10, 1).unwrap();
        f.lseek(fd, SeekFrom::Set(0), 2).unwrap();
        f.close(fd, 3).unwrap();
        f.unlink("/s", 1, 4).unwrap();
        let s = f.stats();
        assert_eq!(s.opens, 1);
        assert_eq!(s.creates, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.seeks, 1);
        assert_eq!(s.closes, 1);
        assert_eq!(s.unlinks, 1);
        assert_eq!(s.bytes_written, 10);
    }

    #[test]
    fn deep_directory_tree() {
        let mut f = fs();
        let mut path = String::new();
        for i in 0..10 {
            path.push_str(&format!("/d{i}"));
            f.mkdir(&path, 0, i).unwrap();
        }
        path.push_str("/leaf");
        let fd = f.open(&path, OpenFlags::create_write(), 1, 100).unwrap();
        f.write(fd, 42, 101).unwrap();
        f.close(fd, 102).unwrap();
        assert_eq!(f.stat(&path, 103).unwrap().size, 42);
        assert_eq!(f.check_consistency().unwrap(), 1);
    }

    #[test]
    fn double_indirect_blocks_work() {
        // Tiny blocks (512 B, 1 frag/block) push a modest file through
        // the double-indirect path: direct covers 12 blocks, single
        // indirect 128, so beyond 70 KB we exercise dindirect.
        let params = FsParams {
            frag_size: 512,
            frags_per_block: 1,
            data_frags: 4096,
            ninodes: 64,
            cyl_groups: 2,
            bcache_bytes: 16 * 1024,
            ncache_entries: 16,
            icache_entries: 8,
            sync_interval_ms: Some(30_000),
        };
        let mut f = Fs::new(params).unwrap();
        let fd = f.open("/big", OpenFlags::create_write(), 1, 0).unwrap();
        let total: u64 = 120 * 1024; // 240 blocks > 12 + 128.
        let chunk = vec![0x5au8; 4096];
        let mut written = 0;
        while written < total {
            f.write_bytes(fd, &chunk, 1).unwrap();
            written += chunk.len() as u64;
        }
        f.close(fd, 2).unwrap();
        assert_eq!(f.stat("/big", 3).unwrap().size, total);
        f.sync(4);
        // Read back through the cold cache and verify.
        let fd = f.open("/big", OpenFlags::read_only(), 1, 5).unwrap();
        let mut buf = vec![0u8; 4096];
        let mut read = 0;
        loop {
            let n = f.read_into(fd, &mut buf, 6).unwrap();
            if n == 0 {
                break;
            }
            assert!(buf[..n as usize].iter().all(|&b| b == 0x5a));
            read += n;
        }
        assert_eq!(read, total);
        f.close(fd, 7).unwrap();
        f.check_consistency().unwrap();
        // Truncating to zero releases every indirect structure.
        let free_before_file = f.free_frags();
        f.truncate("/big", 0, 1, 8).unwrap();
        assert!(f.free_frags() > free_before_file + 200);
        f.unlink("/big", 1, 9).unwrap();
        assert_eq!(f.check_consistency().unwrap(), 0);
    }

    #[test]
    fn hard_links_share_data_and_defer_free() {
        let mut f = fs();
        let fd = f.open("/orig", OpenFlags::create_write(), 1, 0).unwrap();
        f.write_bytes(fd, b"shared", 1).unwrap();
        f.close(fd, 2).unwrap();
        f.link("/orig", "/alias", 1, 3).unwrap();
        assert_eq!(f.stat("/alias", 4).unwrap().nlink, 2);
        assert_eq!(
            f.stat("/alias", 5).unwrap().ino,
            f.stat("/orig", 5).unwrap().ino
        );
        // Removing one name keeps the data alive under the other.
        f.unlink("/orig", 1, 6).unwrap();
        let fd = f.open("/alias", OpenFlags::read_only(), 1, 7).unwrap();
        let mut buf = [0u8; 6];
        f.read_into(fd, &mut buf, 8).unwrap();
        assert_eq!(&buf, b"shared");
        f.close(fd, 9).unwrap();
        assert_eq!(f.stat("/alias", 10).unwrap().nlink, 1);
        f.unlink("/alias", 1, 11).unwrap();
        assert_eq!(f.check_consistency().unwrap(), 0);
    }

    #[test]
    fn link_errors() {
        let mut f = fs();
        f.mkdir("/d", 0, 0).unwrap();
        assert_eq!(f.link("/d", "/d2", 0, 1), Err(FsError::NotPermitted));
        let fd = f.open("/a", OpenFlags::create_write(), 1, 2).unwrap();
        f.close(fd, 3).unwrap();
        assert_eq!(f.link("/a", "/a", 1, 4), Err(FsError::Exists));
        assert_eq!(f.link("/nope", "/b", 1, 5), Err(FsError::NotFound));
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut f = fs();
        f.mkdir("/src", 0, 0).unwrap();
        f.mkdir("/dst", 0, 0).unwrap();
        let fd = f.open("/src/a", OpenFlags::create_write(), 1, 1).unwrap();
        f.write(fd, 100, 2).unwrap();
        f.close(fd, 3).unwrap();
        f.rename("/src/a", "/dst/b", 1, 4).unwrap();
        assert!(!f.exists("/src/a"));
        assert_eq!(f.stat("/dst/b", 5).unwrap().size, 100);

        // Rename over an existing file replaces it.
        let fd = f
            .open("/dst/victim", OpenFlags::create_write(), 1, 6)
            .unwrap();
        f.write(fd, 50, 7).unwrap();
        f.close(fd, 8).unwrap();
        f.rename("/dst/b", "/dst/victim", 1, 9).unwrap();
        assert_eq!(f.stat("/dst/victim", 10).unwrap().size, 100);
        assert_eq!(f.check_consistency().unwrap(), 1);
    }

    #[test]
    fn rename_directory_and_errors() {
        let mut f = fs();
        f.mkdir("/d1", 0, 0).unwrap();
        let fd = f.open("/d1/f", OpenFlags::create_write(), 1, 1).unwrap();
        f.close(fd, 2).unwrap();
        f.rename("/d1", "/d2", 0, 3).unwrap();
        assert!(f.exists("/d2/f"));
        // Cannot move a directory into its own subtree.
        f.mkdir("/d2/sub", 0, 4).unwrap();
        assert_eq!(f.rename("/d2", "/d2/sub/x", 0, 5), Err(FsError::InvalidArg));
        // Directory onto nonempty directory fails.
        f.mkdir("/d3", 0, 6).unwrap();
        assert_eq!(f.rename("/d3", "/d2", 0, 7), Err(FsError::NotEmpty));
        // File onto directory and vice versa fail.
        let fd = f.open("/plain", OpenFlags::create_write(), 1, 8).unwrap();
        f.close(fd, 9).unwrap();
        assert_eq!(f.rename("/plain", "/d3", 1, 10), Err(FsError::IsDir));
        assert_eq!(f.rename("/d3", "/plain", 0, 11), Err(FsError::NotDir));
        // Self-rename is a no-op.
        f.rename("/plain", "/plain", 1, 12).unwrap();
        assert!(f.exists("/plain"));
        f.check_consistency().unwrap();
    }

    #[test]
    fn consistency_tolerates_hard_links() {
        let mut f = fs();
        let fd = f.open("/x", OpenFlags::create_write(), 1, 0).unwrap();
        f.write(fd, 3_000, 1).unwrap();
        f.close(fd, 2).unwrap();
        f.link("/x", "/y", 1, 3).unwrap();
        // One file, two names.
        assert_eq!(f.check_consistency().unwrap(), 1);
    }

    #[test]
    fn rename_is_untraced() {
        let mut f = fs();
        let fd = f.open("/a", OpenFlags::create_write(), 1, 0).unwrap();
        f.close(fd, 1).unwrap();
        let before = f.take_trace().len();
        assert_eq!(before, 2);
        f.rename("/a", "/b", 1, 2).unwrap();
        f.link("/b", "/c", 1, 3).unwrap();
        assert!(f.take_trace().is_empty()); // No records for either.
    }

    #[test]
    fn many_files_in_one_directory() {
        let mut f = fs();
        f.mkdir("/many", 0, 0).unwrap();
        for i in 0..300 {
            let p = format!("/many/f{i}");
            let fd = f.open(&p, OpenFlags::create_write(), 1, i).unwrap();
            f.write(fd, 10, i).unwrap();
            f.close(fd, i).unwrap();
        }
        assert_eq!(f.readdir("/many", 1000).unwrap().len(), 300);
        // Directory grew past one fragment.
        assert!(f.stat("/many", 1001).unwrap().size > 1024);
        for i in 0..300 {
            f.unlink(&format!("/many/f{i}"), 1, 2000 + i).unwrap();
        }
        assert_eq!(f.check_consistency().unwrap(), 0);
    }
}
