//! The kernel trace package: hooks that record Table II events.
//!
//! The tracer sits at the system call layer of [`crate::Fs`], exactly
//! where the paper's instrumented 4.2 BSD kernel hooks sat: it sees
//! `open`/`create`, `close`, `seek`, `unlink`, `truncate`, and `execve`,
//! and deliberately does *not* see `read` or `write`.

use fstrace::{AccessMode, FileId, OpenId, ReorderBuffer, Trace, TraceEvent, TraceRecord, UserId};

/// Collects trace records from file system activity.
///
/// Disabled tracers drop records, so an untraced file system pays almost
/// nothing.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    records: Vec<TraceRecord>,
    next_open_id: u64,
}

impl Tracer {
    /// Creates a tracer; `enabled` controls whether records are kept.
    pub fn new(enabled: bool) -> Self {
        Tracer {
            enabled,
            records: Vec::new(),
            next_open_id: 0,
        }
    }

    /// `true` if records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off; collected records and the open-id
    /// counter are preserved.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Allocates the next open id (assigned even when disabled, so
    /// enabling mid-run never reuses ids).
    pub fn next_open_id(&mut self) -> OpenId {
        let id = OpenId(self.next_open_id);
        self.next_open_id += 1;
        id
    }

    fn push(&mut self, time_ms: u64, event: TraceEvent) {
        if self.enabled {
            self.records.push(TraceRecord::new(time_ms, event));
        }
    }

    /// Records an `open`/`create` event.
    #[allow(clippy::too_many_arguments)]
    pub fn open(
        &mut self,
        time_ms: u64,
        open_id: OpenId,
        file_id: FileId,
        user_id: UserId,
        mode: AccessMode,
        size: u64,
        created: bool,
    ) {
        self.push(
            time_ms,
            TraceEvent::Open {
                open_id,
                file_id,
                user_id,
                mode,
                size,
                created,
            },
        );
    }

    /// Records a `close` event.
    pub fn close(&mut self, time_ms: u64, open_id: OpenId, final_pos: u64) {
        self.push(time_ms, TraceEvent::Close { open_id, final_pos });
    }

    /// Records a `seek` event.
    pub fn seek(&mut self, time_ms: u64, open_id: OpenId, old_pos: u64, new_pos: u64) {
        self.push(
            time_ms,
            TraceEvent::Seek {
                open_id,
                old_pos,
                new_pos,
            },
        );
    }

    /// Records an `unlink` event.
    pub fn unlink(&mut self, time_ms: u64, file_id: FileId, user_id: UserId) {
        self.push(time_ms, TraceEvent::Unlink { file_id, user_id });
    }

    /// Records a `truncate` event.
    pub fn truncate(&mut self, time_ms: u64, file_id: FileId, new_len: u64, user_id: UserId) {
        self.push(
            time_ms,
            TraceEvent::Truncate {
                file_id,
                new_len,
                user_id,
            },
        );
    }

    /// Records an `execve` event.
    pub fn execve(&mut self, time_ms: u64, file_id: FileId, user_id: UserId, size: u64) {
        self.push(
            time_ms,
            TraceEvent::Execve {
                file_id,
                user_id,
                size,
            },
        );
    }

    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no records have been collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Takes the collected records as a [`Trace`], leaving the tracer
    /// empty (open id assignment continues from where it was).
    pub fn take(&mut self) -> Trace {
        Trace::from_records(std::mem::take(&mut self.records))
    }

    /// Drains the collected records in arrival order, leaving the tracer
    /// empty (open id assignment continues from where it was).
    ///
    /// This is the streaming sibling of [`Tracer::take`]: callers that
    /// consume records incrementally avoid ever materialising a full
    /// [`Trace`].
    pub fn drain_records(&mut self) -> std::vec::Drain<'_, TraceRecord> {
        self.records.drain(..)
    }

    /// Drains the collected records straight into a consumer-side
    /// [`ReorderBuffer`], keeping the tracer's allocation for the next
    /// batch.
    ///
    /// This is the provider→consumer hop of the tracing pipeline: the
    /// tracer is the per-machine *provider* ring (records accumulate
    /// here during one scheduling step, so its occupancy is bounded by
    /// a single step's output), and the reorder buffer is the
    /// consumer that re-sorts the bounded skew before records leave
    /// the machine.
    pub fn drain_into(&mut self, buf: &mut ReorderBuffer) {
        for rec in self.records.drain(..) {
            buf.push(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_drops_records() {
        let mut t = Tracer::new(false);
        let o = t.next_open_id();
        t.close(0, o, 100);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn open_ids_are_unique_across_enable_states() {
        let mut t = Tracer::new(false);
        let a = t.next_open_id();
        let b = t.next_open_id();
        assert_ne!(a, b);
    }

    #[test]
    fn take_empties_but_keeps_id_counter() {
        let mut t = Tracer::new(true);
        let o = t.next_open_id();
        t.close(0, o, 1);
        let trace = t.take();
        assert_eq!(trace.len(), 1);
        assert!(t.is_empty());
        assert_ne!(t.next_open_id(), o);
    }
}
