//! On-disk inodes and the in-core inode table.
//!
//! Inodes are 128-byte on-disk records holding twelve direct extent
//! pointers plus single- and double-indirect block pointers, all at
//! fragment resolution as in FFS: every file block except possibly the
//! last is a full block; the last may be a shorter fragment run, with its
//! length implied by the file size.
//!
//! The in-core [`InodeTable`] mirrors the 4.2 BSD inode table: open files
//! hold references, and recently used unreferenced inodes stay cached
//! (the paper's Section 3.2 notes UNIX "maintains a main-memory cache for
//! the i-nodes of all open files and many recently-used ones").

use std::collections::HashMap;

/// An inode number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ino(pub u32);

/// The root directory's inode number (2, by Unix convention).
pub const ROOT_INO: Ino = Ino(2);

/// Number of direct extent pointers per inode.
pub const NDIRECT: usize = 12;

/// Size of one on-disk inode record in bytes.
pub const INODE_SIZE: usize = 128;

/// The type of file an inode describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileType {
    /// A regular file.
    Regular,
    /// A directory.
    Directory,
}

/// An in-memory inode (deserialized on-disk record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// File type.
    pub itype: FileType,
    /// Link count (directory entries referencing this inode).
    pub nlink: u16,
    /// File size in bytes.
    pub size: u64,
    /// Generation-unique trace file id: never reused even when the inode
    /// number is, so lifetime analyses can tell recreations apart.
    pub fid: u64,
    /// Last access time (ms).
    pub atime: u64,
    /// Last modification time (ms).
    pub mtime: u64,
    /// Inode change time (ms).
    pub ctime: u64,
    /// Direct extent pointers: absolute fragment addresses (0 = none).
    pub direct: [u32; NDIRECT],
    /// Single-indirect block pointer (fragment address of a full block of
    /// `u32` pointers; 0 = none).
    pub indirect: u32,
    /// Double-indirect block pointer (0 = none).
    pub dindirect: u32,
}

impl Inode {
    /// Creates an empty inode of the given type.
    pub fn empty(itype: FileType, fid: u64, now_ms: u64) -> Self {
        Inode {
            itype,
            nlink: 0,
            size: 0,
            fid,
            atime: now_ms,
            mtime: now_ms,
            ctime: now_ms,
            direct: [0; NDIRECT],
            indirect: 0,
            dindirect: 0,
        }
    }

    /// Serializes to the 128-byte on-disk record.
    pub fn to_bytes(&self) -> [u8; INODE_SIZE] {
        let mut b = [0u8; INODE_SIZE];
        let t: u16 = match self.itype {
            FileType::Regular => 1,
            FileType::Directory => 2,
        };
        b[0..2].copy_from_slice(&t.to_le_bytes());
        b[2..4].copy_from_slice(&self.nlink.to_le_bytes());
        b[4..12].copy_from_slice(&self.size.to_le_bytes());
        b[12..20].copy_from_slice(&self.fid.to_le_bytes());
        b[20..28].copy_from_slice(&self.atime.to_le_bytes());
        b[28..36].copy_from_slice(&self.mtime.to_le_bytes());
        b[36..44].copy_from_slice(&self.ctime.to_le_bytes());
        for (i, &d) in self.direct.iter().enumerate() {
            b[44 + i * 4..48 + i * 4].copy_from_slice(&d.to_le_bytes());
        }
        b[92..96].copy_from_slice(&self.indirect.to_le_bytes());
        b[96..100].copy_from_slice(&self.dindirect.to_le_bytes());
        b
    }

    /// Deserializes from an on-disk record; `None` if the slot is free
    /// (type field 0) or malformed.
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() < INODE_SIZE {
            return None;
        }
        let word = |r: std::ops::Range<usize>| -> u64 {
            let mut x = [0u8; 8];
            x.copy_from_slice(&b[r]);
            u64::from_le_bytes(x)
        };
        let t = u16::from_le_bytes([b[0], b[1]]);
        let itype = match t {
            1 => FileType::Regular,
            2 => FileType::Directory,
            _ => return None,
        };
        let mut direct = [0u32; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = u32::from_le_bytes([b[44 + i * 4], b[45 + i * 4], b[46 + i * 4], b[47 + i * 4]]);
        }
        Some(Inode {
            itype,
            nlink: u16::from_le_bytes([b[2], b[3]]),
            size: word(4..12),
            fid: word(12..20),
            atime: word(20..28),
            mtime: word(28..36),
            ctime: word(36..44),
            direct,
            indirect: u32::from_le_bytes([b[92], b[93], b[94], b[95]]),
            dindirect: u32::from_le_bytes([b[96], b[97], b[98], b[99]]),
        })
    }

    /// `true` for directories.
    pub fn is_dir(&self) -> bool {
        self.itype == FileType::Directory
    }
}

/// Statistics for the in-core inode table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InodeTableStats {
    /// Lookups satisfied from the table.
    pub hits: u64,
    /// Lookups that required a disk read.
    pub misses: u64,
}

impl InodeTableStats {
    /// Hit ratio in `[0, 1]`; `0.0` when no lookups occurred, per the
    /// workspace-wide [`obs::ratio`] convention.
    pub fn hit_ratio(&self) -> f64 {
        obs::ratio(self.hits, self.hits + self.misses)
    }
}

/// Live counter handles behind [`InodeTableStats`].
#[derive(Debug, Clone, Default)]
struct InodeCounters {
    hits: obs::Counter,
    misses: obs::Counter,
}

impl InodeCounters {
    fn snapshot(&self) -> InodeTableStats {
        InodeTableStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
        }
    }

    fn register(&self, registry: &obs::Registry, prefix: &str) {
        registry.attach_counter(&format!("{prefix}.hits"), &self.hits);
        registry.attach_counter(&format!("{prefix}.misses"), &self.misses);
    }
}

struct Slot {
    inode: Inode,
    refs: u32,
    dirty: bool,
    last_used: u64,
}

/// The in-core inode table: referenced inodes plus an LRU cache of
/// recently used unreferenced ones.
pub struct InodeTable {
    capacity: usize,
    slots: HashMap<Ino, Slot>,
    seq: u64,
    stats: InodeCounters,
}

impl InodeTable {
    /// Creates a table caching up to `capacity` unreferenced inodes.
    pub fn new(capacity: usize) -> Self {
        InodeTable {
            capacity: capacity.max(1),
            slots: HashMap::new(),
            seq: 0,
            stats: InodeCounters::default(),
        }
    }

    /// Looks up an inode, bumping its recency. Counts a hit or miss.
    pub fn get(&mut self, ino: Ino) -> Option<&Inode> {
        self.seq += 1;
        match self.slots.get_mut(&ino) {
            Some(s) => {
                s.last_used = self.seq;
                self.stats.hits.inc();
                Some(&s.inode)
            }
            None => {
                self.stats.misses.inc();
                None
            }
        }
    }

    /// Looks up an inode mutably without touching hit/miss counters
    /// (for updates following a counted `get`).
    pub fn get_mut(&mut self, ino: Ino) -> Option<&mut Inode> {
        self.seq += 1;
        let seq = self.seq;
        self.slots.get_mut(&ino).map(|s| {
            s.last_used = seq;
            s.dirty = true;
            &mut s.inode
        })
    }

    /// Inserts an inode read from disk (or newly created). Returns
    /// dirty inodes evicted to make room, which the caller must write
    /// back.
    pub fn insert(&mut self, ino: Ino, inode: Inode, dirty: bool) -> Vec<(Ino, Inode)> {
        self.seq += 1;
        self.slots.insert(
            ino,
            Slot {
                inode,
                refs: 0,
                dirty,
                last_used: self.seq,
            },
        );
        self.evict_excess()
    }

    fn evict_excess(&mut self) -> Vec<(Ino, Inode)> {
        let mut out = Vec::new();
        while self.slots.len() > self.capacity {
            // Evict the least recently used unreferenced slot.
            let victim = self
                .slots
                .iter()
                .filter(|(_, s)| s.refs == 0)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(&ino, _)| ino);
            match victim {
                Some(ino) => {
                    let s = self.slots.remove(&ino).expect("victim exists");
                    if s.dirty {
                        out.push((ino, s.inode));
                    }
                }
                None => break, // Everything referenced; allow overflow.
            }
        }
        out
    }

    /// Increments the reference count (file opened).
    pub fn incref(&mut self, ino: Ino) {
        if let Some(s) = self.slots.get_mut(&ino) {
            s.refs += 1;
        }
    }

    /// Decrements the reference count (file closed). Returns the new
    /// count.
    pub fn decref(&mut self, ino: Ino) -> u32 {
        match self.slots.get_mut(&ino) {
            Some(s) => {
                debug_assert!(s.refs > 0, "decref of unreferenced inode");
                s.refs = s.refs.saturating_sub(1);
                s.refs
            }
            None => 0,
        }
    }

    /// Current reference count.
    pub fn refs(&self, ino: Ino) -> u32 {
        self.slots.get(&ino).map(|s| s.refs).unwrap_or(0)
    }

    /// Removes an inode (file deleted); it is not written back.
    pub fn remove(&mut self, ino: Ino) {
        self.slots.remove(&ino);
    }

    /// Drains the dirty flags, returning all dirty inodes for writeback.
    pub fn take_dirty(&mut self) -> Vec<(Ino, Inode)> {
        let mut out = Vec::new();
        for (&ino, s) in self.slots.iter_mut() {
            if s.dirty {
                s.dirty = false;
                out.push((ino, s.inode.clone()));
            }
        }
        out.sort_by_key(|&(ino, _)| ino);
        out
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> InodeTableStats {
        self.stats.snapshot()
    }

    /// Exports this table's counters into `registry` under `prefix`.
    pub(crate) fn register_obs(&self, registry: &obs::Registry, prefix: &str) {
        self.stats.register(registry, prefix);
    }

    /// Number of cached slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_table_hit_ratio_is_zero_not_nan() {
        let s = InodeTableStats::default();
        assert_eq!(s.hit_ratio(), 0.0);
        assert!(!s.hit_ratio().is_nan());
    }

    fn node(fid: u64) -> Inode {
        let mut i = Inode::empty(FileType::Regular, fid, 1000);
        i.size = fid * 100;
        i.direct[0] = 42;
        i.nlink = 1;
        i
    }

    #[test]
    fn serialization_roundtrip() {
        let mut i = node(7);
        i.indirect = 99;
        i.dindirect = 100;
        i.direct = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];
        let b = i.to_bytes();
        let back = Inode::from_bytes(&b).unwrap();
        assert_eq!(back, i);
    }

    #[test]
    fn free_slot_deserializes_to_none() {
        assert!(Inode::from_bytes(&[0u8; INODE_SIZE]).is_none());
        assert!(Inode::from_bytes(&[0u8; 10]).is_none());
    }

    #[test]
    fn directory_roundtrip() {
        let i = Inode::empty(FileType::Directory, 1, 0);
        let back = Inode::from_bytes(&i.to_bytes()).unwrap();
        assert!(back.is_dir());
    }

    #[test]
    fn table_hit_miss_accounting() {
        let mut t = InodeTable::new(4);
        assert!(t.get(Ino(5)).is_none());
        t.insert(Ino(5), node(1), false);
        assert!(t.get(Ino(5)).is_some());
        let s = t.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_is_lru_and_returns_dirty() {
        let mut t = InodeTable::new(2);
        t.insert(Ino(1), node(1), true);
        t.insert(Ino(2), node(2), false);
        t.get(Ino(1)); // Make ino 2 the LRU.
        let evicted = t.insert(Ino(3), node(3), false);
        assert!(evicted.is_empty()); // Ino 2 was clean.
        assert!(t.slots.contains_key(&Ino(1)));
        assert!(!t.slots.contains_key(&Ino(2)));

        let evicted = t.insert(Ino(4), node(4), false);
        // Now ino 1 (dirty) is evicted and must be written back.
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, Ino(1));
    }

    #[test]
    fn referenced_inodes_are_not_evicted() {
        let mut t = InodeTable::new(1);
        t.insert(Ino(1), node(1), true);
        t.incref(Ino(1));
        let evicted = t.insert(Ino(2), node(2), false);
        // Ino 1 is pinned; ino 2 (unreferenced LRU) goes instead.
        assert!(evicted.is_empty());
        assert!(t.slots.contains_key(&Ino(1)));
        assert_eq!(t.refs(Ino(1)), 1);
        assert_eq!(t.decref(Ino(1)), 0);
    }

    #[test]
    fn take_dirty_clears_flags() {
        let mut t = InodeTable::new(4);
        t.insert(Ino(1), node(1), false);
        t.get_mut(Ino(1)).unwrap().size = 999; // Marks dirty.
        let d = t.take_dirty();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1.size, 999);
        assert!(t.take_dirty().is_empty());
    }

    #[test]
    fn remove_discards_without_writeback() {
        let mut t = InodeTable::new(4);
        t.insert(Ino(1), node(1), true);
        t.remove(Ino(1));
        assert!(t.take_dirty().is_empty());
        assert!(t.is_empty());
    }
}
