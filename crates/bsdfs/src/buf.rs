//! The buffer cache: variable-size buffers over disk extents.
//!
//! This is the `bsdfs` analogue of the 4.2 BSD buffer cache the paper
//! describes in Section 6: "about 10% of main memory (200-400 kbytes) for
//! a cache of recently-used disk blocks ... maintained in a
//! least-recently-used fashion". Buffers are per-extent and so
//! variable-size ("100-200 blocks of different sizes", Section 6.4),
//! because a small file's tail occupies only a fragment run.
//!
//! Unlike the trace-driven simulator in the `cachesim` crate — which sees
//! only logical file data — this cache carries *all* traffic: file data,
//! inode fragments, indirect blocks, and directory blocks. Comparing the
//! two is the paper's Section 6.4 exercise.

use std::collections::HashMap;

use obs::{Counter, Registry};

use crate::disk::Disk;

/// Write policy for dirty buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufWritePolicy {
    /// Every modification goes straight to disk.
    WriteThrough,
    /// Dirty buffers are written by periodic scans (the `sync` daemon);
    /// the file system calls [`BufCache::maybe_flush`] with the current
    /// time on every operation.
    FlushBack {
        /// Scan interval in milliseconds (4.2 BSD used 30 000).
        interval_ms: u64,
    },
    /// Dirty buffers are written only when evicted or explicitly synced.
    DelayedWrite,
}

/// Counters for buffer cache activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufCacheStats {
    /// Logical read accesses.
    pub logical_reads: u64,
    /// Logical write (modify) accesses.
    pub logical_writes: u64,
    /// Read accesses satisfied from the cache.
    pub read_hits: u64,
    /// Read accesses that fetched from disk.
    pub read_misses: u64,
    /// Write accesses that avoided a fetch because the whole extent was
    /// being overwritten.
    pub write_fetches_elided: u64,
    /// Disk reads issued (fetches).
    pub disk_reads: u64,
    /// Disk writes issued (write-through, flush, eviction, sync).
    pub disk_writes: u64,
    /// Dirty buffers dropped by invalidation before ever reaching disk
    /// (deleted or overwritten files — the delayed-write win).
    pub dirty_invalidated: u64,
}

impl BufCacheStats {
    /// Logical accesses (reads + writes).
    pub fn logical_accesses(&self) -> u64 {
        self.logical_reads + self.logical_writes
    }

    /// The paper's metric: disk I/O operations per logical access.
    ///
    /// Zero logical accesses yield `0.0`, per the workspace-wide
    /// [`obs::ratio`] convention.
    pub fn miss_ratio(&self) -> f64 {
        obs::ratio(self.disk_reads + self.disk_writes, self.logical_accesses())
    }
}

/// The live [`obs::Counter`] handles behind [`BufCacheStats`].
///
/// The cache increments these on its hot paths; [`BufCache::stats`]
/// reads them back into the plain [`BufCacheStats`] snapshot, and
/// [`BufCache::register_obs`] exports the same cells by name so a
/// registry snapshot sees every later increment.
#[derive(Debug, Clone, Default)]
struct BufCounters {
    logical_reads: Counter,
    logical_writes: Counter,
    read_hits: Counter,
    read_misses: Counter,
    write_fetches_elided: Counter,
    disk_reads: Counter,
    disk_writes: Counter,
    dirty_invalidated: Counter,
}

impl BufCounters {
    fn snapshot(&self) -> BufCacheStats {
        BufCacheStats {
            logical_reads: self.logical_reads.get(),
            logical_writes: self.logical_writes.get(),
            read_hits: self.read_hits.get(),
            read_misses: self.read_misses.get(),
            write_fetches_elided: self.write_fetches_elided.get(),
            disk_reads: self.disk_reads.get(),
            disk_writes: self.disk_writes.get(),
            dirty_invalidated: self.dirty_invalidated.get(),
        }
    }

    fn register(&self, registry: &Registry, prefix: &str) {
        for (field, counter) in [
            ("logical_reads", &self.logical_reads),
            ("logical_writes", &self.logical_writes),
            ("read_hits", &self.read_hits),
            ("read_misses", &self.read_misses),
            ("write_fetches_elided", &self.write_fetches_elided),
            ("disk_reads", &self.disk_reads),
            ("disk_writes", &self.disk_writes),
            ("dirty_invalidated", &self.dirty_invalidated),
        ] {
            registry.attach_counter(&format!("{prefix}.{field}"), counter);
        }
    }
}

struct Buf {
    nfrags: u32,
    data: Box<[u8]>,
    dirty: bool,
    last_used: u64,
}

/// An LRU cache of disk extents with configurable write policy.
pub struct BufCache {
    capacity: u64,
    cur_bytes: u64,
    map: HashMap<u64, Buf>,
    seq: u64,
    policy: BufWritePolicy,
    last_flush_ms: u64,
    stats: BufCounters,
}

impl BufCache {
    /// Creates a cache of `capacity` bytes with the given policy.
    pub fn new(capacity: u64, policy: BufWritePolicy) -> Self {
        BufCache {
            capacity,
            cur_bytes: 0,
            map: HashMap::new(),
            seq: 0,
            policy,
            last_flush_ms: 0,
            stats: BufCounters::default(),
        }
    }

    /// The configured write policy.
    pub fn policy(&self) -> BufWritePolicy {
        self.policy
    }

    /// Bytes currently buffered.
    pub fn resident_bytes(&self) -> u64 {
        self.cur_bytes
    }

    /// Number of buffers resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no buffers are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Activity counters (a point-in-time snapshot of the live cells).
    pub fn stats(&self) -> BufCacheStats {
        self.stats.snapshot()
    }

    /// Exports this cache's live counters into `registry` under
    /// `prefix` (e.g. `"bsdfs.a5.bufcache"`). Snapshots taken from the
    /// registry afterwards reflect all activity, past and future.
    pub fn register_obs(&self, registry: &Registry, prefix: &str) {
        self.stats.register(registry, prefix);
    }

    fn touch(&mut self, frag: u64) {
        self.seq += 1;
        let seq = self.seq;
        if let Some(b) = self.map.get_mut(&frag) {
            b.last_used = seq;
        }
    }

    fn fetch(&mut self, disk: &mut Disk, frag: u64, nfrags: u32, read: bool) {
        debug_assert!(!self.map.contains_key(&frag));
        let len = nfrags as usize * disk.frag_size() as usize;
        let mut data = vec![0u8; len].into_boxed_slice();
        if read {
            disk.read_extent(frag, nfrags, &mut data);
            self.stats.disk_reads.inc();
        }
        self.seq += 1;
        self.cur_bytes += len as u64;
        self.map.insert(
            frag,
            Buf {
                nfrags,
                data,
                dirty: false,
                last_used: self.seq,
            },
        );
        self.evict_excess(disk, frag);
    }

    fn evict_excess(&mut self, disk: &mut Disk, keep: u64) {
        while self.cur_bytes > self.capacity && self.map.len() > 1 {
            let victim = self
                .map
                .iter()
                .filter(|(&k, _)| k != keep)
                .min_by_key(|(_, b)| b.last_used)
                .map(|(&k, _)| k);
            let Some(k) = victim else { break };
            let b = self.map.remove(&k).expect("victim exists");
            if b.dirty {
                disk.write_extent(k, b.nfrags, &b.data);
                self.stats.disk_writes.inc();
            }
            self.cur_bytes -= b.data.len() as u64;
        }
    }

    /// Reads an extent through the cache, passing its bytes to `f`.
    pub fn read<R>(
        &mut self,
        disk: &mut Disk,
        frag: u64,
        nfrags: u32,
        f: impl FnOnce(&[u8]) -> R,
    ) -> R {
        self.stats.logical_reads.inc();
        match self.map.get(&frag) {
            Some(b) => {
                debug_assert_eq!(b.nfrags, nfrags, "extent size changed without invalidation");
                self.stats.read_hits.inc();
                self.touch(frag);
            }
            None => {
                self.stats.read_misses.inc();
                self.fetch(disk, frag, nfrags, true);
            }
        }
        f(&self.map[&frag].data)
    }

    /// Modifies an extent through the cache.
    ///
    /// If `whole` is `true` the entire extent is being overwritten and a
    /// missing buffer is *not* fetched from disk first — the elision the
    /// paper's simulator also applies ("unless the block was about to be
    /// overwritten in its entirety", Section 6.1).
    pub fn modify(
        &mut self,
        disk: &mut Disk,
        frag: u64,
        nfrags: u32,
        whole: bool,
        f: impl FnOnce(&mut [u8]),
    ) {
        self.stats.logical_writes.inc();
        match self.map.get(&frag) {
            Some(b) => {
                debug_assert_eq!(b.nfrags, nfrags, "extent size changed without invalidation");
                self.touch(frag);
            }
            None => {
                if whole {
                    self.stats.write_fetches_elided.inc();
                }
                self.fetch(disk, frag, nfrags, !whole);
            }
        }
        let b = self.map.get_mut(&frag).expect("just fetched");
        f(&mut b.data);
        match self.policy {
            BufWritePolicy::WriteThrough => {
                disk.write_extent(frag, b.nfrags, &b.data);
                self.stats.disk_writes.inc();
                b.dirty = false;
            }
            _ => b.dirty = true,
        }
    }

    /// Drops the buffer at `frag` without writing it back; dirty data is
    /// lost on purpose (the extent was freed).
    pub fn invalidate(&mut self, frag: u64) {
        if let Some(b) = self.map.remove(&frag) {
            if b.dirty {
                self.stats.dirty_invalidated.inc();
            }
            self.cur_bytes -= b.data.len() as u64;
        }
    }

    /// Writes all dirty buffers to disk (the `sync` system call).
    pub fn sync(&mut self, disk: &mut Disk, now_ms: u64) {
        let mut keys: Vec<u64> = self
            .map
            .iter()
            .filter(|(_, b)| b.dirty)
            .map(|(&k, _)| k)
            .collect();
        keys.sort_unstable();
        for k in keys {
            let b = self.map.get_mut(&k).expect("key exists");
            disk.write_extent(k, b.nfrags, &b.data);
            self.stats.disk_writes.inc();
            b.dirty = false;
        }
        self.last_flush_ms = now_ms;
    }

    /// Runs a periodic flush if the policy is [`BufWritePolicy::FlushBack`]
    /// and the interval has elapsed.
    pub fn maybe_flush(&mut self, disk: &mut Disk, now_ms: u64) {
        if let BufWritePolicy::FlushBack { interval_ms } = self.policy {
            if now_ms.saturating_sub(self.last_flush_ms) >= interval_ms {
                self.sync(disk, now_ms);
            }
        }
    }

    /// Number of dirty buffers resident (for tests and reports).
    pub fn dirty_count(&self) -> usize {
        self.map.values().filter(|b| b.dirty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(capacity: u64, policy: BufWritePolicy) -> (Disk, BufCache) {
        (Disk::new(1024, 64), BufCache::new(capacity, policy))
    }

    #[test]
    fn read_miss_then_hit() {
        let (mut d, mut c) = setup(16 * 1024, BufWritePolicy::DelayedWrite);
        d.write_extent(4, 1, &vec![9u8; 1024]);
        let v = c.read(&mut d, 4, 1, |b| b[0]);
        assert_eq!(v, 9);
        c.read(&mut d, 4, 1, |_| ());
        let s = c.stats();
        assert_eq!(s.read_misses, 1);
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.disk_reads, 1);
    }

    #[test]
    fn write_through_writes_immediately() {
        let (mut d, mut c) = setup(16 * 1024, BufWritePolicy::WriteThrough);
        c.modify(&mut d, 8, 1, true, |b| b[0] = 1);
        assert_eq!(c.stats().disk_writes, 1);
        assert_eq!(c.dirty_count(), 0);
        assert_eq!(d.peek(8, 1)[0], 1);
    }

    #[test]
    fn delayed_write_defers_until_sync() {
        let (mut d, mut c) = setup(16 * 1024, BufWritePolicy::DelayedWrite);
        c.modify(&mut d, 8, 1, true, |b| b[0] = 1);
        assert_eq!(c.stats().disk_writes, 0);
        assert_eq!(d.peek(8, 1)[0], 0);
        c.sync(&mut d, 0);
        assert_eq!(c.stats().disk_writes, 1);
        assert_eq!(d.peek(8, 1)[0], 1);
        // A second sync writes nothing.
        c.sync(&mut d, 0);
        assert_eq!(c.stats().disk_writes, 1);
    }

    #[test]
    fn whole_overwrite_elides_fetch() {
        let (mut d, mut c) = setup(16 * 1024, BufWritePolicy::DelayedWrite);
        c.modify(&mut d, 8, 2, true, |b| b.fill(5));
        let s = c.stats();
        assert_eq!(s.disk_reads, 0);
        assert_eq!(s.write_fetches_elided, 1);
        // A partial write of an uncached extent must fetch first.
        c.modify(&mut d, 12, 2, false, |b| b[0] = 1);
        assert_eq!(c.stats().disk_reads, 1);
    }

    #[test]
    fn eviction_is_lru_and_writes_dirty() {
        // Capacity of two 1-frag buffers.
        let (mut d, mut c) = setup(2 * 1024, BufWritePolicy::DelayedWrite);
        c.modify(&mut d, 1, 1, true, |b| b[0] = 1);
        c.modify(&mut d, 2, 1, true, |b| b[0] = 2);
        c.read(&mut d, 1, 1, |_| ()); // Buffer 2 becomes LRU.
        c.modify(&mut d, 3, 1, true, |b| b[0] = 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().disk_writes, 1); // Buffer 2 written on eviction.
        assert_eq!(d.peek(2, 1)[0], 2);
        assert_eq!(d.peek(1, 1)[0], 0); // Buffer 1 still only in cache.
    }

    #[test]
    fn invalidate_drops_dirty_without_write() {
        let (mut d, mut c) = setup(16 * 1024, BufWritePolicy::DelayedWrite);
        c.modify(&mut d, 8, 1, true, |b| b[0] = 1);
        c.invalidate(8);
        assert_eq!(c.stats().disk_writes, 0);
        assert_eq!(c.stats().dirty_invalidated, 1);
        assert_eq!(d.peek(8, 1)[0], 0);
        assert!(c.is_empty());
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn flush_back_respects_interval() {
        let (mut d, mut c) = setup(
            16 * 1024,
            BufWritePolicy::FlushBack {
                interval_ms: 30_000,
            },
        );
        c.modify(&mut d, 8, 1, true, |b| b[0] = 1);
        c.maybe_flush(&mut d, 10_000); // 10 s since start: below the interval.
        assert_eq!(d.peek(8, 1)[0], 0);
        c.maybe_flush(&mut d, 31_000);
        assert_eq!(d.peek(8, 1)[0], 1);
    }

    #[test]
    fn flush_back_timing_exact() {
        let (mut d, mut c) = setup(
            16 * 1024,
            BufWritePolicy::FlushBack {
                interval_ms: 30_000,
            },
        );
        // Prime last_flush to 0 via sync of an empty cache.
        c.sync(&mut d, 0);
        c.modify(&mut d, 8, 1, true, |b| b[0] = 1);
        c.maybe_flush(&mut d, 29_999);
        assert_eq!(c.stats().disk_writes, 0);
        c.maybe_flush(&mut d, 30_000);
        assert_eq!(c.stats().disk_writes, 1);
    }

    #[test]
    fn idle_cache_ratio_is_zero_not_nan() {
        // The workspace-wide obs::ratio convention: no traffic -> 0.0.
        let s = BufCacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert!(!s.miss_ratio().is_nan());
    }

    #[test]
    fn register_obs_exports_live_counters() {
        let (mut d, mut c) = setup(16 * 1024, BufWritePolicy::WriteThrough);
        let reg = obs::Registry::new();
        c.register_obs(&reg, "buf");
        c.modify(&mut d, 8, 1, true, |b| b[0] = 1);
        c.read(&mut d, 8, 1, |_| ());
        let snap = reg.snapshot();
        let s = c.stats();
        assert_eq!(snap.counter("buf.logical_reads"), Some(s.logical_reads));
        assert_eq!(snap.counter("buf.read_hits"), Some(s.read_hits));
        assert_eq!(snap.counter("buf.disk_writes"), Some(s.disk_writes));
    }

    #[test]
    fn miss_ratio_computation() {
        let (mut d, mut c) = setup(16 * 1024, BufWritePolicy::WriteThrough);
        c.modify(&mut d, 8, 1, true, |b| b[0] = 1); // 1 disk write.
        c.read(&mut d, 8, 1, |_| ()); // Hit: no disk I/O.
        let s = c.stats();
        assert_eq!(s.logical_accesses(), 2);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
    }
}
