//! Property-based tests: the file system against a trivial model.

use std::collections::HashMap;

use bsdfs::{Fs, FsError, FsParams, OpenFlags, SeekFrom};
use proptest::prelude::*;

/// One step of a random single-file workload.
#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    OpenRead(u8),
    Write(u8, Vec<u8>),
    Read(u8, u16),
    Seek(u8, u32),
    Close(u8),
    Unlink(u8),
    Truncate(u8, u32),
    Sync,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4).prop_map(Op::Create),
        (0u8..4).prop_map(Op::OpenRead),
        (0u8..4, prop::collection::vec(any::<u8>(), 0..3000)).prop_map(|(f, d)| Op::Write(f, d)),
        (0u8..4, 0u16..5000).prop_map(|(f, n)| Op::Read(f, n)),
        (0u8..4, 0u32..10_000).prop_map(|(f, p)| Op::Seek(f, p)),
        (0u8..4).prop_map(Op::Close),
        (0u8..4).prop_map(Op::Unlink),
        (0u8..4, 0u32..10_000).prop_map(|(f, l)| Op::Truncate(f, l)),
        Just(Op::Sync),
    ]
}

/// Model state per file slot.
#[derive(Default)]
struct Model {
    /// Path → content, for files that currently exist.
    files: HashMap<String, Vec<u8>>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The file system agrees with a HashMap model under arbitrary
    /// create/write/read/seek/truncate/unlink/close/sync interleavings,
    /// and its structural invariants hold afterwards.
    #[test]
    fn fs_matches_model(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut fs = Fs::new(FsParams::small()).unwrap();
        let mut model = Model::default();
        // Open descriptors per slot: (fd, path, pos, writable).
        let mut open: HashMap<u8, (bsdfs::Fd, String, u64, bool)> = HashMap::new();
        let mut now = 0u64;
        for op in ops {
            now += 10;
            match op {
                Op::Create(slot) => {
                    if open.contains_key(&slot) { continue; }
                    let path = format!("/f{slot}");
                    let fd = fs.open(&path, OpenFlags::create_write(), 0, now).unwrap();
                    model.files.insert(path.clone(), Vec::new());
                    open.insert(slot, (fd, path, 0, true));
                }
                Op::OpenRead(slot) => {
                    if open.contains_key(&slot) { continue; }
                    let path = format!("/f{slot}");
                    match fs.open(&path, OpenFlags::read_only(), 0, now) {
                        Ok(fd) => {
                            prop_assert!(model.files.contains_key(&path));
                            open.insert(slot, (fd, path, 0, false));
                        }
                        Err(FsError::NotFound) => {
                            prop_assert!(!model.files.contains_key(&path));
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                }
                Op::Write(slot, data) => {
                    let Some((fd, path, pos, writable)) = open.get_mut(&slot) else { continue };
                    if !*writable {
                        prop_assert_eq!(fs.write_bytes(*fd, &data, now), Err(FsError::BadMode));
                        continue;
                    }
                    fs.write_bytes(*fd, &data, now).unwrap();
                    let content = model.files.get_mut(path).expect("open file exists in model");
                    let p = *pos as usize;
                    if content.len() < p + data.len() {
                        content.resize(p + data.len(), 0);
                    }
                    content[p..p + data.len()].copy_from_slice(&data);
                    *pos += data.len() as u64;
                }
                Op::Read(slot, n) => {
                    let Some((fd, path, pos, writable)) = open.get_mut(&slot) else { continue };
                    if *writable {
                        // create_write descriptors are write-only.
                        prop_assert_eq!(fs.read(*fd, n as u64, now), Err(FsError::BadMode));
                        continue;
                    }
                    let mut buf = vec![0u8; n as usize];
                    let got = fs.read_into(*fd, &mut buf, now).unwrap();
                    let content = &model.files[path];
                    let p = (*pos as usize).min(content.len());
                    let expect = &content[p..(p + n as usize).min(content.len())];
                    prop_assert_eq!(got as usize, expect.len());
                    prop_assert_eq!(&buf[..expect.len()], expect);
                    *pos += got;
                }
                Op::Seek(slot, p) => {
                    let Some((fd, _, pos, _)) = open.get_mut(&slot) else { continue };
                    let got = fs.lseek(*fd, SeekFrom::Set(p as u64), now).unwrap();
                    prop_assert_eq!(got, p as u64);
                    *pos = p as u64;
                }
                Op::Close(slot) => {
                    let Some((fd, _, _, _)) = open.remove(&slot) else { continue };
                    fs.close(fd, now).unwrap();
                }
                Op::Unlink(slot) => {
                    let path = format!("/f{slot}");
                    match fs.unlink(&path, 0, now) {
                        Ok(()) => {
                            prop_assert!(model.files.remove(&path).is_some());
                            // Open descriptors on the unlinked file remain
                            // usable; drop our model content tracking by
                            // reinserting under a shadow name if open.
                            if let Some((_, p, _, _)) = open.get(&slot) {
                                // The open fd still refers to the old data;
                                // model it under its path so reads check out.
                                model.files.insert(p.clone(), Vec::new());
                                // Simplification: force-close to avoid
                                // tracking orphan contents.
                                let (fd, _, _, _) = open.remove(&slot).unwrap();
                                fs.close(fd, now).unwrap();
                                model.files.remove(&path);
                            }
                        }
                        Err(FsError::NotFound) => {
                            prop_assert!(!model.files.contains_key(&path));
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                }
                Op::Truncate(slot, l) => {
                    let path = format!("/f{slot}");
                    let l = l as u64;
                    match fs.truncate(&path, l, 0, now) {
                        Ok(()) => {
                            let c = model.files.get_mut(&path).expect("exists");
                            prop_assert!(l <= c.len() as u64);
                            c.truncate(l as usize);
                        }
                        Err(FsError::NotFound) => {
                            prop_assert!(!model.files.contains_key(&path));
                        }
                        Err(FsError::InvalidArg) => {
                            prop_assert!(l > model.files[&path].len() as u64);
                        }
                        Err(e) => prop_assert!(false, "unexpected error {e:?}"),
                    }
                }
                Op::Sync => fs.sync(now),
            }
        }
        for (_, (fd, _, _, _)) in open {
            fs.close(fd, now + 10).unwrap();
        }
        // Structural invariants and final content agreement.
        let live = fs.check_consistency().unwrap();
        prop_assert_eq!(live as usize, model.files.len());
        for (path, content) in &model.files {
            let now2 = now + 100;
            prop_assert_eq!(fs.stat(path, now2).unwrap().size, content.len() as u64);
            let fd = fs.open(path, OpenFlags::read_only(), 0, now2).unwrap();
            let mut buf = vec![0u8; content.len()];
            prop_assert_eq!(fs.read_into(fd, &mut buf, now2).unwrap(), content.len() as u64);
            prop_assert_eq!(&buf, content);
            fs.close(fd, now2).unwrap();
        }
        // The trace of all this is well-formed.
        let trace = fs.take_trace();
        prop_assert_eq!(trace.sessions().anomalies(), 0);
    }

    /// Allocation conserves fragment counts under arbitrary alloc/free.
    #[test]
    fn allocator_conserves_frags(
        sizes in prop::collection::vec(1u32..=4, 1..200),
        frees in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        use bsdfs::alloc::FragAllocator;
        let mut a = FragAllocator::new(4, 100, 512, 4);
        let total = a.free_frags();
        let mut live: Vec<(u64, u32)> = Vec::new();
        let mut allocated = 0u64;
        for (i, &k) in sizes.iter().enumerate() {
            // Running out of space is fine under fragmentation.
            if let Ok(addr) = a.alloc((i % 4) as u32, k) {
                // No overlap with live extents.
                for &(la, lk) in &live {
                    let no_overlap = addr + k as u64 <= la || la + lk as u64 <= addr;
                    prop_assert!(no_overlap, "overlap {addr}+{k} vs {la}+{lk}");
                }
                prop_assert!(a.is_allocated(addr, k));
                live.push((addr, k));
                allocated += k as u64;
            }
            prop_assert_eq!(a.free_frags(), total - allocated);
            if *frees.get(i).unwrap_or(&false) && !live.is_empty() {
                let (addr, k) = live.swap_remove(i % live.len());
                a.free(addr, k);
                allocated -= k as u64;
            }
        }
    }
}
