//! Reconstruction of per-open access patterns from a logical trace.
//!
//! This module implements the deduction at the heart of the paper's
//! no-read-write tracing approach (Section 3.1): because file I/O between
//! repositioning operations is sequential, the positions recorded at
//! `open`, each `seek`, and `close` determine exactly which byte ranges
//! were transferred. Each maximal stretch of sequential transfer is a
//! [`Run`]; all analyses and the cache simulator consume these runs.
//!
//! Following the paper, every transfer is *billed at the time of the next
//! `close` or `seek` event* for the file.

use crate::hash::FastMap;

use crate::event::{AccessMode, TraceEvent, TraceRecord};
use crate::ids::{FileId, OpenId, Timestamp, UserId};

/// One sequential run: bytes transferred between repositioning events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// Byte offset in the file where the run starts.
    pub offset: u64,
    /// Number of bytes transferred; always positive.
    pub len: u64,
    /// Time of the `seek` or `close` that ended (and bills) the run.
    pub billed_at: Timestamp,
}

impl Run {
    /// Offset one past the last byte of the run.
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// The reconstructed history of one `open`…`close` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenSession {
    /// Identifier of the `open` call.
    pub open_id: OpenId,
    /// The file accessed.
    pub file_id: FileId,
    /// The invoking account.
    pub user_id: UserId,
    /// Read/write mode of the open.
    pub mode: AccessMode,
    /// `true` if the open created the file or truncated it to zero.
    pub created: bool,
    /// Time of the `open` event.
    pub open_time: Timestamp,
    /// Time of the `close` event, or `None` if the trace ended with the
    /// file still open.
    pub close_time: Option<Timestamp>,
    /// File size in bytes at open (after any truncate-on-open).
    pub open_size: u64,
    /// Sequential runs with positive length, in trace order.
    pub runs: Vec<Run>,
    /// Number of `seek` events seen while open.
    pub seek_count: u32,
}

impl OpenSession {
    /// Total bytes transferred during the session.
    pub fn bytes_transferred(&self) -> u64 {
        self.runs.iter().map(|r| r.len).sum()
    }

    /// File size at close, deduced from the open size and the furthest
    /// position reached — exactly what the no-read-write trace permits.
    pub fn size_at_close(&self) -> u64 {
        let furthest = self.runs.iter().map(Run::end).max().unwrap_or(0);
        self.open_size.max(furthest)
    }

    /// Wall time the file was open, in milliseconds (`None` while open at
    /// trace end).
    pub fn open_duration_ms(&self) -> Option<u64> {
        self.close_time.map(|c| c.since(self.open_time))
    }

    /// `true` if the file was read or written sequentially from beginning
    /// to end: a single run covering the whole file with no repositioning
    /// (Table V, "whole-file transfers").
    ///
    /// An open/close of an empty file with no transfers counts — the
    /// whole (zero-byte) file was trivially processed.
    pub fn is_whole_file_transfer(&self) -> bool {
        if self.close_time.is_none() || self.seek_count > 0 {
            return false;
        }
        match self.runs.as_slice() {
            [] => self.size_at_close() == 0,
            [run] => run.offset == 0 && run.len == self.size_at_close(),
            _ => false,
        }
    }

    /// `true` if access was sequential: a whole-file transfer, or
    /// repositioning happened only *before* any bytes were transferred
    /// (Table V, "sequential accesses" — e.g. seek-to-end then append).
    pub fn is_sequential(&self) -> bool {
        if self.close_time.is_none() {
            return false;
        }
        self.runs.len() <= 1
    }
}

/// One `execve` occurrence, kept apart from open sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecEvent {
    /// When the program was loaded.
    pub time: Timestamp,
    /// The program file.
    pub file_id: FileId,
    /// The invoking account.
    pub user_id: UserId,
    /// Program file size in bytes.
    pub size: u64,
}

/// All sessions reconstructed from one trace, plus the `execve` stream.
#[derive(Debug, Clone, Default)]
pub struct SessionSet {
    sessions: Vec<OpenSession>,
    execs: Vec<ExecEvent>,
    anomalies: u64,
    unclosed: u64,
}

/// In-flight state for an open that has not closed yet.
struct Pending {
    session: OpenSession,
    pos: u64,
}

/// Online session reconstruction: feed records one at a time, collect
/// each closed session the moment its `close` arrives.
///
/// This is the single implementation of the paper's run deduction; the
/// batch [`SessionSet::build`] is a thin wrapper over it. Memory is
/// O(live sessions): a session is buffered only between its `open` and
/// its `close`, so a week-long trace streams through without
/// materializing anything proportional to its length.
///
/// # Examples
///
/// ```
/// use fstrace::{AccessMode, SessionBuilder, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// let f = b.new_file_id();
/// let u = b.new_user_id();
/// let o = b.open(0, f, u, AccessMode::ReadOnly, 512, false);
/// b.close(10, o, 512);
/// let trace = b.finish();
///
/// let mut sb = SessionBuilder::new();
/// let mut closed = 0;
/// for rec in trace.records() {
///     if let Some(s) = sb.observe(rec) {
///         assert_eq!(s.bytes_transferred(), 512);
///         closed += 1;
///     }
/// }
/// let (unclosed, anomalies) = sb.finish();
/// assert_eq!((closed, unclosed.len(), anomalies), (1, 0, 0));
/// ```
#[derive(Default)]
pub struct SessionBuilder {
    pending: FastMap<OpenId, Pending>,
    anomalies: u64,
    live_peak: usize,
}

impl SessionBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SessionBuilder::default()
    }

    /// Feeds one record; returns the completed session when the record
    /// is a `close` that matches a live open.
    ///
    /// `close`/`seek` events whose open id was never seen (possible
    /// when a trace starts mid-activity) are counted as anomalies and
    /// skipped.
    pub fn observe(&mut self, rec: &TraceRecord) -> Option<OpenSession> {
        match rec.event {
            TraceEvent::Open {
                open_id,
                file_id,
                user_id,
                mode,
                size,
                created,
            } => {
                let session = OpenSession {
                    open_id,
                    file_id,
                    user_id,
                    mode,
                    created,
                    open_time: rec.time,
                    close_time: None,
                    open_size: size,
                    runs: Vec::new(),
                    seek_count: 0,
                };
                if self
                    .pending
                    .insert(open_id, Pending { session, pos: 0 })
                    .is_some()
                {
                    // Duplicate open id: drop the earlier, unfinished one.
                    self.anomalies += 1;
                }
                self.live_peak = self.live_peak.max(self.pending.len());
                None
            }
            TraceEvent::Seek {
                open_id,
                old_pos,
                new_pos,
            } => {
                match self.pending.get_mut(&open_id) {
                    Some(p) => {
                        p.session.seek_count += 1;
                        if old_pos > p.pos {
                            p.session.runs.push(Run {
                                offset: p.pos,
                                len: old_pos - p.pos,
                                billed_at: rec.time,
                            });
                        } else if old_pos < p.pos {
                            // Positions only move forward between seeks;
                            // a regression is a malformed trace.
                            self.anomalies += 1;
                        }
                        p.pos = new_pos;
                    }
                    None => self.anomalies += 1,
                }
                None
            }
            TraceEvent::Close { open_id, final_pos } => match self.pending.remove(&open_id) {
                Some(mut p) => {
                    if final_pos > p.pos {
                        p.session.runs.push(Run {
                            offset: p.pos,
                            len: final_pos - p.pos,
                            billed_at: rec.time,
                        });
                    } else if final_pos < p.pos {
                        self.anomalies += 1;
                    }
                    p.session.close_time = Some(rec.time);
                    Some(p.session)
                }
                None => {
                    self.anomalies += 1;
                    None
                }
            },
            TraceEvent::Execve { .. } | TraceEvent::Unlink { .. } | TraceEvent::Truncate { .. } => {
                None
            }
        }
    }

    /// Number of sessions currently open (the builder's live memory).
    pub fn live_sessions(&self) -> usize {
        self.pending.len()
    }

    /// Greatest number of simultaneously open sessions seen so far.
    pub fn live_sessions_peak(&self) -> usize {
        self.live_peak
    }

    /// Anomalies counted so far (unknown open ids, position
    /// regressions, duplicate open ids).
    pub fn anomalies(&self) -> u64 {
        self.anomalies
    }

    /// Consumes the builder, returning the still-open sessions (sorted
    /// by open time, then open id, with `close_time == None`) and the
    /// final anomaly count.
    pub fn finish(self) -> (Vec<OpenSession>, u64) {
        let mut rest: Vec<OpenSession> = self.pending.into_values().map(|p| p.session).collect();
        rest.sort_by_key(|s| (s.open_time, s.open_id));
        (rest, self.anomalies)
    }
}

impl SessionSet {
    /// Reconstructs sessions by scanning trace records in order.
    ///
    /// A thin wrapper over the streaming [`SessionBuilder`]: closed
    /// sessions land in close order, opens still pending when the
    /// records end are kept with `close_time == None`, and `execve`
    /// events are collected on the side.
    pub fn build(records: &[TraceRecord]) -> Self {
        let mut builder = SessionBuilder::new();
        let mut out = SessionSet::default();
        for rec in records {
            if let TraceEvent::Execve {
                file_id,
                user_id,
                size,
            } = rec.event
            {
                out.execs.push(ExecEvent {
                    time: rec.time,
                    file_id,
                    user_id,
                    size,
                });
            }
            if let Some(s) = builder.observe(rec) {
                out.sessions.push(s);
            }
        }
        // Keep unfinished opens so Table IV still sees their activity.
        let (rest, anomalies) = builder.finish();
        out.unclosed = rest.len() as u64;
        out.anomalies = anomalies;
        out.sessions.extend(rest);
        out
    }

    /// All sessions, closed ones first in close order, then unclosed.
    pub fn all(&self) -> &[OpenSession] {
        &self.sessions
    }

    /// Sessions that closed within the trace.
    pub fn complete(&self) -> impl Iterator<Item = &OpenSession> {
        self.sessions.iter().filter(|s| s.close_time.is_some())
    }

    /// The `execve` events in trace order.
    pub fn execs(&self) -> &[ExecEvent] {
        &self.execs
    }

    /// Number of sessions reconstructed (closed or not).
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` if no sessions were reconstructed.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Count of malformed references (unknown open ids, position
    /// regressions, duplicate open ids).
    pub fn anomalies(&self) -> u64 {
        self.anomalies
    }

    /// Number of opens still pending at the end of the records.
    pub fn unclosed(&self) -> u64 {
        self.unclosed
    }

    /// Total bytes transferred across all sessions.
    pub fn total_bytes_transferred(&self) -> u64 {
        self.sessions
            .iter()
            .map(OpenSession::bytes_transferred)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    #[test]
    fn whole_file_read() {
        let mut b = TraceBuilder::new();
        let f = b.new_file_id();
        let u = b.new_user_id();
        let o = b.open(100, f, u, AccessMode::ReadOnly, 5000, false);
        b.close(400, o, 5000);
        let t = b.finish();
        let set = t.sessions();
        let s = &set.all()[0];
        assert_eq!(s.bytes_transferred(), 5000);
        assert_eq!(s.size_at_close(), 5000);
        assert_eq!(s.open_duration_ms(), Some(300));
        assert!(s.is_whole_file_transfer());
        assert!(s.is_sequential());
        assert_eq!(s.runs.len(), 1);
        assert_eq!(s.runs[0].billed_at.as_ms(), 400);
    }

    #[test]
    fn partial_read_is_not_whole_file() {
        let mut b = TraceBuilder::new();
        let f = b.new_file_id();
        let u = b.new_user_id();
        let o = b.open(0, f, u, AccessMode::ReadOnly, 5000, false);
        b.close(100, o, 3000);
        let t = b.finish();
        let set = t.sessions();
        let s = &set.all()[0];
        assert!(!s.is_whole_file_transfer());
        assert!(s.is_sequential());
        assert_eq!(s.bytes_transferred(), 3000);
        assert_eq!(s.size_at_close(), 5000);
    }

    #[test]
    fn mailbox_append_pattern() {
        // Open read-write, seek to end before transferring, append, close:
        // sequential but not whole-file (Table V's canonical example).
        let mut b = TraceBuilder::new();
        let f = b.new_file_id();
        let u = b.new_user_id();
        let o = b.open(0, f, u, AccessMode::ReadWrite, 10_000, false);
        b.seek(10, o, 0, 10_000);
        b.close(50, o, 10_500);
        let t = b.finish();
        let set = t.sessions();
        let s = &set.all()[0];
        assert!(!s.is_whole_file_transfer());
        assert!(s.is_sequential());
        assert_eq!(s.bytes_transferred(), 500);
        assert_eq!(s.size_at_close(), 10_500);
        assert_eq!(s.runs[0].offset, 10_000);
    }

    #[test]
    fn random_access_is_not_sequential() {
        let mut b = TraceBuilder::new();
        let f = b.new_file_id();
        let u = b.new_user_id();
        let o = b.open(0, f, u, AccessMode::ReadWrite, 100_000, false);
        b.seek(10, o, 0, 50_000);
        b.seek(20, o, 50_100, 2_000); // Transferred 100 bytes at 50 000.
        b.close(30, o, 2_200); // Transferred 200 bytes at 2 000.
        let t = b.finish();
        let set = t.sessions();
        let s = &set.all()[0];
        assert!(!s.is_sequential());
        assert_eq!(s.runs.len(), 2);
        assert_eq!(s.bytes_transferred(), 300);
        assert_eq!(s.seek_count, 2);
    }

    #[test]
    fn empty_file_open_close_is_whole_file() {
        let mut b = TraceBuilder::new();
        let f = b.new_file_id();
        let u = b.new_user_id();
        let o = b.open(0, f, u, AccessMode::WriteOnly, 0, true);
        b.close(10, o, 0);
        let t = b.finish();
        let set = t.sessions();
        let s = &set.all()[0];
        assert!(s.is_whole_file_transfer());
        assert_eq!(s.bytes_transferred(), 0);
    }

    #[test]
    fn unclosed_open_kept_but_not_sequential() {
        let mut b = TraceBuilder::new();
        let f = b.new_file_id();
        let u = b.new_user_id();
        let _o = b.open(0, f, u, AccessMode::ReadOnly, 100, false);
        let t = b.finish();
        let set = t.sessions();
        assert_eq!(set.len(), 1);
        assert_eq!(set.unclosed(), 1);
        assert_eq!(set.complete().count(), 0);
        let s = &set.all()[0];
        assert!(!s.is_whole_file_transfer());
        assert!(!s.is_sequential());
        assert_eq!(s.open_duration_ms(), None);
    }

    #[test]
    fn orphan_events_are_anomalies() {
        let mut b = TraceBuilder::new();
        b.close(0, OpenId(999), 0);
        b.seek(10, OpenId(998), 0, 5);
        let t = b.finish();
        let set = t.sessions();
        assert_eq!(set.anomalies(), 2);
        assert!(set.is_empty());
    }

    #[test]
    fn position_regression_is_anomaly() {
        let mut b = TraceBuilder::new();
        let f = b.new_file_id();
        let u = b.new_user_id();
        let o = b.open(0, f, u, AccessMode::ReadOnly, 100, false);
        b.seek(10, o, 50, 60); // pos was 0, old_pos 50: run of 50.
        b.close(20, o, 40); // final_pos 40 < pos 60: regression.
        let t = b.finish();
        let set = t.sessions();
        assert_eq!(set.anomalies(), 1);
        assert_eq!(set.all()[0].bytes_transferred(), 50);
    }

    #[test]
    fn execs_are_collected() {
        let mut b = TraceBuilder::new();
        let f = b.new_file_id();
        let u = b.new_user_id();
        b.execve(100, f, u, 64_000);
        let t = b.finish();
        let set = t.sessions();
        assert_eq!(set.execs().len(), 1);
        assert_eq!(set.execs()[0].size, 64_000);
    }

    #[test]
    fn concurrent_opens_of_same_file_are_distinct() {
        let mut b = TraceBuilder::new();
        let f = b.new_file_id();
        let u = b.new_user_id();
        let o1 = b.open(0, f, u, AccessMode::ReadOnly, 1000, false);
        let o2 = b.open(5, f, u, AccessMode::ReadOnly, 1000, false);
        b.close(10, o1, 1000);
        b.close(20, o2, 500);
        let t = b.finish();
        let set = t.sessions();
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_bytes_transferred(), 1500);
    }
}
