//! Trace event types (Table II of the paper).

use crate::ids::{FileId, OpenId, Timestamp, UserId};

/// The access mode a file was opened with.
///
/// Table II does not list the mode explicitly, but the Section 5 analyses
/// classify every access as read-only, write-only, or read-write, so the
/// real tracer necessarily captured the open flags; we record them in the
/// `open` event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Opened for reading only (`O_RDONLY`).
    ReadOnly,
    /// Opened for writing only (`O_WRONLY`).
    WriteOnly,
    /// Opened for both reading and writing (`O_RDWR`).
    ReadWrite,
}

impl AccessMode {
    /// Returns `true` if data may be read under this mode.
    pub fn can_read(self) -> bool {
        matches!(self, AccessMode::ReadOnly | AccessMode::ReadWrite)
    }

    /// Returns `true` if data may be written under this mode.
    pub fn can_write(self) -> bool {
        matches!(self, AccessMode::WriteOnly | AccessMode::ReadWrite)
    }
}

/// The kind of a trace event, without its payload.
///
/// Used for the event-mix accounting of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// `open` of an existing file.
    Open,
    /// `open` that created the file (or truncated it to zero length on
    /// open, which the paper treats as creating new data).
    Create,
    /// `close`.
    Close,
    /// `lseek` — reposition within an open file.
    Seek,
    /// `unlink` — delete a file.
    Unlink,
    /// `truncate` — shorten a file.
    Truncate,
    /// `execve` — load a program.
    Execve,
}

impl EventKind {
    /// All event kinds, in Table III's row order.
    pub const ALL: [EventKind; 7] = [
        EventKind::Create,
        EventKind::Open,
        EventKind::Close,
        EventKind::Seek,
        EventKind::Unlink,
        EventKind::Truncate,
        EventKind::Execve,
    ];

    /// The lowercase name used by the text codec and reports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Open => "open",
            EventKind::Create => "create",
            EventKind::Close => "close",
            EventKind::Seek => "seek",
            EventKind::Unlink => "unlink",
            EventKind::Truncate => "truncate",
            EventKind::Execve => "execve",
        }
    }
}

/// One logged file system event with its payload (Table II).
///
/// Note what is *absent*: there are no read or write events. The
/// information below is sufficient to deduce the exact byte ranges
/// accessed, because file I/O between repositioning operations is
/// sequential.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A file was opened (and possibly created).
    Open {
        /// Unique identifier for this open call.
        open_id: OpenId,
        /// The file operated on.
        file_id: FileId,
        /// The invoking account.
        user_id: UserId,
        /// Read/write mode requested.
        mode: AccessMode,
        /// File size in bytes at the time of the open, after any
        /// truncate-on-open. A created file has size 0.
        size: u64,
        /// `true` if the open created the file or truncated it to zero
        /// length (counted as a `create` event in Table III).
        created: bool,
    },
    /// An open file was closed.
    Close {
        /// The open being closed.
        open_id: OpenId,
        /// Access position at close — the byte offset just past the last
        /// sequential transfer.
        final_pos: u64,
    },
    /// The access position of an open file was changed (`lseek`).
    Seek {
        /// The open being repositioned.
        open_id: OpenId,
        /// Position before the reposition (bounds the preceding
        /// sequential run).
        old_pos: u64,
        /// Position after the reposition.
        new_pos: u64,
    },
    /// A file was deleted.
    Unlink {
        /// The deleted file.
        file_id: FileId,
        /// The invoking account (an extension beyond Table II, kept so
        /// deletes mark users active in the Table IV analysis).
        user_id: UserId,
    },
    /// A file was shortened.
    Truncate {
        /// The truncated file.
        file_id: FileId,
        /// New length in bytes.
        new_len: u64,
        /// The invoking account (extension beyond Table II).
        user_id: UserId,
    },
    /// A program file was loaded for execution.
    Execve {
        /// The program file.
        file_id: FileId,
        /// The invoking account.
        user_id: UserId,
        /// Program file size in bytes (used to estimate paging I/O).
        size: u64,
    },
}

impl TraceEvent {
    /// The kind of this event, distinguishing `create` from plain `open`.
    pub fn kind(&self) -> EventKind {
        match self {
            TraceEvent::Open { created: true, .. } => EventKind::Create,
            TraceEvent::Open { created: false, .. } => EventKind::Open,
            TraceEvent::Close { .. } => EventKind::Close,
            TraceEvent::Seek { .. } => EventKind::Seek,
            TraceEvent::Unlink { .. } => EventKind::Unlink,
            TraceEvent::Truncate { .. } => EventKind::Truncate,
            TraceEvent::Execve { .. } => EventKind::Execve,
        }
    }

    /// The user this event is attributable to, if the event carries one.
    pub fn user_id(&self) -> Option<UserId> {
        match *self {
            TraceEvent::Open { user_id, .. }
            | TraceEvent::Unlink { user_id, .. }
            | TraceEvent::Truncate { user_id, .. }
            | TraceEvent::Execve { user_id, .. } => Some(user_id),
            TraceEvent::Close { .. } | TraceEvent::Seek { .. } => None,
        }
    }

    /// The open id this event refers to, if any.
    pub fn open_id(&self) -> Option<OpenId> {
        match *self {
            TraceEvent::Open { open_id, .. }
            | TraceEvent::Close { open_id, .. }
            | TraceEvent::Seek { open_id, .. } => Some(open_id),
            _ => None,
        }
    }

    /// The file id this event refers to, if it names a file directly.
    pub fn file_id(&self) -> Option<FileId> {
        match *self {
            TraceEvent::Open { file_id, .. }
            | TraceEvent::Unlink { file_id, .. }
            | TraceEvent::Truncate { file_id, .. }
            | TraceEvent::Execve { file_id, .. } => Some(file_id),
            TraceEvent::Close { .. } | TraceEvent::Seek { .. } => None,
        }
    }
}

/// A timestamped trace event — one line of the trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event occurred (10 ms granularity).
    pub time: Timestamp,
    /// The event payload.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Creates a record, quantizing `time_ms` to the tracer granularity.
    pub fn new(time_ms: u64, event: TraceEvent) -> Self {
        TraceRecord {
            time: Timestamp::from_ms(time_ms),
            event,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_event(created: bool) -> TraceEvent {
        TraceEvent::Open {
            open_id: OpenId(1),
            file_id: FileId(2),
            user_id: UserId(3),
            mode: AccessMode::ReadOnly,
            size: 100,
            created,
        }
    }

    #[test]
    fn kind_distinguishes_create_from_open() {
        assert_eq!(open_event(false).kind(), EventKind::Open);
        assert_eq!(open_event(true).kind(), EventKind::Create);
    }

    #[test]
    fn access_mode_capabilities() {
        assert!(AccessMode::ReadOnly.can_read());
        assert!(!AccessMode::ReadOnly.can_write());
        assert!(!AccessMode::WriteOnly.can_read());
        assert!(AccessMode::WriteOnly.can_write());
        assert!(AccessMode::ReadWrite.can_read());
        assert!(AccessMode::ReadWrite.can_write());
    }

    #[test]
    fn user_id_presence() {
        assert_eq!(open_event(false).user_id(), Some(UserId(3)));
        let close = TraceEvent::Close {
            open_id: OpenId(1),
            final_pos: 0,
        };
        assert_eq!(close.user_id(), None);
        assert_eq!(close.open_id(), Some(OpenId(1)));
        assert_eq!(close.file_id(), None);
    }

    #[test]
    fn record_quantizes_time() {
        let r = TraceRecord::new(1234, open_event(false));
        assert_eq!(r.time.as_ms(), 1230);
    }

    #[test]
    fn kind_names_are_unique() {
        let mut names: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::ALL.len());
    }
}
