//! A fast non-cryptographic hasher for the replay hot loops.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! DoS-resistant — properties none of the simulator's internal maps
//! need, and whose cost shows up directly in the replay inner loop:
//! every block access hashes a [`crate::FileId`]/block pair, every
//! open/close hashes an [`crate::OpenId`]. This module implements an
//! FxHash-style multiplicative hasher (the build environment is
//! offline, so no external crate): per 8-byte word the state is
//! rotated, xored with the word, and multiplied by an odd constant —
//! three ALU ops, no table, no key.
//!
//! Plain Fx leaves a trap for this workspace's key patterns: the
//! product's low bits depend only on the input's low bits, and fleet
//! traces stride ids by 2^40 per machine (DESIGN.md §14), which would
//! park every machine's ids in the same hash-table buckets. [`finish`]
//! therefore applies a xor-shift/multiply finalizer so high-order
//! entropy reaches the low bits the table indexes with.
//!
//! Use the [`FastMap`]/[`FastSet`] aliases; they are drop-in
//! `HashMap`/`HashSet` replacements for trusted (non-adversarial) keys
//! such as trace ids and block numbers. Iteration order differs from
//! the SipHash maps — as with any `HashMap`, no consumer may depend on
//! it, and the replay paths that switched are covered by bit-identity
//! tests against their pre-switch behavior.
//!
//! [`finish`]: std::hash::Hasher::finish

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplication constant: 2^64 / phi, forced odd, so the
/// multiply is a bijection on `u64`.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Finalizer constant (from splitmix64's second round).
const FINAL: u64 = 0x94d0_49bb_1331_11eb;

/// An FxHash-style streaming hasher with a mixing finalizer.
///
/// Not cryptographic, not keyed: use only for maps whose keys the
/// process itself generates (ids, block numbers, offsets).
#[derive(Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn word(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Xor-shift + multiply + xor-shift: spreads the product's
        // high-order entropy into the low bits a hash table indexes
        // with (see the module docs for why plain Fx is not enough).
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(FINAL);
        h ^ (h >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Derived `Hash` impls for the id types hit the fixed-width
        // paths below; this slice path only serves compound or string
        // keys, so simple chunking is fine.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" + "" and "a" + "b" differ.
            self.word(u64::from_le_bytes(tail) ^ ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.word(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.word(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.word(n as u64);
        self.word((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.word(n as u64);
    }
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`] — the replay hot-loop map.
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_distinct() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&(1u64, 2u64)), hash_of(&(2u64, 1u64)));
    }

    #[test]
    fn slice_path_separates_boundaries() {
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 3, 0][..]));
        assert_ne!(hash_of("ab"), hash_of("ba"));
    }

    /// The fleet id-stride pattern (DESIGN.md §14): ids spaced 2^40
    /// apart must not collapse into a handful of low-bit buckets.
    #[test]
    fn strided_keys_spread_across_low_bits() {
        let mut low12 = FastSet::default();
        for machine in 0..256u64 {
            low12.insert(hash_of(&(machine << 40)) & 0xFFF);
        }
        // 256 keys over 4096 buckets: perfect hashing collides rarely;
        // plain Fx would produce exactly 1 distinct value here.
        assert!(
            low12.len() > 200,
            "only {} distinct low-12 bits",
            low12.len()
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FastMap<u64, &str> = FastMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FastSet<(u32, u64)> = FastSet::default();
        assert!(s.insert((1, 2)) && !s.insert((1, 2)));
    }
}
