//! Columnar batched decoding: a [`RecordBlock`] of column vectors.
//!
//! The scalar codec ([`crate::codec::decode_from`]) turns bytes into one
//! [`TraceRecord`] at a time: every field is a separate bounds-checked
//! varint loop, and every record round-trips through a `Result` before
//! the consumer sees it. That shape is the replay bottleneck once the
//! simulators themselves are fast (see DESIGN.md §13).
//!
//! [`decode_block`] instead decodes a whole run of records — a full
//! archive chunk, or a fixed-size batch of a flat stream — into column
//! vectors in one pass over a zero-copy byte slice:
//!
//! * timestamps are materialized from the delta chain as absolute ticks,
//! * op codes (the wire tags) land in a contiguous tag column,
//! * payload varints land in a fixed-stride value column,
//! * per-record end offsets are kept so streaming readers can still
//!   account byte positions record by record.
//!
//! The inner varint reads go through [`get_varint_fast`], a
//! word-at-a-time reader that loads eight bytes at once, locates the
//! terminating byte with a single bit scan, and assembles the value
//! with branch-free shift-mask steps. Batched decode is
//! **bit-identical** to the scalar path —
//! same records, same errors at the same buffer offsets — which the
//! property tests in `tests/props.rs` enforce by feeding both decoders
//! random traces and adversarial byte strings. The scalar path stays
//! as the oracle.
//!
//! Consumers iterate the flat columns directly ([`RecordBlock::get`]
//! materializes one record view on demand, [`BlockRecords`] adapts a
//! block stream back into a record iterator), so the replay and
//! analysis loops never pay a per-record `next_record()` round-trip.

use crate::codec::{
    get_varint, DecodeError, MODE_RO, MODE_RW, MODE_WO, TAG_CLOSE, TAG_CREATE, TAG_EXECVE,
    TAG_OPEN, TAG_SEEK, TAG_TRUNCATE, TAG_UNLINK,
};
use crate::event::{AccessMode, TraceEvent, TraceRecord};
use crate::ids::{FileId, OpenId, Timestamp, UserId};

/// Payload columns per record: the widest event (`open`) carries five
/// varints, so the value column has a fixed stride of five.
const FIELDS: usize = 5;

/// Default record count per batch for flat-stream decoding: large
/// enough to amortize per-batch work, small enough that a batch of
/// columns stays cache-resident.
pub const BATCH_RECORDS: usize = 1024;

/// Reads an LEB128 varint a word at a time instead of a byte at a time.
///
/// Semantics are identical to [`get_varint`], including the error kind
/// and offset for every malformed input. The fast path loads eight
/// bytes as one little-endian word, finds the terminating byte with one
/// bit scan, and collapses the 7-bit groups with a three-level SWAR
/// tree — no per-byte branch chain, so the value computation
/// pipelines. Varints longer than eight bytes (values
/// needing more than 56 bits) and reads near the end of the buffer fall
/// back to the scalar reader, which owns the overflow and truncation
/// error reporting.
#[inline(always)]
pub fn get_varint_fast(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let p = *pos;
    let Some(window) = buf.get(p..p + 8) else {
        return get_varint(buf, pos);
    };
    let x = u64::from_le_bytes(window.try_into().expect("8-byte window"));
    // A clear high bit marks a varint's final byte.
    let stops = !x & 0x8080_8080_8080_8080;
    if stops == 0 {
        // 9- or 10-byte varint (or malformed/truncated): the scalar
        // reader handles the tail, including the exact overflow checks.
        return get_varint(buf, pos);
    }
    // 1..=8 bytes; keep every payload bit up to and including the stop
    // byte's (clear) continuation bit.
    let n = (stops.trailing_zeros() >> 3) as usize + 1;
    let stop_bit = stops & stops.wrapping_neg();
    let y = x & (stop_bit.wrapping_shl(1).wrapping_sub(1));
    *pos = p + n;
    Ok(collapse7(y))
}

/// Collapses up to eight LEB128 bytes held in `y` (little-endian, bits
/// above the final byte already masked off) into the decoded value.
/// A three-level SWAR tree: adjacent 7-bit groups merge into 14-bit
/// lanes, then 28-bit, then the final 56-bit value — twelve register
/// ops total, continuation bits masked away at the first level.
#[inline(always)]
fn collapse7(y: u64) -> u64 {
    let y = (y & 0x007f_007f_007f_007f) | ((y & 0x7f00_7f00_7f00_7f00) >> 1);
    let y = (y & 0x0000_3fff_0000_3fff) | ((y & 0x3fff_0000_3fff_0000) >> 2);
    (y & 0x0fff_ffff) | ((y & 0x0fff_ffff_0000_0000) >> 4)
}

/// A batch of decoded records in columnar (structure-of-arrays) form.
///
/// Produced by [`decode_block`]; reusable across batches — decoding
/// clears and refills the columns without reallocating once the block
/// has reached its steady-state capacity.
#[derive(Debug, Default, Clone)]
pub struct RecordBlock {
    /// Absolute timestamps in 10 ms ticks, delta chain already resolved.
    ticks: Vec<u64>,
    /// Wire tags (op codes): `TAG_OPEN`..=`TAG_EXECVE`.
    tags: Vec<u8>,
    /// End offset of each record, relative to the decoded buffer.
    ends: Vec<u32>,
    /// Payload varints at a fixed stride of [`FIELDS`] per record, in
    /// wire order; unused trailing slots of a record are zero.
    vals: Vec<u64>,
}

impl RecordBlock {
    /// Creates an empty block.
    pub fn new() -> Self {
        RecordBlock::default()
    }

    /// Creates an empty block with room for `records` records.
    pub fn with_capacity(records: usize) -> Self {
        RecordBlock {
            ticks: Vec::with_capacity(records),
            tags: Vec::with_capacity(records),
            ends: Vec::with_capacity(records),
            vals: Vec::with_capacity(records * FIELDS),
        }
    }

    /// Reserves room for `records` more records in every column.
    pub fn reserve(&mut self, records: usize) {
        self.ticks.reserve(records);
        self.tags.reserve(records);
        self.ends.reserve(records);
        self.vals.reserve(records * FIELDS);
    }

    /// Empties the columns, keeping their capacity.
    pub fn clear(&mut self) {
        self.ticks.clear();
        self.tags.clear();
        self.ends.clear();
        self.vals.clear();
    }

    /// Number of records in the block.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// `true` if the block holds no records.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// The timestamp column: absolute 10 ms ticks per record.
    pub fn ticks(&self) -> &[u64] {
        &self.ticks
    }

    /// The op-code column: one wire tag per record (see the `TAG_*`
    /// constants in [`crate::codec`]).
    pub fn tags(&self) -> &[u8] {
        &self.tags
    }

    /// Counts records per [`crate::EventKind`], indexed in
    /// [`crate::EventKind::ALL`] order (create, open, close, seek,
    /// unlink, truncate, execve). A straight pass over the tag column —
    /// no record materialization — so inspection tools can histogram a
    /// chunk at column-scan speed.
    pub fn kind_counts(&self) -> [u64; 7] {
        let mut counts = [0u64; 7];
        for &tag in &self.tags {
            let i = match tag {
                TAG_CREATE => 0,
                TAG_OPEN => 1,
                TAG_CLOSE => 2,
                TAG_SEEK => 3,
                TAG_UNLINK => 4,
                TAG_TRUNCATE => 5,
                TAG_EXECVE => 6,
                other => unreachable!("decode_block only stores validated tags, found {other}"),
            };
            counts[i] += 1;
        }
        counts
    }

    /// End offset of record `i`, relative to the buffer it was decoded
    /// from. Streaming readers use consecutive ends to attribute bytes
    /// to records.
    pub fn end_offset(&self, i: usize) -> usize {
        self.ends[i] as usize
    }

    /// The payload columns of record `i`: its varints in wire order,
    /// padded with zeros to the fixed stride.
    pub fn fields(&self, i: usize) -> &[u64] {
        &self.vals[i * FIELDS..i * FIELDS + FIELDS]
    }

    /// Materializes record `i` from the columns.
    ///
    /// Infallible: every field was validated during [`decode_block`].
    pub fn get(&self, i: usize) -> TraceRecord {
        let v = self.fields(i);
        let tag = self.tags[i];
        let event = match tag {
            TAG_OPEN | TAG_CREATE => TraceEvent::Open {
                open_id: OpenId(v[0]),
                file_id: FileId(v[1]),
                user_id: UserId(v[2] as u32),
                mode: match v[3] {
                    MODE_RO => AccessMode::ReadOnly,
                    MODE_WO => AccessMode::WriteOnly,
                    _ => AccessMode::ReadWrite,
                },
                size: v[4],
                created: tag == TAG_CREATE,
            },
            TAG_CLOSE => TraceEvent::Close {
                open_id: OpenId(v[0]),
                final_pos: v[1],
            },
            TAG_SEEK => TraceEvent::Seek {
                open_id: OpenId(v[0]),
                old_pos: v[1],
                new_pos: v[2],
            },
            TAG_UNLINK => TraceEvent::Unlink {
                file_id: FileId(v[0]),
                user_id: UserId(v[1] as u32),
            },
            TAG_TRUNCATE => TraceEvent::Truncate {
                file_id: FileId(v[0]),
                new_len: v[1],
                user_id: UserId(v[2] as u32),
            },
            TAG_EXECVE => TraceEvent::Execve {
                file_id: FileId(v[0]),
                user_id: UserId(v[1] as u32),
                size: v[2],
            },
            other => unreachable!("decode_block only stores validated tags, found {other}"),
        };
        TraceRecord {
            time: Timestamp::from_ticks(self.ticks[i]),
            event,
        }
    }

    /// Appends every record to `out` in order.
    pub fn append_to(&self, out: &mut Vec<TraceRecord>) {
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(self.get(i));
        }
    }

    /// Materializes the whole block.
    pub fn to_records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.len());
        self.append_to(&mut out);
        out
    }

    /// Iterates the block's records, materializing each on demand.
    pub fn iter(&self) -> impl Iterator<Item = TraceRecord> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

/// Decodes records from `buf` at `*pos` into `out` (cleared first),
/// stopping before a record that would start at or past `start_limit`,
/// or once `max_records` have been decoded. `prev_ticks` seeds the
/// timestamp delta chain; the return value is the last record's tick
/// count, for chaining into the next batch.
///
/// On error the block retains every record decoded before the failure,
/// `*pos` is left at the start of the failing record, and the error
/// carries buffer-relative positions (`records: 0`), exactly like the
/// scalar [`crate::codec::decode_from`] — callers with stream context
/// rewrite them to absolute offsets.
pub fn decode_block(
    buf: &[u8],
    pos: &mut usize,
    prev_ticks: u64,
    start_limit: usize,
    max_records: usize,
    out: &mut RecordBlock,
) -> Result<u64, DecodeError> {
    out.clear();
    // Records must *start* inside the buffer, so clamping the limit
    // changes nothing for in-bounds callers and lets the optimizer see
    // that the tag byte read below can never be out of range.
    let start_limit = start_limit.min(buf.len());
    let mut ticks = prev_ticks;
    while *pos < start_limit && out.len() < max_records {
        let rec_start = *pos;
        match decode_one(buf, pos, ticks, out) {
            Ok(t) => ticks = t,
            Err(e) => {
                // decode_one may have written a partial value row before
                // failing; drop it so the columns stay consistent.
                out.vals.truncate(out.len() * FIELDS);
                *pos = rec_start;
                return Err(e);
            }
        }
    }
    Ok(ticks)
}

/// Decodes one record into the columns. Field order, validation order,
/// and error positions mirror the scalar `decode_from` exactly.
///
/// On failure a partial value row may be left in `out.vals`; the caller
/// ([`decode_block`]) truncates it back, keeping the cleanup off the
/// hot path.
#[inline(always)]
fn decode_one(
    buf: &[u8],
    pos: &mut usize,
    prev_ticks: u64,
    out: &mut RecordBlock,
) -> Result<u64, DecodeError> {
    let &tag = buf.get(*pos).ok_or(DecodeError::Truncated {
        offset: *pos as u64,
        records: 0,
    })?;
    *pos += 1;
    if let Some(ticks) = decode_one_wide(buf, pos, tag, prev_ticks, out)? {
        return Ok(ticks);
    }
    decode_one_slow(buf, pos, tag, prev_ticks, out)
}

/// The per-varint decode loop: handles the records the bit-parallel
/// fast path declines (buffer tail, nine-byte-plus varints, unknown
/// tags) and owns all the malformed-input error reporting. Kept out of
/// line so the hot loop stays small.
#[inline(never)]
fn decode_one_slow(
    buf: &[u8],
    pos: &mut usize,
    tag: u8,
    prev_ticks: u64,
    out: &mut RecordBlock,
) -> Result<u64, DecodeError> {
    let dt = get_varint_fast(buf, pos)?;
    // Saturate like the scalar decoder: a corrupt delta must not wrap
    // the clock (or panic in debug builds).
    let ticks = prev_ticks.saturating_add(dt);
    // Write fields straight into the value column — the zero-filled row
    // is the stride padding, so no per-record scratch copy is needed.
    let base = out.vals.len();
    out.vals.resize(base + FIELDS, 0);
    let v: &mut [u64; FIELDS] = (&mut out.vals[base..base + FIELDS])
        .try_into()
        .expect("row is FIELDS wide");
    match tag {
        TAG_OPEN | TAG_CREATE => {
            v[0] = get_varint_fast(buf, pos)?;
            v[1] = get_varint_fast(buf, pos)?;
            v[2] = get_varint_fast(buf, pos)?;
            v[3] = get_varint_fast(buf, pos)?;
            if v[3] > MODE_RW {
                return Err(DecodeError::BadField("access mode"));
            }
            v[4] = get_varint_fast(buf, pos)?;
            if v[2] > u64::from(u32::MAX) {
                return Err(DecodeError::BadField("user id"));
            }
        }
        TAG_CLOSE => {
            v[0] = get_varint_fast(buf, pos)?;
            v[1] = get_varint_fast(buf, pos)?;
        }
        TAG_SEEK => {
            v[0] = get_varint_fast(buf, pos)?;
            v[1] = get_varint_fast(buf, pos)?;
            v[2] = get_varint_fast(buf, pos)?;
        }
        TAG_UNLINK => {
            v[0] = get_varint_fast(buf, pos)?;
            v[1] = get_varint_fast(buf, pos)?;
            if v[1] > u64::from(u32::MAX) {
                return Err(DecodeError::BadField("user id"));
            }
        }
        TAG_TRUNCATE => {
            v[0] = get_varint_fast(buf, pos)?;
            v[1] = get_varint_fast(buf, pos)?;
            v[2] = get_varint_fast(buf, pos)?;
            if v[2] > u64::from(u32::MAX) {
                return Err(DecodeError::BadField("user id"));
            }
        }
        TAG_EXECVE => {
            v[0] = get_varint_fast(buf, pos)?;
            v[1] = get_varint_fast(buf, pos)?;
            v[2] = get_varint_fast(buf, pos)?;
            if v[1] > u64::from(u32::MAX) {
                return Err(DecodeError::BadField("user id"));
            }
        }
        other => return Err(DecodeError::BadTag(other)),
    }
    out.tags.push(tag);
    out.ticks.push(ticks);
    out.ends.push(*pos as u32);
    Ok(ticks)
}

/// Extracts the next varint from the loaded window `x`, given its stop
/// mask `s` (which must have a bit for it) and the byte offset `start`
/// of its first byte. Register ops only — no load, no branch.
#[inline(always)]
fn take_varint(x: u64, s: &mut u64, start: &mut usize) -> u64 {
    let end = (s.trailing_zeros() >> 3) as usize;
    *s &= s.wrapping_sub(1);
    let len = end + 1 - *start;
    let y = (x >> (8 * *start)) & (u64::MAX >> (64 - 8 * len));
    *start = end + 1;
    collapse7(y)
}

/// High (continuation) bit of every byte in a window.
const CONT_BITS: u64 = 0x8080_8080_8080_8080;

/// Bit-parallel fast path: when every varint of a record terminates
/// inside one 8-byte window (two windows for open/create, which carry
/// six varints), the whole record decodes from wide loads — one bit
/// scan per varint instead of one dependent load per varint, so the
/// extractions pipeline. Returns `Ok(None)` with `*pos` untouched when
/// a window is short on bytes or stop bits, or the tag is unknown; the
/// caller's per-varint loop then owns the decode, keeping all error
/// reporting defined in one place. A window with three or more stops
/// caps each varint at six bytes, so overflow is impossible here.
#[inline(always)]
fn decode_one_wide(
    buf: &[u8],
    pos: &mut usize,
    tag: u8,
    prev_ticks: u64,
    out: &mut RecordBlock,
) -> Result<Option<u64>, DecodeError> {
    let p = *pos;
    let Some(window) = buf.get(p..p + 8) else {
        return Ok(None);
    };
    let x = u64::from_le_bytes(window.try_into().expect("8-byte window"));
    let mut s = !x & CONT_BITS;
    let mut start = 0usize;
    let mut v = [0u64; 6];
    // One straight-line arm per tag: constant varint counts, so every
    // extraction unrolls. Validation mirrors the scalar order (`v[0]`
    // is the timestamp delta, so field k sits at `v[k + 1]`); having
    // decoded past a bad field cannot change the outcome, because every
    // remaining varint in the window is well-formed, so the scalar path
    // reaches the same check as its first error.
    match tag {
        TAG_CLOSE | TAG_UNLINK => {
            if s.count_ones() < 3 {
                return Ok(None);
            }
            v[0] = take_varint(x, &mut s, &mut start);
            v[1] = take_varint(x, &mut s, &mut start);
            v[2] = take_varint(x, &mut s, &mut start);
            if tag == TAG_UNLINK && v[2] > u64::from(u32::MAX) {
                return Err(DecodeError::BadField("user id"));
            }
        }
        TAG_SEEK | TAG_TRUNCATE | TAG_EXECVE => {
            if s.count_ones() < 4 {
                return Ok(None);
            }
            v[0] = take_varint(x, &mut s, &mut start);
            v[1] = take_varint(x, &mut s, &mut start);
            v[2] = take_varint(x, &mut s, &mut start);
            v[3] = take_varint(x, &mut s, &mut start);
            if tag != TAG_SEEK {
                let user = if tag == TAG_TRUNCATE { v[3] } else { v[2] };
                if user > u64::from(u32::MAX) {
                    return Err(DecodeError::BadField("user id"));
                }
            }
        }
        TAG_OPEN | TAG_CREATE => {
            // Delta plus the two ids from the first window; user, mode,
            // and size from a second window starting right after them.
            if s.count_ones() < 3 {
                return Ok(None);
            }
            v[0] = take_varint(x, &mut s, &mut start);
            v[1] = take_varint(x, &mut s, &mut start);
            v[2] = take_varint(x, &mut s, &mut start);
            let q = p + start;
            let Some(window) = buf.get(q..q + 8) else {
                return Ok(None);
            };
            let x2 = u64::from_le_bytes(window.try_into().expect("8-byte window"));
            let mut s2 = !x2 & CONT_BITS;
            if s2.count_ones() < 3 {
                return Ok(None);
            }
            let mut start2 = 0usize;
            v[3] = take_varint(x2, &mut s2, &mut start2);
            v[4] = take_varint(x2, &mut s2, &mut start2);
            v[5] = take_varint(x2, &mut s2, &mut start2);
            start += start2;
            if v[4] > MODE_RW {
                return Err(DecodeError::BadField("access mode"));
            }
            if v[3] > u64::from(u32::MAX) {
                return Err(DecodeError::BadField("user id"));
            }
        }
        _ => return Ok(None),
    }
    let ticks = prev_ticks.saturating_add(v[0]);
    // v[nv..] is still zero, so v[1..6] is the FIELDS-wide padded row.
    out.vals.extend_from_slice(&v[1..1 + FIELDS]);
    *pos = p + start;
    out.tags.push(tag);
    out.ticks.push(ticks);
    out.ends.push(*pos as u32);
    Ok(Some(ticks))
}

/// Flattens a stream of blocks into a stream of records.
///
/// The adapter the sweep engine and analyzers use to consume
/// block-producing sources: each block's columns are walked in place,
/// records materialized one view at a time.
pub struct BlockRecords<I> {
    blocks: I,
    current: RecordBlock,
    at: usize,
}

impl<I: Iterator<Item = RecordBlock>> BlockRecords<I> {
    /// Wraps a block iterator.
    pub fn new(blocks: I) -> Self {
        BlockRecords {
            blocks,
            current: RecordBlock::new(),
            at: 0,
        }
    }
}

impl<I: Iterator<Item = RecordBlock>> Iterator for BlockRecords<I> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.at < self.current.len() {
                let rec = self.current.get(self.at);
                self.at += 1;
                return Some(rec);
            }
            self.current = self.blocks.next()?;
            self.at = 0;
        }
    }
}

/// A block producer that refills a caller-owned [`RecordBlock`] in
/// place — the allocation-free twin of `Iterator<Item = RecordBlock>`.
///
/// Where an owning iterator hands out a freshly allocated block per
/// chunk, a `FillBlock` source writes into (or swaps with) the block
/// the consumer already holds, so a steady-state decode → replay loop
/// recycles the same column buffers for the whole stream. Sources with
/// a corruption policy apply it internally (skip and continue, or stop
/// early) and expose what happened through their own reporting API;
/// `fill_next` itself only says whether another block arrived.
pub trait FillBlock {
    /// Replaces `out`'s contents with the next block of the stream.
    /// Returns `false` when the stream is exhausted (or the source
    /// stopped on an error per its policy), leaving `out` unspecified.
    fn fill_next(&mut self, out: &mut RecordBlock) -> bool;
}

/// Any owning block iterator is a [`FillBlock`] source: the incoming
/// block replaces `out` wholesale (the allocation, if any, is the
/// producer's).
impl<I: Iterator<Item = RecordBlock>> FillBlock for I {
    fn fill_next(&mut self, out: &mut RecordBlock) -> bool {
        match self.next() {
            Some(b) => {
                *out = b;
                true
            }
            None => false,
        }
    }
}

/// Flattens a [`FillBlock`] source into a record iterator, reusing one
/// [`RecordBlock`] for the entire stream.
///
/// This is what `cachesim::sweep::run_block_source` threads its record
/// streams through: each refill overwrites the previous chunk's
/// columns in place, so a multi-gigabyte archive replays with a single
/// block's worth of column buffers no matter how many chunks it has.
pub struct FillRecords<S> {
    source: S,
    current: RecordBlock,
    at: usize,
}

impl<S: FillBlock> FillRecords<S> {
    /// Wraps a refillable block source.
    pub fn new(source: S) -> Self {
        FillRecords {
            source,
            current: RecordBlock::new(),
            at: 0,
        }
    }

    /// The underlying source (e.g. to read a recovery report after the
    /// stream ends).
    pub fn source(&self) -> &S {
        &self.source
    }
}

impl<S: FillBlock> Iterator for FillRecords<S> {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.at < self.current.len() {
                let rec = self.current.get(self.at);
                self.at += 1;
                return Some(rec);
            }
            if !self.source.fill_next(&mut self.current) {
                return None;
            }
            self.at = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_from, encode_into, put_varint};

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::new(
                0,
                TraceEvent::Open {
                    open_id: OpenId(1),
                    file_id: FileId(10),
                    user_id: UserId(5),
                    mode: AccessMode::ReadOnly,
                    size: 4096,
                    created: false,
                },
            ),
            TraceRecord::new(
                50,
                TraceEvent::Seek {
                    open_id: OpenId(1),
                    old_pos: 1024,
                    new_pos: 2048,
                },
            ),
            TraceRecord::new(
                120,
                TraceEvent::Close {
                    open_id: OpenId(1),
                    final_pos: 4096,
                },
            ),
            TraceRecord::new(
                200,
                TraceEvent::Truncate {
                    file_id: FileId(12),
                    new_len: 100,
                    user_id: UserId(6),
                },
            ),
            TraceRecord::new(
                210,
                TraceEvent::Unlink {
                    file_id: FileId(11),
                    user_id: UserId(5),
                },
            ),
            TraceRecord::new(
                1000,
                TraceEvent::Execve {
                    file_id: FileId(20),
                    user_id: UserId(5),
                    size: 90_000,
                },
            ),
        ]
    }

    fn encode(records: &[TraceRecord]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for r in records {
            prev = encode_into(&mut buf, r, prev);
        }
        buf
    }

    #[test]
    fn block_roundtrips_sample() {
        let records = sample_records();
        let buf = encode(&records);
        let mut block = RecordBlock::new();
        let mut pos = 0;
        let last =
            decode_block(&buf, &mut pos, 0, buf.len(), usize::MAX, &mut block).expect("decodes");
        assert_eq!(pos, buf.len());
        assert_eq!(block.to_records(), records);
        assert_eq!(last, records.last().unwrap().time.as_ticks());
        // End offsets partition the buffer.
        assert_eq!(block.end_offset(block.len() - 1), buf.len());
        for i in 1..block.len() {
            assert!(block.end_offset(i - 1) < block.end_offset(i));
        }
    }

    #[test]
    fn kind_counts_match_materialized_records() {
        let records = sample_records();
        let buf = encode(&records);
        let mut block = RecordBlock::new();
        let mut pos = 0;
        decode_block(&buf, &mut pos, 0, buf.len(), usize::MAX, &mut block).expect("decodes");
        let counts = block.kind_counts();
        for (i, kind) in crate::EventKind::ALL.into_iter().enumerate() {
            let expected = records.iter().filter(|r| r.event.kind() == kind).count() as u64;
            assert_eq!(counts[i], expected, "{kind:?}");
        }
        assert_eq!(counts.iter().sum::<u64>(), records.len() as u64);
    }

    #[test]
    fn max_records_and_start_limit_bound_the_batch() {
        let records = sample_records();
        let buf = encode(&records);
        let mut block = RecordBlock::new();
        let mut pos = 0;
        let mid = decode_block(&buf, &mut pos, 0, buf.len(), 2, &mut block).expect("decodes");
        assert_eq!(block.len(), 2);
        // Chaining from the returned ticks resumes exactly.
        let mut rest = RecordBlock::new();
        decode_block(&buf, &mut pos, mid, buf.len(), usize::MAX, &mut rest).expect("decodes");
        let mut all = block.to_records();
        all.extend(rest.to_records());
        assert_eq!(all, records);
        // start_limit at 0 decodes nothing.
        let mut pos = 0;
        decode_block(&buf, &mut pos, 0, 0, usize::MAX, &mut block).expect("empty ok");
        assert!(block.is_empty());
    }

    #[test]
    fn error_keeps_prefix_and_positions_match_scalar() {
        let records = sample_records();
        let mut buf = encode(&records);
        buf.pop(); // Chop the last record.
        let mut block = RecordBlock::new();
        let mut pos = 0;
        let err = decode_block(&buf, &mut pos, 0, buf.len(), usize::MAX, &mut block)
            .expect_err("truncated");
        assert_eq!(block.len(), records.len() - 1);
        assert_eq!(block.to_records(), records[..records.len() - 1]);
        // The scalar oracle fails at the same buffer position.
        let mut spos = 0usize;
        let mut prev = 0u64;
        let scalar_err = loop {
            match decode_from(&buf, &mut spos, prev) {
                Ok((_, t)) => prev = t,
                Err(e) => break e,
            }
        };
        assert_eq!(format!("{err:?}"), format!("{scalar_err:?}"));
        // pos is left at the failing record's start.
        assert_eq!(pos, block.end_offset(block.len() - 1));
    }

    #[test]
    fn fast_varint_matches_scalar_on_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX, 1 << 63] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            buf.resize(buf.len().max(12), 0); // Ensure the fast path runs.
            let mut pos = 0;
            assert_eq!(get_varint_fast(&buf, &mut pos).unwrap(), v);
            let mut spos = 0;
            assert_eq!(get_varint(&buf, &mut spos).unwrap(), v);
            assert_eq!(pos, spos, "value {v}");
        }
    }

    #[test]
    fn overlong_varints_are_rejected_by_both_readers() {
        // Ten continuation bytes: the value would shift past 64 bits.
        let eleven = [0x80u8; 10]
            .iter()
            .copied()
            .chain([0x01])
            .collect::<Vec<u8>>();
        // A tenth byte with value bits above bit 63 silently wrapped
        // before the fix; now both readers reject it.
        let mut wrap = vec![0x80u8; 9];
        wrap.push(0x02);
        // 0x81 at the tenth byte continues past it: malformed if an
        // eleventh byte exists, truncated at offset 10 otherwise.
        let mut cont = vec![0x80u8; 9];
        cont.push(0x81);
        for bytes in [&eleven, &wrap] {
            for reader in [get_varint, get_varint_fast as fn(&[u8], &mut usize) -> _] {
                let mut pos = 0;
                assert!(
                    matches!(reader(bytes, &mut pos), Err(DecodeError::BadVarint)),
                    "bytes {bytes:?}"
                );
            }
        }
        for reader in [get_varint, get_varint_fast as fn(&[u8], &mut usize) -> _] {
            let mut pos = 0;
            assert!(matches!(
                reader(&cont, &mut pos),
                Err(DecodeError::Truncated { offset: 10, .. })
            ));
            let mut with_more = cont.clone();
            with_more.push(0x00);
            let mut pos = 0;
            assert!(matches!(
                reader(&with_more, &mut pos),
                Err(DecodeError::BadVarint)
            ));
        }
        // The maximal *valid* ten-byte varint still decodes.
        let mut max = vec![0xffu8; 9];
        max.push(0x01);
        for reader in [get_varint, get_varint_fast as fn(&[u8], &mut usize) -> _] {
            let mut pos = 0;
            assert_eq!(reader(&max, &mut pos).unwrap(), u64::MAX);
            assert_eq!(pos, 10);
        }
    }

    #[test]
    fn block_records_flattens_a_block_stream() {
        let records = sample_records();
        let buf = encode(&records);
        let mut blocks = Vec::new();
        let mut pos = 0;
        let mut prev = 0u64;
        while pos < buf.len() {
            let mut b = RecordBlock::new();
            prev = decode_block(&buf, &mut pos, prev, buf.len(), 2, &mut b).expect("decodes");
            blocks.push(b);
        }
        assert!(blocks.len() >= 3);
        let got: Vec<TraceRecord> = BlockRecords::new(blocks.into_iter()).collect();
        assert_eq!(got, records);
    }
}
