//! Whole-trace summary statistics (Table III of the paper).

use std::fmt;

use crate::event::EventKind;
use crate::trace::Trace;

/// Overall statistics for one trace, in the shape of Table III.
///
/// # Examples
///
/// ```
/// use fstrace::{AccessMode, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// let f = b.new_file_id();
/// let u = b.new_user_id();
/// let o = b.open(0, f, u, AccessMode::ReadOnly, 1_000_000, false);
/// b.close(3_600_000, o, 1_000_000);
/// let s = b.finish().summary();
/// assert_eq!(s.records, 2);
/// assert!((s.duration_hours - 1.0).abs() < 1e-9);
/// assert_eq!(s.total_bytes_transferred, 1_000_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Trace duration in hours.
    pub duration_hours: f64,
    /// Number of trace records.
    pub records: u64,
    /// Size of the binary trace file in bytes.
    pub trace_file_bytes: u64,
    /// Total data transferred to/from files in bytes (billed per the
    /// paper's next-close-or-seek rule).
    pub total_bytes_transferred: u64,
    /// Event counts in [`EventKind::ALL`] order.
    pub event_counts: [u64; 7],
    /// Mean file opens (including creates) per second over the trace.
    pub opens_per_second: f64,
    /// Peak opens per second over any 10-minute interval.
    pub peak_opens_per_second: f64,
}

impl TraceSummary {
    /// Computes the summary for a trace.
    pub fn compute(trace: &Trace) -> Self {
        let mut event_counts = [0u64; 7];
        let mut open_windows: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        const WINDOW_MS: u64 = 600_000; // 10 minutes.
        for rec in trace.records() {
            let kind = rec.event.kind();
            let idx = EventKind::ALL
                .iter()
                .position(|&k| k == kind)
                .expect("kind in ALL");
            event_counts[idx] += 1;
            if matches!(kind, EventKind::Open | EventKind::Create) {
                *open_windows
                    .entry(rec.time.as_ms() / WINDOW_MS)
                    .or_insert(0) += 1;
            }
        }
        let duration_ms = trace.duration_ms();
        let duration_hours = duration_ms as f64 / 3_600_000.0;
        let opens: u64 = event_counts[0] + event_counts[1];
        let opens_per_second = if duration_ms == 0 {
            0.0
        } else {
            opens as f64 / (duration_ms as f64 / 1000.0)
        };
        let peak_opens_per_second = open_windows
            .values()
            .map(|&n| n as f64 / (WINDOW_MS as f64 / 1000.0))
            .fold(0.0, f64::max);
        TraceSummary {
            duration_hours,
            records: trace.len() as u64,
            trace_file_bytes: trace.binary_len() as u64,
            total_bytes_transferred: trace.sessions().total_bytes_transferred(),
            event_counts,
            opens_per_second,
            peak_opens_per_second,
        }
    }

    /// Count for one event kind.
    pub fn count(&self, kind: EventKind) -> u64 {
        let idx = EventKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind in ALL");
        self.event_counts[idx]
    }

    /// Fraction of all records that are of `kind`, in `[0, 1]`.
    pub fn fraction(&self, kind: EventKind) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.count(kind) as f64 / self.records as f64
        }
    }

    /// Total megabytes transferred (10^6 bytes, as the paper reports).
    pub fn total_mbytes_transferred(&self) -> f64 {
        self.total_bytes_transferred as f64 / 1e6
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Duration (hours)                 {:>10.1}",
            self.duration_hours
        )?;
        writeln!(f, "Number of trace records          {:>10}", self.records)?;
        writeln!(
            f,
            "Size of trace file (Mbytes)      {:>10.1}",
            self.trace_file_bytes as f64 / 1e6
        )?;
        writeln!(
            f,
            "Total data transferred (Mbytes)  {:>10.1}",
            self.total_mbytes_transferred()
        )?;
        for kind in EventKind::ALL {
            writeln!(
                f,
                "{:<8} events                   {:>10} ({:.1}%)",
                kind.name(),
                self.count(kind),
                100.0 * self.fraction(kind)
            )?;
        }
        write!(
            f,
            "opens/sec avg {:.2}, peak (10 min) {:.2}",
            self.opens_per_second, self.peak_opens_per_second
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AccessMode;
    use crate::trace::TraceBuilder;

    fn build() -> TraceSummary {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let f1 = b.new_file_id();
        let o1 = b.open(0, f1, u, AccessMode::ReadOnly, 100, false);
        b.close(100, o1, 100);
        let f2 = b.new_file_id();
        let o2 = b.open(200, f2, u, AccessMode::WriteOnly, 0, true);
        b.seek(250, o2, 10, 20);
        b.close(300, o2, 30);
        b.truncate(400, f2, 0, u);
        b.unlink(500, f2, u);
        b.execve(3_600_000, f1, u, 100);
        b.finish().summary()
    }

    #[test]
    fn event_counts() {
        let s = build();
        assert_eq!(s.count(EventKind::Open), 1);
        assert_eq!(s.count(EventKind::Create), 1);
        assert_eq!(s.count(EventKind::Close), 2);
        assert_eq!(s.count(EventKind::Seek), 1);
        assert_eq!(s.count(EventKind::Truncate), 1);
        assert_eq!(s.count(EventKind::Unlink), 1);
        assert_eq!(s.count(EventKind::Execve), 1);
        assert_eq!(s.records, 8);
    }

    #[test]
    fn fractions_sum_to_one() {
        let s = build();
        let total: f64 = EventKind::ALL.iter().map(|&k| s.fraction(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bytes_transferred_uses_billing_rule() {
        let s = build();
        // Session 1: whole 100-byte read. Session 2: run 0..10 (seek) and
        // run 20..30 (close) = 20 bytes.
        assert_eq!(s.total_bytes_transferred, 120);
    }

    #[test]
    fn duration_and_rates() {
        let s = build();
        assert!((s.duration_hours - 1.0).abs() < 1e-9);
        assert!(s.opens_per_second > 0.0);
        assert!(s.peak_opens_per_second >= s.opens_per_second);
    }

    #[test]
    fn empty_trace_summary() {
        let s = Trace::default().summary();
        assert_eq!(s.records, 0);
        assert_eq!(s.fraction(EventKind::Open), 0.0);
        assert_eq!(s.opens_per_second, 0.0);
    }

    #[test]
    fn display_mentions_all_kinds() {
        let text = build().to_string();
        for kind in EventKind::ALL {
            assert!(text.contains(kind.name()), "missing {}", kind.name());
        }
    }
}
