//! `tracefmt`: inspect and convert trace files.
//!
//! ```text
//! tracefmt dump    FILE        print a binary trace as text
//! tracefmt pack    FILE OUT    convert a text trace to binary
//! tracefmt summary FILE        print Table III-style statistics
//! tracefmt sessions FILE       print reconstructed open-close sessions
//! ```
//!
//! Binary traces are detected by the `FSTR` magic; anything else is
//! parsed as text.

use std::fs;
use std::io::Write;
use std::process::exit;

use fstrace::Trace;

fn load(path: &str) -> Trace {
    let bytes = fs::read(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    if bytes.starts_with(b"FSTR") {
        Trace::from_binary(&bytes).unwrap_or_else(|e| die(&format!("decode {path}: {e}")))
    } else {
        let text = String::from_utf8(bytes).unwrap_or_else(|_| die("trace is not UTF-8 text"));
        Trace::from_text(&text).unwrap_or_else(|e| die(&format!("parse {path}: {e}")))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, file] if cmd == "dump" => {
            let trace = load(file);
            let stdout = std::io::stdout();
            // A closed pipe (`| head`) is a normal way to stop reading.
            let _ = trace.write_text(stdout.lock());
        }
        [cmd, file, out] if cmd == "pack" => {
            let trace = load(file);
            let bytes = trace.to_binary();
            fs::File::create(out)
                .and_then(|mut f| f.write_all(&bytes))
                .unwrap_or_else(|e| die(&format!("write {out}: {e}")));
            eprintln!(
                "{} records, {} bytes ({:.1} bytes/record)",
                trace.len(),
                bytes.len(),
                bytes.len() as f64 / trace.len().max(1) as f64
            );
        }
        [cmd, file] if cmd == "summary" => {
            let trace = load(file);
            println!("{}", trace.summary());
        }
        [cmd, file] if cmd == "sessions" => {
            let trace = load(file);
            let sessions = trace.sessions();
            println!(
                "{} sessions ({} unclosed, {} anomalies), {} bytes transferred",
                sessions.len(),
                sessions.unclosed(),
                sessions.anomalies(),
                sessions.total_bytes_transferred()
            );
            let stdout = std::io::stdout();
            let mut w = stdout.lock();
            for s in sessions.complete() {
                // Stop quietly when the pipe closes (e.g. under `head`).
                if writeln!(
                    w,
                    "{} {} {} {:?} open@{} {}ms {}B runs={} whole={} seq={}",
                    s.open_id,
                    s.file_id,
                    s.user_id,
                    s.mode,
                    s.open_time.as_ms(),
                    s.open_duration_ms().unwrap_or(0),
                    s.bytes_transferred(),
                    s.runs.len(),
                    s.is_whole_file_transfer(),
                    s.is_sequential(),
                )
                .is_err()
                {
                    break;
                }
            }
        }
        _ => {
            eprintln!("usage: tracefmt dump FILE | pack FILE OUT | summary FILE | sessions FILE");
            exit(2);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("tracefmt: {msg}");
    exit(1);
}
