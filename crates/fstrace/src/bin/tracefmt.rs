//! `tracefmt`: inspect and convert trace files.
//!
//! ```text
//! tracefmt dump    FILE        print a binary trace as text
//! tracefmt pack    FILE OUT    convert a text trace to binary
//! tracefmt summary FILE        print Table III-style statistics
//! tracefmt sessions FILE       print reconstructed open-close sessions
//! ```
//!
//! Binary traces are detected by the `FSTR` magic; anything else is
//! parsed as text. `dump` and `pack` stream record by record, so they
//! convert traces of any length in bounded memory; `summary` and
//! `sessions` load the whole trace.

use std::fs;
use std::io::{BufRead, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::process::exit;

use fstrace::{codec, RecordSink, TextSink, Trace, TraceReader, TraceRecord, TraceWriter};

/// Opens `path` and reports whether it starts with the binary magic,
/// with the read position rewound to the start.
fn open_sniffed(path: &str) -> (BufReader<fs::File>, bool) {
    let f = fs::File::open(path).unwrap_or_else(|e| die(&format!("open {path}: {e}")));
    let mut r = BufReader::new(f);
    let mut magic = [0u8; 4];
    let n = r
        .read(&mut magic)
        .unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    r.seek(SeekFrom::Start(0))
        .unwrap_or_else(|e| die(&format!("seek {path}: {e}")));
    (r, n == 4 && &magic == b"FSTR")
}

/// Streams every record of `path` (either format) into `sink`,
/// returning the record count. Stops quietly when the sink fails —
/// a closed pipe (`| head`) is a normal way to stop reading.
///
/// With `require_order`, time regressions abort: the binary delta
/// encoding cannot represent them, and clamping would silently alter
/// the trace.
fn stream_records(path: &str, sink: &mut dyn RecordSink, require_order: bool) -> u64 {
    let (reader, binary) = open_sniffed(path);
    let mut n = 0u64;
    let mut last = fstrace::Timestamp::from_ms(0);
    let mut feed = |rec: TraceRecord| -> bool {
        if require_order && rec.time < last {
            die(&format!(
                "{path}: record {} goes back in time; sort the trace first",
                n + 1
            ));
        }
        last = last.max(rec.time);
        n += 1;
        sink.write_record(&rec).is_ok()
    };
    if binary {
        let records =
            TraceReader::new(reader).unwrap_or_else(|e| die(&format!("decode {path}: {e}")));
        for rec in records {
            let rec = rec.unwrap_or_else(|e| die(&format!("decode {path}: {e}")));
            if !feed(rec) {
                break;
            }
        }
    } else {
        for line in reader.lines() {
            let line = line.unwrap_or_else(|e| die(&format!("read {path}: {e}")));
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let rec = codec::from_text(line).unwrap_or_else(|e| die(&format!("parse {path}: {e}")));
            if !feed(rec) {
                break;
            }
        }
    }
    n
}

fn load(path: &str) -> Trace {
    let bytes = fs::read(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    if bytes.starts_with(b"FSTR") {
        Trace::from_binary(&bytes).unwrap_or_else(|e| die(&format!("decode {path}: {e}")))
    } else {
        let text = String::from_utf8(bytes).unwrap_or_else(|_| die("trace is not UTF-8 text"));
        Trace::from_text(&text).unwrap_or_else(|e| die(&format!("parse {path}: {e}")))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, file] if cmd == "dump" => {
            let stdout = std::io::stdout();
            let mut sink = TextSink::new(BufWriter::new(stdout.lock()));
            stream_records(file, &mut sink, false);
            let _ = sink.into_inner().flush();
        }
        [cmd, file, out] if cmd == "pack" => {
            let f = fs::File::create(out).unwrap_or_else(|e| die(&format!("create {out}: {e}")));
            let mut sink = TraceWriter::new(BufWriter::new(f))
                .unwrap_or_else(|e| die(&format!("write {out}: {e}")));
            let records = stream_records(file, &mut sink, true);
            let bytes = sink.bytes_written();
            sink.into_inner()
                .and_then(|mut w| w.flush())
                .unwrap_or_else(|e| die(&format!("write {out}: {e}")));
            eprintln!(
                "{} records, {} bytes ({:.1} bytes/record)",
                records,
                bytes,
                bytes as f64 / records.max(1) as f64
            );
        }
        [cmd, file] if cmd == "summary" => {
            let trace = load(file);
            println!("{}", trace.summary());
        }
        [cmd, file] if cmd == "sessions" => {
            let trace = load(file);
            let sessions = trace.sessions();
            println!(
                "{} sessions ({} unclosed, {} anomalies), {} bytes transferred",
                sessions.len(),
                sessions.unclosed(),
                sessions.anomalies(),
                sessions.total_bytes_transferred()
            );
            let stdout = std::io::stdout();
            let mut w = stdout.lock();
            for s in sessions.complete() {
                // Stop quietly when the pipe closes (e.g. under `head`).
                if writeln!(
                    w,
                    "{} {} {} {:?} open@{} {}ms {}B runs={} whole={} seq={}",
                    s.open_id,
                    s.file_id,
                    s.user_id,
                    s.mode,
                    s.open_time.as_ms(),
                    s.open_duration_ms().unwrap_or(0),
                    s.bytes_transferred(),
                    s.runs.len(),
                    s.is_whole_file_transfer(),
                    s.is_sequential(),
                )
                .is_err()
                {
                    break;
                }
            }
        }
        _ => {
            eprintln!("usage: tracefmt dump FILE | pack FILE OUT | summary FILE | sessions FILE");
            exit(2);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("tracefmt: {msg}");
    exit(1);
}
