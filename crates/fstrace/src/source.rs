//! Streaming record sources, sinks, and the k-way merge.
//!
//! The paper's tracer streamed events off a live kernel for days; this
//! module gives the reproduction the same shape. A [`RecordSource`] is
//! any fallible iterator of [`TraceRecord`]s — an in-memory trace, an
//! incremental [`crate::TraceReader`], or a [`MergeSource`] combining
//! several of either. A [`RecordSink`] is anywhere records go — a
//! `Vec`, a [`TraceWriter`], a [`TextSink`]. Producers that emit
//! records slightly out of order (the workload engine interleaves
//! actors within a scheduling step) pass through a [`ReorderBuffer`],
//! whose occupancy high-water mark is exported as the
//! `fstrace.pipeline.buffered_records_peak` gauge — the observable form
//! of the bounded-memory claim.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io;
use std::sync::OnceLock;

use crate::block::RecordBlock;
use crate::codec::{self, DecodeError, TraceWriter};
use crate::event::{TraceEvent, TraceRecord};
use crate::ids::{FileId, OpenId, Timestamp, UserId};
use crate::trace::Trace;

/// A stream of trace records in nondecreasing time order.
///
/// Blanket-implemented for every `Iterator<Item = Result<TraceRecord,
/// DecodeError>>`, so adapters compose with plain iterator combinators;
/// the trait exists to name the contract (time order, fail-stop on the
/// first error) that analyzers and the replay expander rely on.
pub trait RecordSource: Iterator<Item = Result<TraceRecord, DecodeError>> {}

impl<T: Iterator<Item = Result<TraceRecord, DecodeError>> + ?Sized> RecordSource for T {}

/// Flattens a fallible stream of [`RecordBlock`]s into a
/// [`RecordSource`].
///
/// Batched producers (the archive's chunk decoder, flat-stream batch
/// decoders) hand over whole blocks; this adapter walks each block's
/// columns in place, materializing one record view per `next()`, so
/// block producers compose with [`MergeSource`] and every other
/// record-level consumer. Fail-stop: the first block error is yielded
/// once and the source then fuses, matching the [`RecordSource`]
/// contract.
pub struct BlockRecordSource<I> {
    blocks: I,
    current: RecordBlock,
    at: usize,
    failed: bool,
}

impl<I: Iterator<Item = Result<RecordBlock, DecodeError>>> BlockRecordSource<I> {
    /// Wraps a fallible block stream.
    pub fn new(blocks: I) -> Self {
        BlockRecordSource {
            blocks,
            current: RecordBlock::new(),
            at: 0,
            failed: false,
        }
    }
}

impl<I: Iterator<Item = Result<RecordBlock, DecodeError>>> Iterator for BlockRecordSource<I> {
    type Item = Result<TraceRecord, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.failed {
                return None;
            }
            if self.at < self.current.len() {
                let rec = self.current.get(self.at);
                self.at += 1;
                return Some(Ok(rec));
            }
            match self.blocks.next()? {
                Ok(block) => {
                    self.current = block;
                    self.at = 0;
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// A destination for a stream of trace records.
///
/// Implemented by `Vec<TraceRecord>` (materialize), [`TraceWriter`]
/// (binary encode), and [`TextSink`] (text encode), so one generator
/// pass can feed any of them without holding the full trace.
pub trait RecordSink {
    /// Accepts one record.
    fn write_record(&mut self, rec: &TraceRecord) -> io::Result<()>;
}

impl RecordSink for Vec<TraceRecord> {
    fn write_record(&mut self, rec: &TraceRecord) -> io::Result<()> {
        self.push(*rec);
        Ok(())
    }
}

impl<W: io::Write> RecordSink for TraceWriter<W> {
    fn write_record(&mut self, rec: &TraceRecord) -> io::Result<()> {
        self.write(rec)
    }
}

impl<S: RecordSink + ?Sized> RecordSink for &mut S {
    fn write_record(&mut self, rec: &TraceRecord) -> io::Result<()> {
        (**self).write_record(rec)
    }
}

/// A [`RecordSink`] emitting the line-oriented text format.
pub struct TextSink<W: io::Write> {
    inner: W,
}

impl<W: io::Write> TextSink<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        TextSink { inner }
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: io::Write> RecordSink for TextSink<W> {
    fn write_record(&mut self, rec: &TraceRecord) -> io::Result<()> {
        writeln!(self.inner, "{}", codec::to_text(rec))
    }
}

/// Offsets added to every id of one merge input, so clients never
/// collide in the merged stream (see [`Trace::merge`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdOffsets {
    /// Added to every open id.
    pub open: u64,
    /// Added to every file id.
    pub file: u64,
    /// Added to every user id.
    pub user: u32,
}

/// Returns `rec` with all ids shifted by `off`.
pub fn remap_record(rec: &TraceRecord, off: IdOffsets) -> TraceRecord {
    let event = match rec.event {
        TraceEvent::Open {
            open_id,
            file_id,
            user_id,
            mode,
            size,
            created,
        } => TraceEvent::Open {
            open_id: OpenId(open_id.0 + off.open),
            file_id: FileId(file_id.0 + off.file),
            user_id: UserId(user_id.0 + off.user),
            mode,
            size,
            created,
        },
        TraceEvent::Close { open_id, final_pos } => TraceEvent::Close {
            open_id: OpenId(open_id.0 + off.open),
            final_pos,
        },
        TraceEvent::Seek {
            open_id,
            old_pos,
            new_pos,
        } => TraceEvent::Seek {
            open_id: OpenId(open_id.0 + off.open),
            old_pos,
            new_pos,
        },
        TraceEvent::Unlink { file_id, user_id } => TraceEvent::Unlink {
            file_id: FileId(file_id.0 + off.file),
            user_id: UserId(user_id.0 + off.user),
        },
        TraceEvent::Truncate {
            file_id,
            new_len,
            user_id,
        } => TraceEvent::Truncate {
            file_id: FileId(file_id.0 + off.file),
            new_len,
            user_id: UserId(user_id.0 + off.user),
        },
        TraceEvent::Execve {
            file_id,
            user_id,
            size,
        } => TraceEvent::Execve {
            file_id: FileId(file_id.0 + off.file),
            user_id: UserId(user_id.0 + off.user),
            size,
        },
    };
    TraceRecord {
        time: rec.time,
        event,
    }
}

/// K-way time-ordered merge of several record sources.
///
/// Each input must itself be in nondecreasing time order (every
/// [`RecordSource`] is); the merge then emits the exact sequence a
/// concatenate-remap-stable-sort of the materialized inputs would —
/// records with equal timestamps come out in input order, and within
/// one input in that input's order — while buffering only one record
/// per input. This is what lets the server experiment simulate the sum
/// of N client traces without ever materializing the merged trace.
///
/// On the first error from any input, the merge yields that error and
/// ends; a partially merged stream cannot be resynchronized.
pub struct MergeSource<S> {
    sources: Vec<S>,
    offsets: Vec<IdOffsets>,
    /// Head record of each non-exhausted source, keyed into by `heap`.
    heads: Vec<Option<TraceRecord>>,
    /// Min-heap of (head time, source index); the index tie-break makes
    /// equal-time ordering match stable concatenation order.
    heap: BinaryHeap<Reverse<(Timestamp, usize)>>,
    pending_err: Option<DecodeError>,
    started: bool,
    failed: bool,
}

impl<S> MergeSource<S>
where
    S: Iterator<Item = Result<TraceRecord, DecodeError>>,
{
    /// Combines sources, remapping each one's ids by its offsets.
    pub fn new(sources: Vec<(S, IdOffsets)>) -> Self {
        let (sources, offsets): (Vec<S>, Vec<IdOffsets>) = sources.into_iter().unzip();
        let heads = sources.iter().map(|_| None).collect();
        MergeSource {
            sources,
            offsets,
            heads,
            heap: BinaryHeap::new(),
            pending_err: None,
            started: false,
            failed: false,
        }
    }

    /// Pulls the next record of source `i` into `heads`/`heap`.
    fn advance(&mut self, i: usize) {
        match self.sources[i].next() {
            Some(Ok(rec)) => {
                let rec = remap_record(&rec, self.offsets[i]);
                self.heap.push(Reverse((rec.time, i)));
                self.heads[i] = Some(rec);
            }
            Some(Err(e)) => self.pending_err = Some(e),
            None => {}
        }
    }
}

impl<S> Iterator for MergeSource<S>
where
    S: Iterator<Item = Result<TraceRecord, DecodeError>>,
{
    type Item = Result<TraceRecord, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if !self.started {
            self.started = true;
            for i in 0..self.sources.len() {
                self.advance(i);
            }
        }
        if let Some(e) = self.pending_err.take() {
            self.failed = true;
            return Some(Err(e));
        }
        let Reverse((_, i)) = self.heap.pop()?;
        let rec = self.heads[i].take().expect("heap entry has a head record");
        self.advance(i);
        Some(Ok(rec))
    }
}

/// An infallible in-memory record iterator, for feeding [`MergeSource`].
type TraceRecords<'a> = std::iter::Map<
    std::slice::Iter<'a, TraceRecord>,
    fn(&TraceRecord) -> Result<TraceRecord, DecodeError>,
>;

fn ok_record(rec: &TraceRecord) -> Result<TraceRecord, DecodeError> {
    Ok(*rec)
}

/// Streams the k-way merge of in-memory traces with automatic
/// collision-free id offsets — [`Trace::merge`]'s record sequence
/// without the materialization. The inputs are infallible, so every
/// item is `Ok`.
pub fn merged_records<'a>(traces: &[&'a Trace]) -> MergeSource<TraceRecords<'a>> {
    let mut sources: Vec<(TraceRecords<'a>, IdOffsets)> = Vec::with_capacity(traces.len());
    let mut off = IdOffsets::default();
    for t in traces {
        sources.push((
            t.records().iter().map(ok_record as fn(&TraceRecord) -> _),
            off,
        ));
        let (o, f, u) = t.max_ids();
        off.open += o + 1;
        off.file += f + 1;
        off.user += u + 1;
    }
    MergeSource::new(sources)
}

/// The `fstrace.pipeline.buffered_records_peak` gauge: the most records
/// any [`ReorderBuffer`] in this process has held at once.
fn buffered_records_peak() -> &'static obs::Gauge {
    static CELL: OnceLock<obs::Gauge> = OnceLock::new();
    CELL.get_or_init(|| obs::global().gauge("fstrace.pipeline.buffered_records_peak"))
}

/// A heap entry ordered by (time, arrival sequence) only.
struct Queued {
    rec: TraceRecord,
    seq: u64,
}

impl Queued {
    fn key(&self) -> (Timestamp, u64) {
        (self.rec.time, self.seq)
    }
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Queued {}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Re-sorts a bounded-skew record stream into nondecreasing time order.
///
/// The workload engine emits records in scheduling order: each actor
/// step produces records at or after the step's wake time, but two
/// actors interleave, so the raw emission sequence is only *almost*
/// sorted. Buffering the skew window — and nothing more — reproduces
/// exactly what [`Trace::from_records`]'s stable sort would: records
/// come out ordered by time, ties broken by emission order.
///
/// [`release_before`] drains everything strictly before a watermark the
/// producer promises not to emit under again; [`finish`] drains the
/// rest. Occupancy is recorded into the process-wide
/// `fstrace.pipeline.buffered_records_peak` gauge on every push.
///
/// [`release_before`]: ReorderBuffer::release_before
/// [`finish`]: ReorderBuffer::finish
#[derive(Default)]
pub struct ReorderBuffer {
    heap: BinaryHeap<Reverse<Queued>>,
    next_seq: u64,
    peak: usize,
}

impl ReorderBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        ReorderBuffer::default()
    }

    /// Buffers one record.
    pub fn push(&mut self, rec: TraceRecord) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Queued { rec, seq }));
        if self.heap.len() > self.peak {
            self.peak = self.heap.len();
            buffered_records_peak().record(self.peak as u64);
        }
    }

    /// Writes every buffered record whose (quantized) time is strictly
    /// before `watermark_ms` to `sink`, in time order.
    ///
    /// The caller promises that no record pushed later has a quantized
    /// time below the watermark's quantized time; the comparison is
    /// done in 10 ms ticks, matching the records' own granularity.
    pub fn release_before(
        &mut self,
        watermark_ms: u64,
        sink: &mut dyn RecordSink,
    ) -> io::Result<()> {
        let watermark = Timestamp::from_ms(watermark_ms);
        while let Some(Reverse(q)) = self.heap.peek() {
            if q.rec.time >= watermark {
                break;
            }
            let Reverse(q) = self.heap.pop().expect("peeked entry exists");
            sink.write_record(&q.rec)?;
        }
        Ok(())
    }

    /// Drains every remaining record to `sink` in time order, leaving
    /// the buffer empty but reusable (the arrival-sequence counter and
    /// peak statistic carry over).
    pub fn drain(&mut self, sink: &mut dyn RecordSink) -> io::Result<()> {
        while let Some(Reverse(q)) = self.heap.pop() {
            sink.write_record(&q.rec)?;
        }
        Ok(())
    }

    /// Drains every remaining record to `sink`, in time order.
    pub fn finish(mut self, sink: &mut dyn RecordSink) -> io::Result<()> {
        self.drain(sink)
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Greatest number of records this buffer has held at once.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

/// The `fstrace.fleet.buffered_records_peak` gauge: the most records
/// any [`FleetMerge`] in this process has held at once.
fn fleet_buffered_peak() -> &'static obs::Gauge {
    static CELL: OnceLock<obs::Gauge> = OnceLock::new();
    CELL.get_or_init(|| obs::global().gauge("fstrace.fleet.buffered_records_peak"))
}

/// One input stream of a [`FleetMerge`].
struct FleetInput {
    /// Records pushed but not yet released, in nondecreasing time order
    /// (already remapped by this input's offsets).
    queue: std::collections::VecDeque<TraceRecord>,
    offsets: IdOffsets,
    /// Everything this input will ever emit before `progress` has been
    /// pushed; [`Timestamp`]s below it are final.
    progress: Timestamp,
    finished: bool,
    /// Time of the last pushed record, for the order debug-assert.
    last_time: Timestamp,
    /// `true` while `queue`'s front sits in the release heap.
    in_heap: bool,
}

/// Watermark-gated k-way merge for concurrently produced streams.
///
/// [`MergeSource`] pulls; `FleetMerge` is its push-mode sibling for
/// producers that live on other threads: each simulated machine feeds
/// records (in its own nondecreasing time order) and separately
/// advances a *progress watermark* — a promise that everything it will
/// ever emit before that time has already been pushed. [`release`]
/// then emits every record whose quantized time lies strictly below
/// the **fleet watermark** (the minimum progress over unfinished
/// inputs), ordered by `(time, input index, push order)` — exactly the
/// sequence [`MergeSource`] over the complete per-input streams would
/// produce, and therefore independent of how pushes, progress updates,
/// and releases interleave. That schedule-independence is the fleet
/// determinism contract: a merge fed by N racing threads is
/// byte-identical to the same merge fed serially.
///
/// The slowest input gates the merge, so buffering is bounded by how
/// far ahead producers are allowed to run, not by trace length; the
/// high-water mark feeds the `fstrace.fleet.buffered_records_peak`
/// gauge.
///
/// [`release`]: FleetMerge::release
pub struct FleetMerge {
    inputs: Vec<FleetInput>,
    /// Min-heap of (front-record time, input index) for inputs whose
    /// queue front is eligible; the index tie-break makes equal-time
    /// ordering match stable concatenation order.
    heap: BinaryHeap<Reverse<(Timestamp, usize)>>,
    buffered: usize,
    peak: usize,
    released: u64,
}

impl FleetMerge {
    /// Creates a merge over `offsets.len()` inputs; input `i`'s ids are
    /// shifted by `offsets[i]` so machines never collide.
    pub fn new(offsets: Vec<IdOffsets>) -> Self {
        let inputs = offsets
            .into_iter()
            .map(|offsets| FleetInput {
                queue: std::collections::VecDeque::new(),
                offsets,
                progress: Timestamp::ZERO,
                finished: false,
                last_time: Timestamp::ZERO,
                in_heap: false,
            })
            .collect();
        FleetMerge {
            inputs,
            heap: BinaryHeap::new(),
            buffered: 0,
            peak: 0,
            released: 0,
        }
    }

    /// Number of inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Buffers one record from input `i`.
    ///
    /// Records of one input must arrive in nondecreasing time order
    /// (debug-asserted) — the per-machine [`ReorderBuffer`] guarantees
    /// exactly that.
    ///
    /// # Panics
    ///
    /// Panics if the input is out of range or already finished.
    pub fn push(&mut self, i: usize, rec: &TraceRecord) {
        let input = &mut self.inputs[i];
        assert!(!input.finished, "push to finished fleet input {i}");
        let rec = remap_record(rec, input.offsets);
        debug_assert!(
            rec.time >= input.last_time,
            "fleet input {i} went backwards: {} after {}",
            rec.time,
            input.last_time
        );
        input.last_time = rec.time;
        if input.queue.is_empty() && !input.in_heap {
            input.in_heap = true;
            self.heap.push(Reverse((rec.time, i)));
        }
        input.queue.push_back(rec);
        self.buffered += 1;
        if self.buffered > self.peak {
            self.peak = self.buffered;
            fleet_buffered_peak().record(self.peak as u64);
        }
    }

    /// Advances input `i`'s progress watermark: everything it will ever
    /// emit with a quantized time below `up_to_ms` has been pushed.
    /// Watermarks never move backwards (lower values are ignored).
    pub fn set_progress(&mut self, i: usize, up_to_ms: u64) {
        let t = Timestamp::from_ms(up_to_ms);
        let input = &mut self.inputs[i];
        if t > input.progress {
            input.progress = t;
        }
    }

    /// Marks input `i` complete: no further pushes, and its records no
    /// longer gate the fleet watermark.
    pub fn finish_input(&mut self, i: usize) {
        self.inputs[i].finished = true;
    }

    /// The fleet watermark: the minimum progress over unfinished
    /// inputs, or `None` when every input has finished (nothing gates
    /// the merge any more).
    pub fn watermark(&self) -> Option<Timestamp> {
        self.inputs
            .iter()
            .filter(|input| !input.finished)
            .map(|input| input.progress)
            .min()
    }

    /// Emits every releasable record to `sink` in `(time, input, push
    /// order)` order: records strictly below the fleet watermark, or
    /// everything buffered once all inputs have finished. Returns the
    /// number of records written.
    pub fn release(&mut self, sink: &mut dyn RecordSink) -> io::Result<u64> {
        let gate = self.watermark();
        let mut wrote = 0u64;
        while let Some(&Reverse((time, i))) = self.heap.peek() {
            if gate.is_some_and(|w| time >= w) {
                break;
            }
            self.heap.pop();
            let input = &mut self.inputs[i];
            let rec = input.queue.pop_front().expect("heap entry has a record");
            debug_assert_eq!(rec.time, time);
            input.in_heap = false;
            if let Some(next) = input.queue.front() {
                input.in_heap = true;
                self.heap.push(Reverse((next.time, i)));
            }
            self.buffered -= 1;
            wrote += 1;
            sink.write_record(&rec)?;
        }
        self.released += wrote;
        Ok(wrote)
    }

    /// Releases everything left and consumes the merge.
    ///
    /// # Panics
    ///
    /// Panics if any input has not been [`finish_input`]ed — draining
    /// past a live watermark would break the determinism contract.
    ///
    /// [`finish_input`]: FleetMerge::finish_input
    pub fn finish(mut self, sink: &mut dyn RecordSink) -> io::Result<u64> {
        assert!(
            self.watermark().is_none(),
            "FleetMerge::finish with unfinished inputs"
        );
        self.release(sink)?;
        debug_assert_eq!(self.buffered, 0);
        Ok(self.released)
    }

    /// Records currently buffered across all inputs.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Greatest number of records held at once.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Records released to the sink so far.
    pub fn released(&self) -> u64 {
        self.released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AccessMode;
    use crate::trace::TraceBuilder;

    fn client(seed: u64, events: u64) -> Trace {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        for i in 0..events {
            let f = b.new_file_id();
            let t = seed + i * 70;
            let o = b.open(t, f, u, AccessMode::ReadOnly, 1000, false);
            b.close(t + 30, o, 1000);
        }
        b.finish()
    }

    /// Splits a trace's encoded form into blocks of `step` records.
    fn blocks_of(trace: &Trace, step: usize) -> Vec<RecordBlock> {
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for r in trace.records() {
            prev = codec::encode_into(&mut buf, r, prev);
        }
        let mut blocks = Vec::new();
        let mut pos = 0;
        let mut ticks = 0u64;
        while pos < buf.len() {
            let mut b = RecordBlock::new();
            ticks = crate::block::decode_block(&buf, &mut pos, ticks, buf.len(), step, &mut b)
                .expect("well-formed");
            blocks.push(b);
        }
        blocks
    }

    #[test]
    fn block_sources_merge_like_record_sources() {
        let a = client(0, 5);
        let b = client(35, 4);
        let sources: Vec<_> = [&a, &b]
            .into_iter()
            .map(|t| {
                (
                    BlockRecordSource::new(blocks_of(t, 3).into_iter().map(Ok)),
                    IdOffsets::default(),
                )
            })
            .collect();
        let streamed: Vec<TraceRecord> = MergeSource::new(sources)
            .map(|r| r.expect("block merge is infallible here"))
            .collect();
        // The oracle: the same merge over plain record iterators.
        let expected: Vec<TraceRecord> = MergeSource::new(
            [&a, &b]
                .into_iter()
                .map(|t| {
                    (
                        t.records().to_vec().into_iter().map(Ok),
                        IdOffsets::default(),
                    )
                })
                .collect(),
        )
        .map(|r| r.expect("record merge is infallible here"))
        .collect();
        assert_eq!(streamed, expected);
    }

    #[test]
    fn block_source_fuses_after_an_error() {
        let a = client(0, 2);
        let mut blocks: Vec<Result<RecordBlock, DecodeError>> =
            blocks_of(&a, 1).into_iter().map(Ok).collect();
        blocks.insert(1, Err(DecodeError::BadVarint));
        let mut src = BlockRecordSource::new(blocks.into_iter());
        assert!(src.next().unwrap().is_ok());
        assert!(src.next().unwrap().is_err());
        assert!(src.next().is_none());
    }

    #[test]
    fn merge_matches_materialized_trace_merge() {
        let a = client(0, 5);
        let b = client(35, 4);
        let c = client(10, 3);
        let streamed: Vec<TraceRecord> = merged_records(&[&a, &b, &c])
            .map(|r| r.expect("in-memory merge is infallible"))
            .collect();
        let merged = Trace::merge(&[a, b, c]);
        assert_eq!(streamed, merged.records());
    }

    #[test]
    fn merge_ties_prefer_earlier_source() {
        let a = client(100, 1); // open at 100, close at 130
        let b = client(100, 1);
        let recs: Vec<TraceRecord> = merged_records(&[&a, &b]).map(|r| r.unwrap()).collect();
        // Equal timestamps: source 0's record first, like stable sort.
        assert_eq!(recs[0].time, recs[1].time);
        assert_eq!(recs[0].event.open_id(), Some(OpenId(0)));
        assert!(recs[1].event.open_id().map(|o| o.0) > Some(0));
    }

    #[test]
    fn merge_four_way_ties_match_materialized_merge_byte_for_byte() {
        // Four inputs whose records all land on two 10 ms-quantized
        // ticks: opens at 130–132 ms (all tick 13) and closes at
        // 139/140 ms (ticks 13 and 14), so cross-input timestamp
        // collisions are the norm, not the exception. Tie-breaking must
        // be deterministic — input order first, then each input's own
        // order — and must match what materializing the merge (concat +
        // remap + stable sort) produces, down to the encoded bytes.
        let make = |opens: u64| {
            let mut b = TraceBuilder::new();
            let u = b.new_user_id();
            for i in 0..opens {
                let f = b.new_file_id();
                // Same quantized tick for every input, different raw ms.
                let o = b.open(130 + (i % 3), f, u, AccessMode::ReadOnly, 512, false);
                b.close(139 + (i % 2), o, 512);
            }
            b.finish()
        };
        let traces = [make(3), make(2), make(4), make(1)];
        let refs: Vec<&Trace> = traces.iter().collect();
        let streamed: Vec<TraceRecord> = merged_records(&refs)
            .map(|r| r.expect("in-memory merge is infallible"))
            .collect();
        let materialized = Trace::merge(&traces);
        assert_eq!(streamed, materialized.records());
        // Byte-for-byte: the streamed sequence encodes to exactly the
        // materialized trace's binary form.
        assert_eq!(
            Trace::from_records(streamed).to_binary(),
            materialized.to_binary()
        );
        // And the tie order is the documented one: all records share
        // one of two quantized ticks, so the merge's only freedom is
        // the tie-break.
        let ticks: std::collections::BTreeSet<u64> = materialized
            .records()
            .iter()
            .map(|r| r.time.as_ticks())
            .collect();
        assert_eq!(ticks.len(), 2, "every record sits on a tied tick");
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        assert_eq!(merged_records(&[]).count(), 0);
    }

    #[test]
    fn merge_stops_at_first_source_error() {
        let good = vec![Ok(TraceRecord::new(
            0,
            TraceEvent::Unlink {
                file_id: FileId(0),
                user_id: UserId(0),
            },
        ))];
        let bad: Vec<Result<TraceRecord, DecodeError>> = vec![Err(DecodeError::BadVarint)];
        let mut m = MergeSource::new(vec![
            (good.into_iter(), IdOffsets::default()),
            (bad.into_iter(), IdOffsets::default()),
        ]);
        assert!(m.next().expect("first item").is_err());
        assert!(m.next().is_none());
    }

    #[test]
    fn reorder_buffer_matches_stable_sort() {
        // Emission order: interleaved, slightly out of order, with ties.
        let rec = |t: u64, fid: u64| {
            TraceRecord::new(
                t,
                TraceEvent::Unlink {
                    file_id: FileId(fid),
                    user_id: UserId(0),
                },
            )
        };
        let emitted = vec![
            rec(20, 0),
            rec(10, 1),
            rec(20, 2),
            rec(40, 3),
            rec(30, 4),
            rec(40, 5),
        ];
        let mut buf = ReorderBuffer::new();
        let mut out: Vec<TraceRecord> = Vec::new();
        for (i, r) in emitted.iter().enumerate() {
            buf.push(*r);
            if i == 3 {
                // Producer guarantees nothing below t=30 comes later.
                buf.release_before(30, &mut out).unwrap();
            }
        }
        buf.finish(&mut out).unwrap();
        let expected = Trace::from_records(emitted.clone());
        assert_eq!(out, expected.records());
    }

    #[test]
    fn reorder_buffer_tracks_peak() {
        let mut buf = ReorderBuffer::new();
        for t in [30u64, 20, 10] {
            buf.push(TraceRecord::new(
                t,
                TraceEvent::Unlink {
                    file_id: FileId(0),
                    user_id: UserId(0),
                },
            ));
        }
        assert_eq!(buf.peak(), 3);
        let mut out: Vec<TraceRecord> = Vec::new();
        buf.finish(&mut out).unwrap();
        assert!(out.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(obs::global()
            .snapshot()
            .gauge("fstrace.pipeline.buffered_records_peak")
            .is_some_and(|v| v >= 3));
    }

    /// Feeds two in-memory traces through a [`FleetMerge`] in
    /// `chunk`-sized pushes with progress published after each chunk,
    /// releasing after every update.
    fn fleet_merge_chunked(traces: &[&Trace], chunk: usize) -> Vec<TraceRecord> {
        let offsets = auto_offsets(traces);
        let mut m = FleetMerge::new(offsets);
        let mut out: Vec<TraceRecord> = Vec::new();
        let mut at: Vec<usize> = vec![0; traces.len()];
        loop {
            let mut moved = false;
            for (i, t) in traces.iter().enumerate() {
                let recs = t.records();
                if at[i] >= recs.len() {
                    continue;
                }
                moved = true;
                let end = (at[i] + chunk).min(recs.len());
                for r in &recs[at[i]..end] {
                    m.push(i, r);
                }
                at[i] = end;
                if end == recs.len() {
                    m.set_progress(i, u64::MAX);
                    m.finish_input(i);
                } else {
                    // Everything before the next record's raw time is
                    // pushed; its own tick is still ambiguous.
                    m.set_progress(i, recs[end].time.as_ms());
                }
                m.release(&mut out).unwrap();
            }
            if !moved {
                break;
            }
        }
        m.finish(&mut out).unwrap();
        out
    }

    /// The same collision-free offsets [`merged_records`] would pick.
    fn auto_offsets(traces: &[&Trace]) -> Vec<IdOffsets> {
        let mut offsets = Vec::with_capacity(traces.len());
        let mut off = IdOffsets::default();
        for t in traces {
            offsets.push(off);
            let (o, f, u) = t.max_ids();
            off.open += o + 1;
            off.file += f + 1;
            off.user += u + 1;
        }
        offsets
    }

    #[test]
    fn fleet_merge_matches_pull_merge() {
        let a = client(0, 5);
        let b = client(35, 4);
        let c = client(10, 3);
        let expected: Vec<TraceRecord> = merged_records(&[&a, &b, &c])
            .map(|r| r.expect("in-memory merge is infallible"))
            .collect();
        for chunk in [1, 2, 7, 100] {
            assert_eq!(fleet_merge_chunked(&[&a, &b, &c], chunk), expected);
        }
    }

    #[test]
    fn fleet_merge_ties_break_by_input_then_push_order() {
        // Two byte-identical inputs: every record collides on the same
        // tick, so the output order is pure tie-breaking.
        let a = client(100, 3);
        let b = client(100, 3);
        let expected: Vec<TraceRecord> = merged_records(&[&a, &b])
            .map(|r| r.expect("in-memory merge is infallible"))
            .collect();
        let merged = fleet_merge_chunked(&[&a, &b], 2);
        assert_eq!(merged, expected);
        // Ties resolve input 0 first at every tied tick.
        for w in merged.windows(2) {
            if w[0].time == w[1].time {
                continue;
            }
            assert!(w[0].time < w[1].time);
        }
    }

    #[test]
    fn fleet_merge_watermark_gates_release() {
        let a = client(0, 5); // records at 0,30,70,100,...
        let mut m = FleetMerge::new(vec![IdOffsets::default(), IdOffsets::default()]);
        for r in a.records() {
            m.push(0, r);
        }
        m.set_progress(0, u64::MAX);
        m.finish_input(0);
        // Input 1 is alive with progress 0: nothing may be released.
        let mut out: Vec<TraceRecord> = Vec::new();
        assert_eq!(m.release(&mut out).unwrap(), 0);
        assert!(out.is_empty());
        assert_eq!(m.buffered(), a.len());
        // Progress to 70 ms releases exactly the records below tick 7.
        m.set_progress(1, 70);
        m.release(&mut out).unwrap();
        assert!(out.iter().all(|r| r.time < Timestamp::from_ms(70)));
        assert_eq!(
            out.len(),
            a.records()
                .iter()
                .filter(|r| r.time < Timestamp::from_ms(70))
                .count()
        );
        m.finish_input(1);
        m.finish(&mut out).unwrap();
        assert_eq!(out, a.records());
    }

    #[test]
    fn fleet_merge_tracks_peak_and_gauge() {
        let a = client(0, 4);
        let mut m = FleetMerge::new(vec![IdOffsets::default()]);
        for r in a.records() {
            m.push(0, r);
        }
        assert_eq!(m.peak(), a.len());
        m.set_progress(0, u64::MAX);
        m.finish_input(0);
        let mut out: Vec<TraceRecord> = Vec::new();
        let released = m.finish(&mut out).unwrap();
        assert_eq!(released, a.len() as u64);
        assert!(obs::global()
            .snapshot()
            .gauge("fstrace.fleet.buffered_records_peak")
            .is_some_and(|v| v >= a.len() as u64));
    }

    #[test]
    #[should_panic(expected = "unfinished inputs")]
    fn fleet_merge_finish_requires_finished_inputs() {
        let m = FleetMerge::new(vec![IdOffsets::default()]);
        let mut out: Vec<TraceRecord> = Vec::new();
        m.finish(&mut out).unwrap();
    }

    #[test]
    fn reorder_buffer_drain_keeps_buffer_reusable() {
        let rec = |t: u64, fid: u64| {
            TraceRecord::new(
                t,
                TraceEvent::Unlink {
                    file_id: FileId(fid),
                    user_id: UserId(0),
                },
            )
        };
        let mut buf = ReorderBuffer::new();
        buf.push(rec(30, 0));
        buf.push(rec(10, 1));
        let mut out: Vec<TraceRecord> = Vec::new();
        buf.drain(&mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert!(buf.is_empty());
        // Still usable after draining; peak carries over.
        buf.push(rec(50, 2));
        buf.drain(&mut out).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(buf.peak(), 2);
    }

    #[test]
    fn text_sink_writes_parseable_lines() {
        let t = client(0, 2);
        let mut sink = TextSink::new(Vec::new());
        for r in t.records() {
            sink.write_record(r).unwrap();
        }
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(Trace::from_text(&text).unwrap(), t);
    }
}
