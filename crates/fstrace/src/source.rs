//! Streaming record sources, sinks, and the k-way merge.
//!
//! The paper's tracer streamed events off a live kernel for days; this
//! module gives the reproduction the same shape. A [`RecordSource`] is
//! any fallible iterator of [`TraceRecord`]s — an in-memory trace, an
//! incremental [`crate::TraceReader`], or a [`MergeSource`] combining
//! several of either. A [`RecordSink`] is anywhere records go — a
//! `Vec`, a [`TraceWriter`], a [`TextSink`]. Producers that emit
//! records slightly out of order (the workload engine interleaves
//! actors within a scheduling step) pass through a [`ReorderBuffer`],
//! whose occupancy high-water mark is exported as the
//! `fstrace.pipeline.buffered_records_peak` gauge — the observable form
//! of the bounded-memory claim.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io;
use std::sync::OnceLock;

use crate::block::RecordBlock;
use crate::codec::{self, DecodeError, TraceWriter};
use crate::event::{TraceEvent, TraceRecord};
use crate::ids::{FileId, OpenId, Timestamp, UserId};
use crate::trace::Trace;

/// A stream of trace records in nondecreasing time order.
///
/// Blanket-implemented for every `Iterator<Item = Result<TraceRecord,
/// DecodeError>>`, so adapters compose with plain iterator combinators;
/// the trait exists to name the contract (time order, fail-stop on the
/// first error) that analyzers and the replay expander rely on.
pub trait RecordSource: Iterator<Item = Result<TraceRecord, DecodeError>> {}

impl<T: Iterator<Item = Result<TraceRecord, DecodeError>> + ?Sized> RecordSource for T {}

/// Flattens a fallible stream of [`RecordBlock`]s into a
/// [`RecordSource`].
///
/// Batched producers (the archive's chunk decoder, flat-stream batch
/// decoders) hand over whole blocks; this adapter walks each block's
/// columns in place, materializing one record view per `next()`, so
/// block producers compose with [`MergeSource`] and every other
/// record-level consumer. Fail-stop: the first block error is yielded
/// once and the source then fuses, matching the [`RecordSource`]
/// contract.
pub struct BlockRecordSource<I> {
    blocks: I,
    current: RecordBlock,
    at: usize,
    failed: bool,
}

impl<I: Iterator<Item = Result<RecordBlock, DecodeError>>> BlockRecordSource<I> {
    /// Wraps a fallible block stream.
    pub fn new(blocks: I) -> Self {
        BlockRecordSource {
            blocks,
            current: RecordBlock::new(),
            at: 0,
            failed: false,
        }
    }
}

impl<I: Iterator<Item = Result<RecordBlock, DecodeError>>> Iterator for BlockRecordSource<I> {
    type Item = Result<TraceRecord, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.failed {
                return None;
            }
            if self.at < self.current.len() {
                let rec = self.current.get(self.at);
                self.at += 1;
                return Some(Ok(rec));
            }
            match self.blocks.next()? {
                Ok(block) => {
                    self.current = block;
                    self.at = 0;
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// A destination for a stream of trace records.
///
/// Implemented by `Vec<TraceRecord>` (materialize), [`TraceWriter`]
/// (binary encode), and [`TextSink`] (text encode), so one generator
/// pass can feed any of them without holding the full trace.
pub trait RecordSink {
    /// Accepts one record.
    fn write_record(&mut self, rec: &TraceRecord) -> io::Result<()>;
}

impl RecordSink for Vec<TraceRecord> {
    fn write_record(&mut self, rec: &TraceRecord) -> io::Result<()> {
        self.push(*rec);
        Ok(())
    }
}

impl<W: io::Write> RecordSink for TraceWriter<W> {
    fn write_record(&mut self, rec: &TraceRecord) -> io::Result<()> {
        self.write(rec)
    }
}

impl<S: RecordSink + ?Sized> RecordSink for &mut S {
    fn write_record(&mut self, rec: &TraceRecord) -> io::Result<()> {
        (**self).write_record(rec)
    }
}

/// A [`RecordSink`] emitting the line-oriented text format.
pub struct TextSink<W: io::Write> {
    inner: W,
}

impl<W: io::Write> TextSink<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> Self {
        TextSink { inner }
    }

    /// Returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: io::Write> RecordSink for TextSink<W> {
    fn write_record(&mut self, rec: &TraceRecord) -> io::Result<()> {
        writeln!(self.inner, "{}", codec::to_text(rec))
    }
}

/// Offsets added to every id of one merge input, so clients never
/// collide in the merged stream (see [`Trace::merge`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdOffsets {
    /// Added to every open id.
    pub open: u64,
    /// Added to every file id.
    pub file: u64,
    /// Added to every user id.
    pub user: u32,
}

/// Returns `rec` with all ids shifted by `off`.
pub fn remap_record(rec: &TraceRecord, off: IdOffsets) -> TraceRecord {
    let event = match rec.event {
        TraceEvent::Open {
            open_id,
            file_id,
            user_id,
            mode,
            size,
            created,
        } => TraceEvent::Open {
            open_id: OpenId(open_id.0 + off.open),
            file_id: FileId(file_id.0 + off.file),
            user_id: UserId(user_id.0 + off.user),
            mode,
            size,
            created,
        },
        TraceEvent::Close { open_id, final_pos } => TraceEvent::Close {
            open_id: OpenId(open_id.0 + off.open),
            final_pos,
        },
        TraceEvent::Seek {
            open_id,
            old_pos,
            new_pos,
        } => TraceEvent::Seek {
            open_id: OpenId(open_id.0 + off.open),
            old_pos,
            new_pos,
        },
        TraceEvent::Unlink { file_id, user_id } => TraceEvent::Unlink {
            file_id: FileId(file_id.0 + off.file),
            user_id: UserId(user_id.0 + off.user),
        },
        TraceEvent::Truncate {
            file_id,
            new_len,
            user_id,
        } => TraceEvent::Truncate {
            file_id: FileId(file_id.0 + off.file),
            new_len,
            user_id: UserId(user_id.0 + off.user),
        },
        TraceEvent::Execve {
            file_id,
            user_id,
            size,
        } => TraceEvent::Execve {
            file_id: FileId(file_id.0 + off.file),
            user_id: UserId(user_id.0 + off.user),
            size,
        },
    };
    TraceRecord {
        time: rec.time,
        event,
    }
}

/// K-way time-ordered merge of several record sources.
///
/// Each input must itself be in nondecreasing time order (every
/// [`RecordSource`] is); the merge then emits the exact sequence a
/// concatenate-remap-stable-sort of the materialized inputs would —
/// records with equal timestamps come out in input order, and within
/// one input in that input's order — while buffering only one record
/// per input. This is what lets the server experiment simulate the sum
/// of N client traces without ever materializing the merged trace.
///
/// On the first error from any input, the merge yields that error and
/// ends; a partially merged stream cannot be resynchronized.
pub struct MergeSource<S> {
    sources: Vec<S>,
    offsets: Vec<IdOffsets>,
    /// Head record of each non-exhausted source, keyed into by `heap`.
    heads: Vec<Option<TraceRecord>>,
    /// Min-heap of (head time, source index); the index tie-break makes
    /// equal-time ordering match stable concatenation order.
    heap: BinaryHeap<Reverse<(Timestamp, usize)>>,
    pending_err: Option<DecodeError>,
    started: bool,
    failed: bool,
}

impl<S> MergeSource<S>
where
    S: Iterator<Item = Result<TraceRecord, DecodeError>>,
{
    /// Combines sources, remapping each one's ids by its offsets.
    pub fn new(sources: Vec<(S, IdOffsets)>) -> Self {
        let (sources, offsets): (Vec<S>, Vec<IdOffsets>) = sources.into_iter().unzip();
        let heads = sources.iter().map(|_| None).collect();
        MergeSource {
            sources,
            offsets,
            heads,
            heap: BinaryHeap::new(),
            pending_err: None,
            started: false,
            failed: false,
        }
    }

    /// Pulls the next record of source `i` into `heads`/`heap`.
    fn advance(&mut self, i: usize) {
        match self.sources[i].next() {
            Some(Ok(rec)) => {
                let rec = remap_record(&rec, self.offsets[i]);
                self.heap.push(Reverse((rec.time, i)));
                self.heads[i] = Some(rec);
            }
            Some(Err(e)) => self.pending_err = Some(e),
            None => {}
        }
    }
}

impl<S> Iterator for MergeSource<S>
where
    S: Iterator<Item = Result<TraceRecord, DecodeError>>,
{
    type Item = Result<TraceRecord, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        if !self.started {
            self.started = true;
            for i in 0..self.sources.len() {
                self.advance(i);
            }
        }
        if let Some(e) = self.pending_err.take() {
            self.failed = true;
            return Some(Err(e));
        }
        let Reverse((_, i)) = self.heap.pop()?;
        let rec = self.heads[i].take().expect("heap entry has a head record");
        self.advance(i);
        Some(Ok(rec))
    }
}

/// An infallible in-memory record iterator, for feeding [`MergeSource`].
type TraceRecords<'a> = std::iter::Map<
    std::slice::Iter<'a, TraceRecord>,
    fn(&TraceRecord) -> Result<TraceRecord, DecodeError>,
>;

fn ok_record(rec: &TraceRecord) -> Result<TraceRecord, DecodeError> {
    Ok(*rec)
}

/// Streams the k-way merge of in-memory traces with automatic
/// collision-free id offsets — [`Trace::merge`]'s record sequence
/// without the materialization. The inputs are infallible, so every
/// item is `Ok`.
pub fn merged_records<'a>(traces: &[&'a Trace]) -> MergeSource<TraceRecords<'a>> {
    let mut sources: Vec<(TraceRecords<'a>, IdOffsets)> = Vec::with_capacity(traces.len());
    let mut off = IdOffsets::default();
    for t in traces {
        sources.push((
            t.records().iter().map(ok_record as fn(&TraceRecord) -> _),
            off,
        ));
        let (o, f, u) = t.max_ids();
        off.open += o + 1;
        off.file += f + 1;
        off.user += u + 1;
    }
    MergeSource::new(sources)
}

/// The `fstrace.pipeline.buffered_records_peak` gauge: the most records
/// any [`ReorderBuffer`] in this process has held at once.
fn buffered_records_peak() -> &'static obs::Gauge {
    static CELL: OnceLock<obs::Gauge> = OnceLock::new();
    CELL.get_or_init(|| obs::global().gauge("fstrace.pipeline.buffered_records_peak"))
}

/// A heap entry ordered by (time, arrival sequence) only.
struct Queued {
    rec: TraceRecord,
    seq: u64,
}

impl Queued {
    fn key(&self) -> (Timestamp, u64) {
        (self.rec.time, self.seq)
    }
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for Queued {}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Re-sorts a bounded-skew record stream into nondecreasing time order.
///
/// The workload engine emits records in scheduling order: each actor
/// step produces records at or after the step's wake time, but two
/// actors interleave, so the raw emission sequence is only *almost*
/// sorted. Buffering the skew window — and nothing more — reproduces
/// exactly what [`Trace::from_records`]'s stable sort would: records
/// come out ordered by time, ties broken by emission order.
///
/// [`release_before`] drains everything strictly before a watermark the
/// producer promises not to emit under again; [`finish`] drains the
/// rest. Occupancy is recorded into the process-wide
/// `fstrace.pipeline.buffered_records_peak` gauge on every push.
///
/// [`release_before`]: ReorderBuffer::release_before
/// [`finish`]: ReorderBuffer::finish
#[derive(Default)]
pub struct ReorderBuffer {
    heap: BinaryHeap<Reverse<Queued>>,
    next_seq: u64,
    peak: usize,
}

impl ReorderBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        ReorderBuffer::default()
    }

    /// Buffers one record.
    pub fn push(&mut self, rec: TraceRecord) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Queued { rec, seq }));
        if self.heap.len() > self.peak {
            self.peak = self.heap.len();
            buffered_records_peak().record(self.peak as u64);
        }
    }

    /// Writes every buffered record whose (quantized) time is strictly
    /// before `watermark_ms` to `sink`, in time order.
    ///
    /// The caller promises that no record pushed later has a quantized
    /// time below the watermark's quantized time; the comparison is
    /// done in 10 ms ticks, matching the records' own granularity.
    pub fn release_before(
        &mut self,
        watermark_ms: u64,
        sink: &mut dyn RecordSink,
    ) -> io::Result<()> {
        let watermark = Timestamp::from_ms(watermark_ms);
        while let Some(Reverse(q)) = self.heap.peek() {
            if q.rec.time >= watermark {
                break;
            }
            let Reverse(q) = self.heap.pop().expect("peeked entry exists");
            sink.write_record(&q.rec)?;
        }
        Ok(())
    }

    /// Drains every remaining record to `sink`, in time order.
    pub fn finish(mut self, sink: &mut dyn RecordSink) -> io::Result<()> {
        while let Some(Reverse(q)) = self.heap.pop() {
            sink.write_record(&q.rec)?;
        }
        Ok(())
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Greatest number of records this buffer has held at once.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AccessMode;
    use crate::trace::TraceBuilder;

    fn client(seed: u64, events: u64) -> Trace {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        for i in 0..events {
            let f = b.new_file_id();
            let t = seed + i * 70;
            let o = b.open(t, f, u, AccessMode::ReadOnly, 1000, false);
            b.close(t + 30, o, 1000);
        }
        b.finish()
    }

    /// Splits a trace's encoded form into blocks of `step` records.
    fn blocks_of(trace: &Trace, step: usize) -> Vec<RecordBlock> {
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for r in trace.records() {
            prev = codec::encode_into(&mut buf, r, prev);
        }
        let mut blocks = Vec::new();
        let mut pos = 0;
        let mut ticks = 0u64;
        while pos < buf.len() {
            let mut b = RecordBlock::new();
            ticks = crate::block::decode_block(&buf, &mut pos, ticks, buf.len(), step, &mut b)
                .expect("well-formed");
            blocks.push(b);
        }
        blocks
    }

    #[test]
    fn block_sources_merge_like_record_sources() {
        let a = client(0, 5);
        let b = client(35, 4);
        let sources: Vec<_> = [&a, &b]
            .into_iter()
            .map(|t| {
                (
                    BlockRecordSource::new(blocks_of(t, 3).into_iter().map(Ok)),
                    IdOffsets::default(),
                )
            })
            .collect();
        let streamed: Vec<TraceRecord> = MergeSource::new(sources)
            .map(|r| r.expect("block merge is infallible here"))
            .collect();
        // The oracle: the same merge over plain record iterators.
        let expected: Vec<TraceRecord> = MergeSource::new(
            [&a, &b]
                .into_iter()
                .map(|t| {
                    (
                        t.records().to_vec().into_iter().map(Ok),
                        IdOffsets::default(),
                    )
                })
                .collect(),
        )
        .map(|r| r.expect("record merge is infallible here"))
        .collect();
        assert_eq!(streamed, expected);
    }

    #[test]
    fn block_source_fuses_after_an_error() {
        let a = client(0, 2);
        let mut blocks: Vec<Result<RecordBlock, DecodeError>> =
            blocks_of(&a, 1).into_iter().map(Ok).collect();
        blocks.insert(1, Err(DecodeError::BadVarint));
        let mut src = BlockRecordSource::new(blocks.into_iter());
        assert!(src.next().unwrap().is_ok());
        assert!(src.next().unwrap().is_err());
        assert!(src.next().is_none());
    }

    #[test]
    fn merge_matches_materialized_trace_merge() {
        let a = client(0, 5);
        let b = client(35, 4);
        let c = client(10, 3);
        let streamed: Vec<TraceRecord> = merged_records(&[&a, &b, &c])
            .map(|r| r.expect("in-memory merge is infallible"))
            .collect();
        let merged = Trace::merge(&[a, b, c]);
        assert_eq!(streamed, merged.records());
    }

    #[test]
    fn merge_ties_prefer_earlier_source() {
        let a = client(100, 1); // open at 100, close at 130
        let b = client(100, 1);
        let recs: Vec<TraceRecord> = merged_records(&[&a, &b]).map(|r| r.unwrap()).collect();
        // Equal timestamps: source 0's record first, like stable sort.
        assert_eq!(recs[0].time, recs[1].time);
        assert_eq!(recs[0].event.open_id(), Some(OpenId(0)));
        assert!(recs[1].event.open_id().map(|o| o.0) > Some(0));
    }

    #[test]
    fn merge_four_way_ties_match_materialized_merge_byte_for_byte() {
        // Four inputs whose records all land on two 10 ms-quantized
        // ticks: opens at 130–132 ms (all tick 13) and closes at
        // 139/140 ms (ticks 13 and 14), so cross-input timestamp
        // collisions are the norm, not the exception. Tie-breaking must
        // be deterministic — input order first, then each input's own
        // order — and must match what materializing the merge (concat +
        // remap + stable sort) produces, down to the encoded bytes.
        let make = |opens: u64| {
            let mut b = TraceBuilder::new();
            let u = b.new_user_id();
            for i in 0..opens {
                let f = b.new_file_id();
                // Same quantized tick for every input, different raw ms.
                let o = b.open(130 + (i % 3), f, u, AccessMode::ReadOnly, 512, false);
                b.close(139 + (i % 2), o, 512);
            }
            b.finish()
        };
        let traces = [make(3), make(2), make(4), make(1)];
        let refs: Vec<&Trace> = traces.iter().collect();
        let streamed: Vec<TraceRecord> = merged_records(&refs)
            .map(|r| r.expect("in-memory merge is infallible"))
            .collect();
        let materialized = Trace::merge(&traces);
        assert_eq!(streamed, materialized.records());
        // Byte-for-byte: the streamed sequence encodes to exactly the
        // materialized trace's binary form.
        assert_eq!(
            Trace::from_records(streamed).to_binary(),
            materialized.to_binary()
        );
        // And the tie order is the documented one: all records share
        // one of two quantized ticks, so the merge's only freedom is
        // the tie-break.
        let ticks: std::collections::BTreeSet<u64> = materialized
            .records()
            .iter()
            .map(|r| r.time.as_ticks())
            .collect();
        assert_eq!(ticks.len(), 2, "every record sits on a tied tick");
    }

    #[test]
    fn merge_of_nothing_is_empty() {
        assert_eq!(merged_records(&[]).count(), 0);
    }

    #[test]
    fn merge_stops_at_first_source_error() {
        let good = vec![Ok(TraceRecord::new(
            0,
            TraceEvent::Unlink {
                file_id: FileId(0),
                user_id: UserId(0),
            },
        ))];
        let bad: Vec<Result<TraceRecord, DecodeError>> = vec![Err(DecodeError::BadVarint)];
        let mut m = MergeSource::new(vec![
            (good.into_iter(), IdOffsets::default()),
            (bad.into_iter(), IdOffsets::default()),
        ]);
        assert!(m.next().expect("first item").is_err());
        assert!(m.next().is_none());
    }

    #[test]
    fn reorder_buffer_matches_stable_sort() {
        // Emission order: interleaved, slightly out of order, with ties.
        let rec = |t: u64, fid: u64| {
            TraceRecord::new(
                t,
                TraceEvent::Unlink {
                    file_id: FileId(fid),
                    user_id: UserId(0),
                },
            )
        };
        let emitted = vec![
            rec(20, 0),
            rec(10, 1),
            rec(20, 2),
            rec(40, 3),
            rec(30, 4),
            rec(40, 5),
        ];
        let mut buf = ReorderBuffer::new();
        let mut out: Vec<TraceRecord> = Vec::new();
        for (i, r) in emitted.iter().enumerate() {
            buf.push(*r);
            if i == 3 {
                // Producer guarantees nothing below t=30 comes later.
                buf.release_before(30, &mut out).unwrap();
            }
        }
        buf.finish(&mut out).unwrap();
        let expected = Trace::from_records(emitted.clone());
        assert_eq!(out, expected.records());
    }

    #[test]
    fn reorder_buffer_tracks_peak() {
        let mut buf = ReorderBuffer::new();
        for t in [30u64, 20, 10] {
            buf.push(TraceRecord::new(
                t,
                TraceEvent::Unlink {
                    file_id: FileId(0),
                    user_id: UserId(0),
                },
            ));
        }
        assert_eq!(buf.peak(), 3);
        let mut out: Vec<TraceRecord> = Vec::new();
        buf.finish(&mut out).unwrap();
        assert!(out.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(obs::global()
            .snapshot()
            .gauge("fstrace.pipeline.buffered_records_peak")
            .is_some_and(|v| v >= 3));
    }

    #[test]
    fn text_sink_writes_parseable_lines() {
        let t = client(0, 2);
        let mut sink = TextSink::new(Vec::new());
        for r in t.records() {
            sink.write_record(r).unwrap();
        }
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(Trace::from_text(&text).unwrap(), t);
    }
}
