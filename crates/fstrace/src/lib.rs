//! Logical-level file system trace format.
//!
//! This crate implements the trace package of Section 3 of *"A
//! Trace-Driven Analysis of the UNIX 4.2 BSD File System"* (Ousterhout et
//! al., SOSP 1985): events are recorded at a **logical** level — files and
//! byte ranges, not disk blocks — and individual `read`/`write` calls are
//! deliberately *not* logged. Because UNIX file I/O is implicitly
//! sequential, the access positions captured at `open`, `close`, and each
//! `seek` reconstruct exactly which byte ranges were transferred
//! (Table II of the paper).
//!
//! The crate provides:
//!
//! * [`TraceEvent`] / [`TraceRecord`] — the seven event kinds of Table II
//!   with 10 ms timestamp quantization.
//! * [`codec`] — a compact varint binary codec and a line-oriented text
//!   codec, with [`TraceWriter`]/[`TraceReader`] streaming adapters.
//! * [`block`] — columnar batched decoding: [`RecordBlock`] column
//!   vectors filled by one pass over a byte slice, the replay hot path,
//!   plus the [`FillBlock`] refill contract that lets consumers reuse
//!   one block's buffers across a whole stream.
//! * [`hash`] — the [`FastMap`]/[`FastSet`] FxHash-style maps used by
//!   every hot id-keyed table in the replay and analysis loops.
//! * [`source`] — streaming [`source::RecordSource`] /
//!   [`source::RecordSink`] contracts, the k-way time-ordered
//!   [`MergeSource`], and the [`ReorderBuffer`] that bounds the memory
//!   of almost-sorted producers.
//! * [`session`] — reconstruction of per-open access patterns
//!   ([`OpenSession`], [`Run`]): the sequential runs, transfer billing at
//!   the next close/seek, and derived file size at close.
//! * [`summary`] — whole-trace statistics in the shape of Table III.
//!
//! # Examples
//!
//! ```
//! use fstrace::{AccessMode, Trace, TraceBuilder};
//!
//! let mut b = TraceBuilder::new();
//! let f = b.new_file_id();
//! let u = b.new_user_id();
//! let o = b.open(1_000, f, u, AccessMode::ReadOnly, 8192, false);
//! b.close(1_250, o, 8192); // Whole-file sequential read.
//! let trace: Trace = b.finish();
//!
//! let sessions = trace.sessions();
//! assert_eq!(sessions.len(), 1);
//! assert!(sessions.all()[0].is_whole_file_transfer());
//! assert_eq!(sessions.all()[0].bytes_transferred(), 8192);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod codec;
mod event;
pub mod hash;
mod ids;
pub mod session;
pub mod source;
pub mod summary;
mod trace;

pub use block::{BlockRecords, FillBlock, FillRecords, RecordBlock};
pub use codec::{TraceReader, TraceWriter};
pub use event::{AccessMode, EventKind, TraceEvent, TraceRecord};
pub use hash::{FastMap, FastSet};
pub use ids::{FileId, OpenId, Timestamp, UserId, TICK_MS};
pub use session::{OpenSession, Run, SessionBuilder, SessionSet};
pub use source::{
    merged_records, BlockRecordSource, FleetMerge, IdOffsets, MergeSource, RecordSink,
    RecordSource, ReorderBuffer, TextSink,
};
pub use summary::TraceSummary;
pub use trace::{Trace, TraceBuilder};
