//! In-memory traces and the convenience builder.

use std::io;

use crate::codec::{self, DecodeError, TraceReader, TraceWriter};
use crate::event::{AccessMode, TraceEvent, TraceRecord};
use crate::ids::{FileId, OpenId, Timestamp, UserId};
use crate::session::SessionSet;
use crate::source::{self, IdOffsets};
use crate::summary::TraceSummary;

/// A complete trace: time-ordered records plus derived views.
///
/// # Examples
///
/// ```
/// use fstrace::{AccessMode, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// let f = b.new_file_id();
/// let u = b.new_user_id();
/// let o = b.open(0, f, u, AccessMode::WriteOnly, 0, true);
/// b.close(100, o, 2048);
/// b.unlink(5_000, f, u);
/// let trace = b.finish();
/// assert_eq!(trace.len(), 3);
/// assert_eq!(trace.duration_ms(), 5_000);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Wraps records, sorting them into time order (stable, so records
    /// with equal timestamps keep their generation order).
    pub fn from_records(mut records: Vec<TraceRecord>) -> Self {
        records.sort_by_key(|r| r.time);
        Trace { records }
    }

    /// The records in time order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Time of the last record minus time of the first, in milliseconds.
    pub fn duration_ms(&self) -> u64 {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => b.time.since(a.time),
            _ => 0,
        }
    }

    /// Time of the last record.
    pub fn end_time(&self) -> Timestamp {
        self.records
            .last()
            .map(|r| r.time)
            .unwrap_or(Timestamp::ZERO)
    }

    /// Reconstructs per-open sessions (see [`SessionSet`]).
    pub fn sessions(&self) -> SessionSet {
        SessionSet::build(&self.records)
    }

    /// Computes Table III-style summary statistics.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary::compute(self)
    }

    /// Exact size of [`Trace::to_binary`]'s output, without encoding.
    pub fn binary_len(&self) -> usize {
        let mut len = codec::MAGIC.len() + 1;
        let mut prev_ticks = 0u64;
        for r in &self.records {
            let (n, ticks) = codec::encoded_len(r, prev_ticks);
            len += n;
            prev_ticks = ticks;
        }
        len
    }

    /// Serializes to the compact binary format.
    pub fn to_binary(&self) -> Vec<u8> {
        // Pre-size exactly (via the codec's sizing mirror) so the
        // buffer never reallocates mid-encode.
        let mut out = Vec::with_capacity(self.binary_len());
        let mut w = TraceWriter::new(&mut out).expect("vec write cannot fail");
        for r in &self.records {
            w.write(r).expect("vec write cannot fail");
        }
        drop(w);
        debug_assert_eq!(out.len(), self.binary_len());
        out
    }

    /// Deserializes from the binary format.
    pub fn from_binary(bytes: &[u8]) -> Result<Self, DecodeError> {
        Ok(Trace {
            records: TraceReader::new(bytes)?.read_all()?,
        })
    }

    /// Writes the text form, one record per line.
    pub fn write_text<W: io::Write>(&self, mut w: W) -> io::Result<()> {
        for r in &self.records {
            writeln!(w, "{}", codec::to_text(r))?;
        }
        Ok(())
    }

    /// Returns the records within `[start_ms, end_ms)`, keeping only
    /// complete sessions: opens whose close falls outside the window are
    /// dropped (with their seeks), as are closes/seeks of earlier opens.
    ///
    /// This is how sub-traces are carved for windowed experiments (e.g.
    /// peak-hour analysis) without introducing session anomalies.
    pub fn slice_time(&self, start_ms: u64, end_ms: u64) -> Trace {
        use std::collections::HashSet;
        // First pass: find opens inside the window whose close is too.
        let mut open_at: std::collections::HashMap<crate::OpenId, u64> =
            std::collections::HashMap::new();
        let mut keep: HashSet<crate::OpenId> = HashSet::new();
        for r in &self.records {
            match r.event {
                TraceEvent::Open { open_id, .. } => {
                    open_at.insert(open_id, r.time.as_ms());
                }
                TraceEvent::Close { open_id, .. } => {
                    if let Some(&t0) = open_at.get(&open_id) {
                        if t0 >= start_ms && r.time.as_ms() < end_ms {
                            keep.insert(open_id);
                        }
                    }
                }
                _ => {}
            }
        }
        let records = self
            .records
            .iter()
            .filter(|r| {
                let t = r.time.as_ms();
                match r.event.open_id() {
                    Some(id) => keep.contains(&id),
                    None => t >= start_ms && t < end_ms,
                }
            })
            .copied()
            .collect();
        Trace { records }
    }

    /// Returns only the records attributable to `user`: their opens (and
    /// the matching seeks/closes) plus their unlink/truncate/execve
    /// events.
    pub fn filter_user(&self, user: UserId) -> Trace {
        use std::collections::HashSet;
        let mut keep: HashSet<OpenId> = HashSet::new();
        let records = self
            .records
            .iter()
            .filter(|r| match r.event {
                TraceEvent::Open {
                    open_id, user_id, ..
                } => {
                    if user_id == user {
                        keep.insert(open_id);
                        true
                    } else {
                        false
                    }
                }
                TraceEvent::Close { open_id, .. } | TraceEvent::Seek { open_id, .. } => {
                    keep.contains(&open_id)
                }
                _ => r.event.user_id() == Some(user),
            })
            .copied()
            .collect();
        Trace { records }
    }

    /// Returns a copy with every open, file, and user id shifted by the
    /// given offsets — the ingredient for collision-free merging.
    pub fn remap_ids(&self, open_off: u64, file_off: u64, user_off: u32) -> Trace {
        let off = IdOffsets {
            open: open_off,
            file: file_off,
            user: user_off,
        };
        Trace {
            records: self
                .records
                .iter()
                .map(|r| source::remap_record(r, off))
                .collect(),
        }
    }

    /// Largest (open id, file id, user id) appearing, for merge offsets.
    pub fn max_ids(&self) -> (u64, u64, u32) {
        let mut o = 0u64;
        let mut fid = 0u64;
        let mut u = 0u32;
        for r in &self.records {
            if let Some(id) = r.event.open_id() {
                o = o.max(id.0);
            }
            if let Some(id) = r.event.file_id() {
                fid = fid.max(id.0);
            }
            if let Some(id) = r.event.user_id() {
                u = u.max(id.0);
            }
        }
        (o, fid, u)
    }

    /// Merges several traces into one time-ordered trace, remapping ids
    /// so that clients never collide — the workload a shared network
    /// file server would see if these machines mounted their files from
    /// it (the scenario Section 6 of the paper opens with).
    ///
    /// A thin wrapper over the streaming k-way
    /// [`merge`](source::merged_records): collecting that source yields
    /// exactly the concatenate-remap-stable-sort sequence this function
    /// always produced, so callers that can consume a stream (the
    /// server experiment) skip the materialization entirely.
    pub fn merge(traces: &[Trace]) -> Trace {
        let refs: Vec<&Trace> = traces.iter().collect();
        let records = source::merged_records(&refs)
            .map(|r| r.expect("in-memory merge is infallible"))
            .collect();
        Trace { records }
    }

    /// Parses the text form produced by [`Trace::write_text`].
    pub fn from_text(text: &str) -> Result<Self, DecodeError> {
        let mut records = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            records.push(codec::from_text(line)?);
        }
        Ok(Trace::from_records(records))
    }
}

/// Builds traces by hand: assigns ids and appends records.
///
/// Intended for tests and synthetic examples. The file system tracer in
/// the `bsdfs` crate produces records directly from syscall activity; the
/// builder is the manual equivalent.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    records: Vec<TraceRecord>,
    next_open: u64,
    next_file: u64,
    next_user: u32,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh file id.
    pub fn new_file_id(&mut self) -> FileId {
        let id = FileId(self.next_file);
        self.next_file += 1;
        id
    }

    /// Allocates a fresh user id.
    pub fn new_user_id(&mut self) -> UserId {
        let id = UserId(self.next_user);
        self.next_user += 1;
        id
    }

    /// Appends an `open`/`create` record and returns its open id.
    pub fn open(
        &mut self,
        time_ms: u64,
        file_id: FileId,
        user_id: UserId,
        mode: AccessMode,
        size: u64,
        created: bool,
    ) -> OpenId {
        let open_id = OpenId(self.next_open);
        self.next_open += 1;
        self.records.push(TraceRecord::new(
            time_ms,
            TraceEvent::Open {
                open_id,
                file_id,
                user_id,
                mode,
                size,
                created,
            },
        ));
        open_id
    }

    /// Appends a `close` record.
    pub fn close(&mut self, time_ms: u64, open_id: OpenId, final_pos: u64) {
        self.records.push(TraceRecord::new(
            time_ms,
            TraceEvent::Close { open_id, final_pos },
        ));
    }

    /// Appends a `seek` record.
    pub fn seek(&mut self, time_ms: u64, open_id: OpenId, old_pos: u64, new_pos: u64) {
        self.records.push(TraceRecord::new(
            time_ms,
            TraceEvent::Seek {
                open_id,
                old_pos,
                new_pos,
            },
        ));
    }

    /// Appends an `unlink` record.
    pub fn unlink(&mut self, time_ms: u64, file_id: FileId, user_id: UserId) {
        self.records.push(TraceRecord::new(
            time_ms,
            TraceEvent::Unlink { file_id, user_id },
        ));
    }

    /// Appends a `truncate` record.
    pub fn truncate(&mut self, time_ms: u64, file_id: FileId, new_len: u64, user_id: UserId) {
        self.records.push(TraceRecord::new(
            time_ms,
            TraceEvent::Truncate {
                file_id,
                new_len,
                user_id,
            },
        ));
    }

    /// Appends an `execve` record.
    pub fn execve(&mut self, time_ms: u64, file_id: FileId, user_id: UserId, size: u64) {
        self.records.push(TraceRecord::new(
            time_ms,
            TraceEvent::Execve {
                file_id,
                user_id,
                size,
            },
        ));
    }

    /// Appends a pre-built record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Finishes the trace, sorting records into time order.
    pub fn finish(self) -> Trace {
        Trace::from_records(self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let f = b.new_file_id();
        let u = b.new_user_id();
        let o = b.open(0, f, u, AccessMode::ReadOnly, 1024, false);
        b.close(500, o, 1024);
        let g = b.new_file_id();
        let o2 = b.open(1_000, g, u, AccessMode::WriteOnly, 0, true);
        b.seek(1_100, o2, 100, 200);
        b.close(1_200, o2, 300);
        b.truncate(2_000, g, 0, u);
        b.unlink(3_000, g, u);
        b.execve(4_000, f, u, 1024);
        b.finish()
    }

    #[test]
    fn builder_assigns_unique_ids() {
        let mut b = TraceBuilder::new();
        assert_ne!(b.new_file_id(), b.new_file_id());
        assert_ne!(b.new_user_id(), b.new_user_id());
        let f = b.new_file_id();
        let u = b.new_user_id();
        let o1 = b.open(0, f, u, AccessMode::ReadOnly, 0, false);
        let o2 = b.open(0, f, u, AccessMode::ReadOnly, 0, false);
        assert_ne!(o1, o2);
    }

    #[test]
    fn from_records_sorts_by_time() {
        let mut b = TraceBuilder::new();
        let f = b.new_file_id();
        let u = b.new_user_id();
        b.unlink(5_000, f, u);
        b.unlink(1_000, f, u);
        let t = b.finish();
        assert!(t.records()[0].time <= t.records()[1].time);
        assert_eq!(t.duration_ms(), 4_000);
    }

    #[test]
    fn binary_roundtrip_preserves_trace() {
        let t = small_trace();
        let bytes = t.to_binary();
        let back = Trace::from_binary(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn to_binary_is_exactly_sized() {
        // Regression: the capacity used to be guessed as len()*8+8,
        // which both over-allocated tiny traces and forced reallocation
        // on traces with wide records. binary_len() must be exact.
        for t in [Trace::default(), small_trace()] {
            let bytes = t.to_binary();
            assert_eq!(bytes.len(), t.binary_len());
        }
        assert_eq!(Trace::default().binary_len(), 5); // Header only.
    }

    #[test]
    fn zero_and_one_record_traces_roundtrip() {
        let empty = Trace::default();
        assert_eq!(Trace::from_binary(&empty.to_binary()).unwrap(), empty);

        let mut b = TraceBuilder::new();
        let f = b.new_file_id();
        let u = b.new_user_id();
        b.execve(123_456, f, u, u64::MAX);
        let one = b.finish();
        let bytes = one.to_binary();
        assert_eq!(bytes.len(), one.binary_len());
        assert_eq!(Trace::from_binary(&bytes).unwrap(), one);
    }

    #[test]
    fn text_roundtrip_preserves_trace() {
        let t = small_trace();
        let mut buf = Vec::new();
        t.write_text(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let t = Trace::from_text("# comment\n\n0 unlink 1 2\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn slice_time_keeps_whole_sessions_only() {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let f = b.new_file_id();
        // Session fully inside [1000, 3000).
        let o1 = b.open(1_000, f, u, AccessMode::ReadOnly, 10, false);
        b.close(1_500, o1, 10);
        // Session straddling the window end.
        let o2 = b.open(2_500, f, u, AccessMode::ReadOnly, 10, false);
        b.seek(2_600, o2, 5, 0);
        b.close(3_500, o2, 5);
        // Unlink inside, execve outside.
        b.unlink(2_000, f, u);
        b.execve(5_000, f, u, 10);
        let t = b.finish();
        let s = t.slice_time(1_000, 3_000);
        let sessions = s.sessions();
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions.anomalies(), 0);
        assert_eq!(sessions.unclosed(), 0);
        assert_eq!(s.len(), 3); // open + close + unlink.
    }

    #[test]
    fn filter_user_keeps_matching_sessions() {
        let mut b = TraceBuilder::new();
        let alice = b.new_user_id();
        let bob = b.new_user_id();
        let f = b.new_file_id();
        let oa = b.open(0, f, alice, AccessMode::ReadOnly, 10, false);
        b.close(10, oa, 10);
        let ob = b.open(20, f, bob, AccessMode::ReadOnly, 10, false);
        b.seek(25, ob, 5, 0);
        b.close(30, ob, 5);
        b.unlink(40, f, alice);
        let t = b.finish();
        let ta = t.filter_user(alice);
        assert_eq!(ta.len(), 3); // Her open/close + her unlink.
        assert_eq!(ta.sessions().anomalies(), 0);
        let tb = t.filter_user(bob);
        assert_eq!(tb.len(), 3); // His open/seek/close.
        assert_eq!(tb.sessions().total_bytes_transferred(), 10); // 5 read, seek back, 5 more.
    }

    #[test]
    fn merge_remaps_ids_without_collisions() {
        let make = |seed: u64| {
            let mut b = TraceBuilder::new();
            let u = b.new_user_id();
            let f = b.new_file_id();
            let o = b.open(seed, f, u, AccessMode::ReadOnly, 100, false);
            b.close(seed + 100, o, 100);
            b.finish()
        };
        let a = make(0);
        let b = make(50);
        let merged = Trace::merge(&[a.clone(), b.clone()]);
        assert_eq!(merged.len(), a.len() + b.len());
        let sessions = merged.sessions();
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions.anomalies(), 0);
        // Ids are distinct across the two sources.
        let mut opens: Vec<u64> = merged
            .records()
            .iter()
            .filter_map(|r| r.event.open_id())
            .map(|o| o.0)
            .collect();
        opens.sort_unstable();
        opens.dedup();
        assert_eq!(opens.len(), 2);
        // Bytes are conserved.
        assert_eq!(
            sessions.total_bytes_transferred(),
            a.sessions().total_bytes_transferred() + b.sessions().total_bytes_transferred()
        );
    }

    #[test]
    fn empty_trace_properties() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.duration_ms(), 0);
        assert_eq!(t.end_time(), Timestamp::ZERO);
        let bytes = t.to_binary();
        assert_eq!(Trace::from_binary(&bytes).unwrap(), t);
    }
}
