//! Binary and text codecs for trace files.
//!
//! The binary format mirrors the paper's concern for trace volume
//! (Section 3): records are tag + LEB128 varints with delta-encoded
//! timestamps, averaging a few bytes per event. The text format is one
//! whitespace-separated line per record, for inspection and interchange.
//!
//! # Binary layout
//!
//! ```text
//! file   := magic version record*
//! magic  := "FSTR"            (4 bytes)
//! version:= 0x01              (1 byte)
//! record := tag:u8 dt:varint payload
//! dt     := timestamp delta from previous record, in 10 ms ticks
//! ```
//!
//! Payloads per tag are sequences of varints (see `encode_into`).

use std::io::{self, Read, Write};
use std::sync::OnceLock;

use crate::block::{decode_block, RecordBlock, BATCH_RECORDS};
use crate::event::{AccessMode, TraceEvent, TraceRecord};
use crate::ids::{FileId, OpenId, Timestamp, UserId};

/// Process-global codec throughput counters, exported via
/// [`obs::global`] under `fstrace.codec.*`.
struct CodecCounters {
    records_encoded: obs::Counter,
    bytes_encoded: obs::Counter,
    records_decoded: obs::Counter,
    bytes_decoded: obs::Counter,
}

fn codec_counters() -> &'static CodecCounters {
    static CELLS: OnceLock<CodecCounters> = OnceLock::new();
    CELLS.get_or_init(|| CodecCounters {
        records_encoded: obs::global().counter("fstrace.codec.records_encoded"),
        bytes_encoded: obs::global().counter("fstrace.codec.bytes_encoded"),
        records_decoded: obs::global().counter("fstrace.codec.records_decoded"),
        bytes_decoded: obs::global().counter("fstrace.codec.bytes_decoded"),
    })
}

/// File magic for binary traces.
pub const MAGIC: [u8; 4] = *b"FSTR";
/// Current binary format version.
pub const VERSION: u8 = 1;

/// Wire tag of an `open` record.
pub const TAG_OPEN: u8 = 1;
/// Wire tag of an `open` record that created the file.
pub const TAG_CREATE: u8 = 2;
/// Wire tag of a `close` record.
pub const TAG_CLOSE: u8 = 3;
/// Wire tag of a `seek` record.
pub const TAG_SEEK: u8 = 4;
/// Wire tag of an `unlink` record.
pub const TAG_UNLINK: u8 = 5;
/// Wire tag of a `truncate` record.
pub const TAG_TRUNCATE: u8 = 6;
/// Wire tag of an `execve` record.
pub const TAG_EXECVE: u8 = 7;

/// Wire code for read-only access.
pub const MODE_RO: u64 = 0;
/// Wire code for write-only access.
pub const MODE_WO: u64 = 1;
/// Wire code for read-write access.
pub const MODE_RW: u64 = 2;

/// Errors produced while decoding a trace.
#[derive(Debug)]
pub enum DecodeError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream did not begin with the expected magic bytes.
    BadMagic,
    /// The stream's format version is not supported.
    BadVersion(u8),
    /// An unknown record tag was encountered.
    BadTag(u8),
    /// A varint was malformed (continuation bits past 64 bits of value).
    BadVarint,
    /// The stream ended in the middle of a record.
    ///
    /// `offset` is the byte position of the failure and `records` the
    /// number of records successfully decoded before it. Low-level
    /// buffer decoders ([`get_varint`], [`decode_from`]) report offsets
    /// relative to the buffer they were given; [`TraceReader`] and the
    /// `tracestore` archive reader rewrite them to absolute stream
    /// positions, so a diagnostic names exactly where the damage is.
    Truncated {
        /// Byte offset of the first byte that could not be decoded.
        offset: u64,
        /// Records successfully decoded before the failure.
        records: u64,
    },
    /// An archive chunk failed its integrity check (`tracestore`).
    CorruptChunk {
        /// Zero-based index of the chunk within the archive.
        index: u64,
        /// Byte offset of the chunk header in the archive file.
        offset: u64,
    },
    /// A field held an out-of-range value (e.g. an unknown access mode).
    BadField(&'static str),
    /// A text line could not be parsed.
    BadLine(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Io(e) => write!(f, "i/o error: {e}"),
            DecodeError::BadMagic => write!(f, "not a trace file (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::BadTag(t) => write!(f, "unknown record tag {t}"),
            DecodeError::BadVarint => write!(f, "malformed varint"),
            DecodeError::Truncated { offset, records } => write!(
                f,
                "truncated record stream at byte offset {offset} (after {records} \
                 complete records)"
            ),
            DecodeError::CorruptChunk { index, offset } => write!(
                f,
                "archive chunk {index} at byte offset {offset} failed its integrity check"
            ),
            DecodeError::BadField(name) => write!(f, "invalid field: {name}"),
            DecodeError::BadLine(line) => write!(f, "unparseable text record: {line:?}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<io::Error> for DecodeError {
    fn from(e: io::Error) -> Self {
        DecodeError::Io(e)
    }
}

/// Number of bytes [`put_varint`] emits for `v`.
pub fn varint_len(v: u64) -> usize {
    let bits = (64 - v.leading_zeros()).max(1) as usize;
    bits.div_ceil(7)
}

/// Appends `v` to `out` as an LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint from `buf` starting at `*pos`.
///
/// Running out of bytes yields [`DecodeError::Truncated`] with a
/// buffer-relative offset (and `records: 0`); callers with stream
/// context rewrite both fields.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or(DecodeError::Truncated {
            offset: *pos as u64,
            records: 0,
        })?;
        *pos += 1;
        if shift >= 64 {
            return Err(DecodeError::BadVarint);
        }
        // Tenth byte: only bit 63 of the value remains, so any higher
        // value bit would silently shift out. Reject instead of wrapping.
        if shift == 63 && byte & 0x7e != 0 {
            return Err(DecodeError::BadVarint);
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn mode_code(mode: AccessMode) -> u64 {
    match mode {
        AccessMode::ReadOnly => MODE_RO,
        AccessMode::WriteOnly => MODE_WO,
        AccessMode::ReadWrite => MODE_RW,
    }
}

fn mode_from_code(code: u64) -> Result<AccessMode, DecodeError> {
    match code {
        MODE_RO => Ok(AccessMode::ReadOnly),
        MODE_WO => Ok(AccessMode::WriteOnly),
        MODE_RW => Ok(AccessMode::ReadWrite),
        _ => Err(DecodeError::BadField("access mode")),
    }
}

/// Encodes one record into `out`, delta-encoding its timestamp against
/// `prev_ticks` (pass 0 for the first record). Returns the record's own
/// tick count for chaining.
pub fn encode_into(out: &mut Vec<u8>, rec: &TraceRecord, prev_ticks: u64) -> u64 {
    let ticks = rec.time.as_ticks();
    let dt = ticks.saturating_sub(prev_ticks);
    match rec.event {
        TraceEvent::Open {
            open_id,
            file_id,
            user_id,
            mode,
            size,
            created,
        } => {
            out.push(if created { TAG_CREATE } else { TAG_OPEN });
            put_varint(out, dt);
            put_varint(out, open_id.0);
            put_varint(out, file_id.0);
            put_varint(out, user_id.0 as u64);
            put_varint(out, mode_code(mode));
            put_varint(out, size);
        }
        TraceEvent::Close { open_id, final_pos } => {
            out.push(TAG_CLOSE);
            put_varint(out, dt);
            put_varint(out, open_id.0);
            put_varint(out, final_pos);
        }
        TraceEvent::Seek {
            open_id,
            old_pos,
            new_pos,
        } => {
            out.push(TAG_SEEK);
            put_varint(out, dt);
            put_varint(out, open_id.0);
            put_varint(out, old_pos);
            put_varint(out, new_pos);
        }
        TraceEvent::Unlink { file_id, user_id } => {
            out.push(TAG_UNLINK);
            put_varint(out, dt);
            put_varint(out, file_id.0);
            put_varint(out, user_id.0 as u64);
        }
        TraceEvent::Truncate {
            file_id,
            new_len,
            user_id,
        } => {
            out.push(TAG_TRUNCATE);
            put_varint(out, dt);
            put_varint(out, file_id.0);
            put_varint(out, new_len);
            put_varint(out, user_id.0 as u64);
        }
        TraceEvent::Execve {
            file_id,
            user_id,
            size,
        } => {
            out.push(TAG_EXECVE);
            put_varint(out, dt);
            put_varint(out, file_id.0);
            put_varint(out, user_id.0 as u64);
            put_varint(out, size);
        }
    }
    ticks
}

/// Exact encoded size of `rec` given the previous record's tick count,
/// plus the record's own tick count for chaining.
///
/// Mirrors [`encode_into`] field for field without materializing any
/// bytes, so callers can pre-size buffers exactly (see
/// `Trace::to_binary`) or report trace volume without re-encoding.
pub fn encoded_len(rec: &TraceRecord, prev_ticks: u64) -> (usize, u64) {
    let ticks = rec.time.as_ticks();
    let dt = ticks.saturating_sub(prev_ticks);
    let payload = match rec.event {
        TraceEvent::Open {
            open_id,
            file_id,
            user_id,
            mode,
            size,
            created: _,
        } => {
            varint_len(open_id.0)
                + varint_len(file_id.0)
                + varint_len(user_id.0 as u64)
                + varint_len(mode_code(mode))
                + varint_len(size)
        }
        TraceEvent::Close { open_id, final_pos } => varint_len(open_id.0) + varint_len(final_pos),
        TraceEvent::Seek {
            open_id,
            old_pos,
            new_pos,
        } => varint_len(open_id.0) + varint_len(old_pos) + varint_len(new_pos),
        TraceEvent::Unlink { file_id, user_id } => {
            varint_len(file_id.0) + varint_len(user_id.0 as u64)
        }
        TraceEvent::Truncate {
            file_id,
            new_len,
            user_id,
        } => varint_len(file_id.0) + varint_len(new_len) + varint_len(user_id.0 as u64),
        TraceEvent::Execve {
            file_id,
            user_id,
            size,
        } => varint_len(file_id.0) + varint_len(user_id.0 as u64) + varint_len(size),
    };
    (1 + varint_len(dt) + payload, ticks)
}

/// Decodes one record from `buf` at `*pos`; `prev_ticks` is the previous
/// record's tick count. Returns the record and its tick count.
pub fn decode_from(
    buf: &[u8],
    pos: &mut usize,
    prev_ticks: u64,
) -> Result<(TraceRecord, u64), DecodeError> {
    let &tag = buf.get(*pos).ok_or(DecodeError::Truncated {
        offset: *pos as u64,
        records: 0,
    })?;
    *pos += 1;
    let dt = get_varint(buf, pos)?;
    // Saturate: a corrupt delta must not wrap the clock (or panic in
    // debug builds).
    let ticks = prev_ticks.saturating_add(dt);
    let time = Timestamp::from_ticks(ticks);
    let event = match tag {
        TAG_OPEN | TAG_CREATE => {
            let open_id = OpenId(get_varint(buf, pos)?);
            let file_id = FileId(get_varint(buf, pos)?);
            let user = get_varint(buf, pos)?;
            let mode = mode_from_code(get_varint(buf, pos)?)?;
            let size = get_varint(buf, pos)?;
            TraceEvent::Open {
                open_id,
                file_id,
                user_id: UserId(u32::try_from(user).map_err(|_| DecodeError::BadField("user id"))?),
                mode,
                size,
                created: tag == TAG_CREATE,
            }
        }
        TAG_CLOSE => TraceEvent::Close {
            open_id: OpenId(get_varint(buf, pos)?),
            final_pos: get_varint(buf, pos)?,
        },
        TAG_SEEK => TraceEvent::Seek {
            open_id: OpenId(get_varint(buf, pos)?),
            old_pos: get_varint(buf, pos)?,
            new_pos: get_varint(buf, pos)?,
        },
        TAG_UNLINK => {
            let file_id = FileId(get_varint(buf, pos)?);
            let user = get_varint(buf, pos)?;
            TraceEvent::Unlink {
                file_id,
                user_id: UserId(u32::try_from(user).map_err(|_| DecodeError::BadField("user id"))?),
            }
        }
        TAG_TRUNCATE => {
            let file_id = FileId(get_varint(buf, pos)?);
            let new_len = get_varint(buf, pos)?;
            let user = get_varint(buf, pos)?;
            TraceEvent::Truncate {
                file_id,
                new_len,
                user_id: UserId(u32::try_from(user).map_err(|_| DecodeError::BadField("user id"))?),
            }
        }
        TAG_EXECVE => {
            let file_id = FileId(get_varint(buf, pos)?);
            let user = get_varint(buf, pos)?;
            let size = get_varint(buf, pos)?;
            TraceEvent::Execve {
                file_id,
                user_id: UserId(u32::try_from(user).map_err(|_| DecodeError::BadField("user id"))?),
                size,
            }
        }
        other => return Err(DecodeError::BadTag(other)),
    };
    Ok((TraceRecord { time, event }, ticks))
}

/// Streaming writer of binary trace files.
///
/// # Examples
///
/// ```
/// use fstrace::{TraceEvent, TraceRecord, TraceWriter, FileId, UserId};
///
/// let mut out = Vec::new();
/// let mut w = TraceWriter::new(&mut out).unwrap();
/// w.write(&TraceRecord::new(0, TraceEvent::Unlink {
///     file_id: FileId(1),
///     user_id: UserId(0),
/// })).unwrap();
/// w.flush().unwrap();
/// assert!(out.starts_with(b"FSTR"));
/// ```
pub struct TraceWriter<W: Write> {
    inner: W,
    buf: Vec<u8>,
    prev_ticks: u64,
    bytes_written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the file header.
    pub fn new(mut inner: W) -> io::Result<Self> {
        inner.write_all(&MAGIC)?;
        inner.write_all(&[VERSION])?;
        Ok(Self {
            inner,
            buf: Vec::with_capacity(64),
            prev_ticks: 0,
            bytes_written: (MAGIC.len() + 1) as u64,
        })
    }

    /// Appends one record.
    ///
    /// Records must be written in nondecreasing time order; out-of-order
    /// timestamps are clamped by the delta encoding.
    pub fn write(&mut self, rec: &TraceRecord) -> io::Result<()> {
        self.buf.clear();
        self.prev_ticks = encode_into(&mut self.buf, rec, self.prev_ticks);
        self.inner.write_all(&self.buf)?;
        self.bytes_written += self.buf.len() as u64;
        let c = codec_counters();
        c.records_encoded.inc();
        c.bytes_encoded.add(self.buf.len() as u64);
        Ok(())
    }

    /// Total bytes emitted so far, including the header.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Buffering bound for one record probe. A *valid* record is at most a
/// tag byte plus six ten-byte varints (61 bytes; the `open` payload is
/// the widest), but proving a varint malformed can read an eleventh
/// byte, so the decoder may touch up to `1 + 6 * 11 = 67` bytes before
/// failing. Buffering this much guarantees a mid-stream decode error is
/// a genuine format error, never an artifact of chunking.
pub(crate) const MAX_RECORD_BYTES: usize = 67;

/// Refill granularity of the incremental reader.
const CHUNK_BYTES: usize = 64 * 1024;

/// Incremental reader of binary trace files.
///
/// The reader pulls from the underlying stream in [`CHUNK_BYTES`]-sized
/// refills and keeps at most one chunk of undecoded bytes buffered, so
/// arbitrarily long trace files decode in O(1) memory. Internally it
/// decodes a whole batch of records at a time into a columnar
/// [`RecordBlock`] (see [`crate::block`]) and serves them out one by
/// one, so [`next_record`], the [`Iterator`] impl and [`read_all`] all
/// share the batched decode loop and one set of `fstrace.codec.*`
/// counters while keeping record-at-a-time semantics — including
/// stream-absolute error offsets — bit-identical to the scalar codec.
///
/// [`next_record`]: TraceReader::next_record
/// [`read_all`]: TraceReader::read_all
pub struct TraceReader<R: Read> {
    inner: R,
    /// Undecoded bytes; `start..` is the live region.
    buf: Vec<u8>,
    start: usize,
    prev_ticks: u64,
    eof: bool,
    /// Set after the first error; a malformed record cannot be
    /// resynchronized, so the reader yields nothing afterwards.
    failed: bool,
    /// Absolute stream offset of `buf[start]` — header plus every byte
    /// decoded so far. Errors report positions relative to this.
    consumed: u64,
    /// Records decoded so far, for truncation diagnostics.
    records: u64,
    /// Current decoded batch; columns are reused across batches.
    block: RecordBlock,
    /// Index of the next unserved record in `block`.
    cursor: usize,
    /// Error found while decoding the current batch, already rewritten
    /// to stream-absolute positions; yielded after the batch's good
    /// prefix has been served.
    pending: Option<DecodeError>,
}

impl<R: Read> TraceReader<R> {
    /// Wraps a stream and validates the file header.
    pub fn new(inner: R) -> Result<Self, DecodeError> {
        let mut r = Self {
            inner,
            buf: Vec::new(),
            start: 0,
            prev_ticks: 0,
            eof: false,
            failed: false,
            consumed: (MAGIC.len() + 1) as u64,
            records: 0,
            block: RecordBlock::new(),
            cursor: 0,
            pending: None,
        };
        r.refill()?;
        if r.buf.len() < MAGIC.len() + 1 || r.buf[..4] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        if r.buf[4] != VERSION {
            return Err(DecodeError::BadVersion(r.buf[4]));
        }
        r.start = MAGIC.len() + 1;
        Ok(r)
    }

    /// Tops the buffer up to at least one maximal record, unless the
    /// stream is exhausted. After this, a decode failure is a genuine
    /// format error, never an artifact of chunking.
    fn refill(&mut self) -> io::Result<()> {
        if self.eof || self.buf.len() - self.start >= MAX_RECORD_BYTES {
            return Ok(());
        }
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        while !self.eof && self.buf.len() < MAX_RECORD_BYTES {
            let old = self.buf.len();
            self.buf.resize(old + CHUNK_BYTES, 0);
            let n = self.inner.read(&mut self.buf[old..])?;
            self.buf.truncate(old + n);
            if n == 0 {
                self.eof = true;
            }
        }
        Ok(())
    }

    /// Decodes the next batch of records into the block. On failure the
    /// batch keeps the good prefix and the error — rewritten from
    /// buffer-relative to stream-absolute positions — is parked until
    /// that prefix has been served.
    fn fill_batch(&mut self) {
        self.block.clear();
        self.cursor = 0;
        if let Err(e) = self.refill() {
            self.pending = Some(e.into());
            return;
        }
        if self.start >= self.buf.len() {
            return;
        }
        // Stop before a record that could spill past the buffered
        // bytes; after the final refill the buffer holds the whole
        // tail, so decode to the end and let truncation surface as a
        // genuine error.
        let limit = if self.eof {
            self.buf.len()
        } else {
            self.buf.len() - (MAX_RECORD_BYTES - 1)
        };
        let mut pos = self.start;
        match decode_block(
            &self.buf,
            &mut pos,
            self.prev_ticks,
            limit,
            BATCH_RECORDS,
            &mut self.block,
        ) {
            Ok(ticks) => self.prev_ticks = ticks,
            Err(e) => {
                if let Some(&t) = self.block.ticks().last() {
                    self.prev_ticks = t;
                }
                self.pending = Some(match e {
                    DecodeError::Truncated { offset, .. } => DecodeError::Truncated {
                        offset: self.consumed + (offset - self.start as u64),
                        records: self.records + self.block.len() as u64,
                    },
                    other => other,
                });
            }
        }
    }

    /// Decodes the next record, refilling the buffer as needed.
    ///
    /// Returns `None` at end of stream; after the first error the
    /// reader is poisoned and yields `None` forever.
    pub fn next_record(&mut self) -> Option<Result<TraceRecord, DecodeError>> {
        if self.failed {
            return None;
        }
        if self.cursor >= self.block.len() && self.pending.is_none() {
            self.fill_batch();
        }
        if self.cursor < self.block.len() {
            let i = self.cursor;
            self.cursor += 1;
            let rec = self.block.get(i);
            let end = self.block.end_offset(i);
            let len = (end - self.start) as u64;
            let c = codec_counters();
            c.records_decoded.inc();
            c.bytes_decoded.add(len);
            self.consumed += len;
            self.records += 1;
            self.start = end;
            return Some(Ok(rec));
        }
        if let Some(e) = self.pending.take() {
            self.failed = true;
            return Some(Err(e));
        }
        None
    }

    /// Absolute byte offset of the next undecoded byte: the header plus
    /// every record decoded so far.
    pub fn byte_offset(&self) -> u64 {
        self.consumed
    }

    /// Records successfully decoded so far.
    pub fn records_decoded(&self) -> u64 {
        self.records
    }

    /// Decodes every remaining record.
    pub fn read_all(mut self) -> Result<Vec<TraceRecord>, DecodeError> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record() {
            out.push(rec?);
        }
        Ok(out)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record()
    }
}

/// Formats a record as one text line.
///
/// The line starts with the time in milliseconds and the event name,
/// followed by the payload fields in Table II order.
pub fn to_text(rec: &TraceRecord) -> String {
    let t = rec.time.as_ms();
    match rec.event {
        TraceEvent::Open {
            open_id,
            file_id,
            user_id,
            mode,
            size,
            created,
        } => {
            let name = if created { "create" } else { "open" };
            let m = match mode {
                AccessMode::ReadOnly => "r",
                AccessMode::WriteOnly => "w",
                AccessMode::ReadWrite => "rw",
            };
            format!(
                "{t} {name} {} {} {} {m} {size}",
                open_id.0, file_id.0, user_id.0
            )
        }
        TraceEvent::Close { open_id, final_pos } => {
            format!("{t} close {} {final_pos}", open_id.0)
        }
        TraceEvent::Seek {
            open_id,
            old_pos,
            new_pos,
        } => format!("{t} seek {} {old_pos} {new_pos}", open_id.0),
        TraceEvent::Unlink { file_id, user_id } => {
            format!("{t} unlink {} {}", file_id.0, user_id.0)
        }
        TraceEvent::Truncate {
            file_id,
            new_len,
            user_id,
        } => format!("{t} truncate {} {new_len} {}", file_id.0, user_id.0),
        TraceEvent::Execve {
            file_id,
            user_id,
            size,
        } => format!("{t} execve {} {} {size}", file_id.0, user_id.0),
    }
}

/// Parses a text line produced by [`to_text`].
pub fn from_text(line: &str) -> Result<TraceRecord, DecodeError> {
    let bad = || DecodeError::BadLine(line.to_string());
    let mut it = line.split_ascii_whitespace();
    let time_ms: u64 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let name = it.next().ok_or_else(bad)?;
    let num = |it: &mut std::str::SplitAsciiWhitespace<'_>| -> Result<u64, DecodeError> {
        it.next().ok_or_else(bad)?.parse().map_err(|_| bad())
    };
    let event = match name {
        "open" | "create" => {
            let open_id = OpenId(num(&mut it)?);
            let file_id = FileId(num(&mut it)?);
            let user_id = UserId(num(&mut it)? as u32);
            let mode = match it.next().ok_or_else(bad)? {
                "r" => AccessMode::ReadOnly,
                "w" => AccessMode::WriteOnly,
                "rw" => AccessMode::ReadWrite,
                _ => return Err(bad()),
            };
            let size = num(&mut it)?;
            TraceEvent::Open {
                open_id,
                file_id,
                user_id,
                mode,
                size,
                created: name == "create",
            }
        }
        "close" => TraceEvent::Close {
            open_id: OpenId(num(&mut it)?),
            final_pos: num(&mut it)?,
        },
        "seek" => TraceEvent::Seek {
            open_id: OpenId(num(&mut it)?),
            old_pos: num(&mut it)?,
            new_pos: num(&mut it)?,
        },
        "unlink" => TraceEvent::Unlink {
            file_id: FileId(num(&mut it)?),
            user_id: UserId(num(&mut it)? as u32),
        },
        "truncate" => TraceEvent::Truncate {
            file_id: FileId(num(&mut it)?),
            new_len: num(&mut it)?,
            user_id: UserId(num(&mut it)? as u32),
        },
        "execve" => TraceEvent::Execve {
            file_id: FileId(num(&mut it)?),
            user_id: UserId(num(&mut it)? as u32),
            size: num(&mut it)?,
        },
        _ => return Err(bad()),
    };
    if it.next().is_some() {
        return Err(bad());
    }
    Ok(TraceRecord::new(time_ms, event))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord::new(
                0,
                TraceEvent::Open {
                    open_id: OpenId(1),
                    file_id: FileId(10),
                    user_id: UserId(5),
                    mode: AccessMode::ReadOnly,
                    size: 4096,
                    created: false,
                },
            ),
            TraceRecord::new(
                50,
                TraceEvent::Seek {
                    open_id: OpenId(1),
                    old_pos: 1024,
                    new_pos: 2048,
                },
            ),
            TraceRecord::new(
                120,
                TraceEvent::Close {
                    open_id: OpenId(1),
                    final_pos: 4096,
                },
            ),
            TraceRecord::new(
                130,
                TraceEvent::Open {
                    open_id: OpenId(2),
                    file_id: FileId(11),
                    user_id: UserId(5),
                    mode: AccessMode::WriteOnly,
                    size: 0,
                    created: true,
                },
            ),
            TraceRecord::new(
                200,
                TraceEvent::Truncate {
                    file_id: FileId(12),
                    new_len: 100,
                    user_id: UserId(6),
                },
            ),
            TraceRecord::new(
                210,
                TraceEvent::Unlink {
                    file_id: FileId(11),
                    user_id: UserId(5),
                },
            ),
            TraceRecord::new(
                1000,
                TraceEvent::Execve {
                    file_id: FileId(20),
                    user_id: UserId(5),
                    size: 90_000,
                },
            ),
        ]
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_truncated_errors() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert!(get_varint(&buf, &mut pos).is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let records = sample_records();
        let mut out = Vec::new();
        let mut w = TraceWriter::new(&mut out).unwrap();
        for r in &records {
            w.write(r).unwrap();
        }
        let written = w.bytes_written();
        drop(w);
        assert_eq!(written as usize, out.len());
        let decoded = TraceReader::new(&out[..]).unwrap().read_all().unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn binary_is_compact() {
        let records = sample_records();
        let mut out = Vec::new();
        let mut w = TraceWriter::new(&mut out).unwrap();
        for r in &records {
            w.write(r).unwrap();
        }
        drop(w);
        // The paper collected ~500-600 bytes/minute for 2-3 events/sec;
        // our records should average well under 16 bytes each.
        assert!(out.len() < records.len() * 16 + 5);
    }

    #[test]
    fn reader_rejects_bad_magic() {
        assert!(matches!(
            TraceReader::new(&b"NOPE\x01"[..]),
            Err(DecodeError::BadMagic)
        ));
    }

    #[test]
    fn reader_rejects_bad_version() {
        assert!(matches!(
            TraceReader::new(&b"FSTR\x63"[..]),
            Err(DecodeError::BadVersion(0x63))
        ));
    }

    #[test]
    fn reader_rejects_bad_tag() {
        let mut data = Vec::new();
        data.extend_from_slice(&MAGIC);
        data.push(VERSION);
        data.push(99); // Bad tag.
        data.push(0);
        let got = TraceReader::new(&data[..]).unwrap().read_all();
        assert!(matches!(got, Err(DecodeError::BadTag(99))));
    }

    #[test]
    fn iterator_stops_after_error() {
        let mut data = Vec::new();
        data.extend_from_slice(&MAGIC);
        data.push(VERSION);
        data.push(99);
        data.push(0);
        let mut it = TraceReader::new(&data[..]).unwrap();
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none());
    }

    #[test]
    fn encoded_len_matches_encode_into() {
        let mut prev_enc = 0u64;
        let mut prev_len = 0u64;
        for r in sample_records() {
            let mut buf = Vec::new();
            prev_enc = encode_into(&mut buf, &r, prev_enc);
            let (len, ticks) = encoded_len(&r, prev_len);
            prev_len = ticks;
            assert_eq!(len, buf.len(), "record {r:?}");
            assert_eq!(ticks, prev_enc);
        }
    }

    #[test]
    fn varint_len_matches_put_varint() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(varint_len(v), buf.len(), "value {v}");
        }
    }

    /// A reader that hands out one byte per `read` call, exercising the
    /// incremental refill paths.
    struct OneByte<'a>(&'a [u8]);

    impl Read for OneByte<'_> {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            match (self.0.split_first(), out.first_mut()) {
                (Some((&b, rest)), Some(slot)) => {
                    *slot = b;
                    self.0 = rest;
                    Ok(1)
                }
                _ => Ok(0),
            }
        }
    }

    #[test]
    fn chunked_decoding_matches_read_all() {
        let records = sample_records();
        let mut out = Vec::new();
        let mut w = TraceWriter::new(&mut out).unwrap();
        for r in &records {
            w.write(r).unwrap();
        }
        drop(w);
        let whole = TraceReader::new(&out[..]).unwrap().read_all().unwrap();
        let mut dribbled = TraceReader::new(OneByte(&out)).unwrap();
        let mut got = Vec::new();
        while let Some(rec) = dribbled.next_record() {
            got.push(rec.unwrap());
        }
        assert_eq!(got, whole);
        assert_eq!(got, records);
    }

    #[test]
    fn truncated_stream_is_an_error_not_silence() {
        let records = sample_records();
        let mut out = Vec::new();
        let mut w = TraceWriter::new(&mut out).unwrap();
        for r in &records {
            w.write(r).unwrap();
        }
        drop(w);
        out.pop(); // Chop the last record mid-payload.
        let got = TraceReader::new(&out[..]).unwrap().read_all();
        assert!(matches!(got, Err(DecodeError::Truncated { .. })));
    }

    #[test]
    fn truncation_error_reports_position_and_record_count() {
        let records = sample_records();
        let mut out = Vec::new();
        let mut w = TraceWriter::new(&mut out).unwrap();
        for r in &records {
            w.write(r).unwrap();
        }
        drop(w);
        let full_len = out.len() as u64;
        out.pop();
        let mut r = TraceReader::new(&out[..]).unwrap();
        let mut decoded = 0u64;
        let err = loop {
            match r.next_record() {
                Some(Ok(_)) => decoded += 1,
                Some(Err(e)) => break e,
                None => panic!("truncated stream must error, not end"),
            }
        };
        // The last record is chopped: everything before it decodes, and
        // the error names the record count and the offset where the
        // incomplete record begins (somewhere inside the final record).
        assert_eq!(decoded, records.len() as u64 - 1);
        match err {
            DecodeError::Truncated { offset, records: n } => {
                assert_eq!(n, decoded);
                assert_eq!(n, r.records_decoded());
                assert!(offset >= r.byte_offset());
                assert!(offset < full_len, "offset {offset} beyond file {full_len}");
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        let msg = DecodeError::Truncated {
            offset: 42,
            records: 7,
        }
        .to_string();
        assert!(msg.contains("42") && msg.contains("7"), "{msg}");
    }

    #[test]
    fn text_roundtrip() {
        for r in sample_records() {
            let line = to_text(&r);
            let back = from_text(&line).unwrap();
            assert_eq!(back, r, "line was {line:?}");
        }
    }

    #[test]
    fn text_rejects_garbage() {
        assert!(from_text("").is_err());
        assert!(from_text("123").is_err());
        assert!(from_text("123 frobnicate 1 2 3").is_err());
        assert!(from_text("123 open 1 2 3 x 100").is_err());
        assert!(from_text("123 close 1 2 3").is_err()); // Trailing field.
        assert!(from_text("abc close 1 2").is_err());
    }

    #[test]
    fn delta_encoding_is_order_robust() {
        // A record earlier than its predecessor is clamped, not wrapped.
        let r1 = TraceRecord::new(
            1000,
            TraceEvent::Close {
                open_id: OpenId(1),
                final_pos: 0,
            },
        );
        let r2 = TraceRecord::new(
            500,
            TraceEvent::Close {
                open_id: OpenId(2),
                final_pos: 0,
            },
        );
        let mut out = Vec::new();
        let mut w = TraceWriter::new(&mut out).unwrap();
        w.write(&r1).unwrap();
        w.write(&r2).unwrap();
        drop(w);
        let decoded = TraceReader::new(&out[..]).unwrap().read_all().unwrap();
        assert_eq!(decoded[1].time, decoded[0].time); // Clamped forward.
    }
}
