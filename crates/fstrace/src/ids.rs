//! Identifier newtypes and the quantized trace clock.

use std::fmt;

/// Timestamp quantum in milliseconds.
///
/// The paper's tracer records times "accurate to approximately 10
/// milliseconds" (Table II); all [`Timestamp`]s are rounded down to this
/// granularity.
pub const TICK_MS: u64 = 10;

/// A trace timestamp: milliseconds since the start of the trace,
/// quantized to [`TICK_MS`].
///
/// # Examples
///
/// ```
/// use fstrace::Timestamp;
///
/// let t = Timestamp::from_ms(1234);
/// assert_eq!(t.as_ms(), 1230); // Quantized down to 10 ms.
/// assert_eq!(t.as_secs_f64(), 1.23);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The zero timestamp (trace start).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from raw milliseconds, quantizing down to the
    /// 10 ms tracer granularity.
    pub fn from_ms(ms: u64) -> Self {
        Timestamp(ms / TICK_MS * TICK_MS)
    }

    /// Creates a timestamp from 10 ms ticks, saturating at the end of
    /// time — adversarial tick counts from corrupt traces must not
    /// overflow (and panic in debug builds).
    pub fn from_ticks(ticks: u64) -> Self {
        Timestamp(ticks.saturating_mul(TICK_MS))
    }

    /// The timestamp in milliseconds.
    pub fn as_ms(self) -> u64 {
        self.0
    }

    /// The timestamp in 10 ms ticks.
    pub fn as_ticks(self) -> u64 {
        self.0 / TICK_MS
    }

    /// The timestamp in whole seconds, rounded down.
    pub fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// The timestamp in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Milliseconds elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}s", self.0 / 1000, self.0 % 1000)
    }
}

/// A unique identifier assigned to each `open` system call.
///
/// Distinguishes concurrent accesses to the same file (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpenId(pub u64);

/// A unique identifier for a file.
///
/// In the real tracer this was derived from the device and i-number; here
/// it is an opaque 64-bit value assigned by the file system or trace
/// builder. Identifiers are never reused, even after `unlink`, so a file
/// recreated under the same name gets a fresh id — exactly the property
/// the lifetime analysis relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

/// The account under which an operation was invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u32);

impl fmt::Display for OpenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantizes_down_to_tick() {
        assert_eq!(Timestamp::from_ms(0).as_ms(), 0);
        assert_eq!(Timestamp::from_ms(9).as_ms(), 0);
        assert_eq!(Timestamp::from_ms(10).as_ms(), 10);
        assert_eq!(Timestamp::from_ms(1999).as_ms(), 1990);
    }

    #[test]
    fn tick_roundtrip() {
        let t = Timestamp::from_ticks(123);
        assert_eq!(t.as_ms(), 1230);
        assert_eq!(t.as_ticks(), 123);
    }

    #[test]
    fn since_saturates() {
        let a = Timestamp::from_ms(100);
        let b = Timestamp::from_ms(300);
        assert_eq!(b.since(a), 200);
        assert_eq!(a.since(b), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Timestamp::from_ms(1230).to_string(), "1.230s");
        assert_eq!(OpenId(5).to_string(), "o5");
        assert_eq!(FileId(7).to_string(), "f7");
        assert_eq!(UserId(3).to_string(), "u3");
    }

    #[test]
    fn ordering() {
        assert!(Timestamp::from_ms(10) < Timestamp::from_ms(20));
        assert_eq!(Timestamp::from_ms(15), Timestamp::from_ms(10));
    }
}
