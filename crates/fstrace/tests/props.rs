//! Property-based tests for the trace format.

use proptest::prelude::*;

use fstrace::block::{decode_block, get_varint_fast, RecordBlock};
use fstrace::codec::{decode_from, from_text, get_varint, to_text, DecodeError};
use fstrace::source::remap_record;
use fstrace::{
    merged_records, AccessMode, FileId, IdOffsets, OpenId, ReorderBuffer, Timestamp, Trace,
    TraceEvent, TraceReader, TraceRecord, UserId,
};

/// Whole-buffer scalar decode: the oracle both batched paths must match
/// record for record and error for error.
fn scalar_decode(buf: &[u8]) -> (Vec<TraceRecord>, Option<DecodeError>) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut prev = 0u64;
    while pos < buf.len() {
        match decode_from(buf, &mut pos, prev) {
            Ok((r, t)) => {
                out.push(r);
                prev = t;
            }
            Err(e) => return (out, Some(e)),
        }
    }
    (out, None)
}

/// Batched decode of the same buffer, in deliberately small batches so
/// the cross-batch tick chaining is exercised.
fn batched_decode(buf: &[u8]) -> (Vec<TraceRecord>, Option<DecodeError>) {
    let mut block = RecordBlock::new();
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut prev = 0u64;
    while pos < buf.len() {
        match decode_block(buf, &mut pos, prev, buf.len(), 7, &mut block) {
            Ok(t) => {
                prev = t;
                block.append_to(&mut out);
                if block.is_empty() {
                    break;
                }
            }
            Err(e) => {
                block.append_to(&mut out);
                return (out, Some(e));
            }
        }
    }
    (out, None)
}

fn assert_same_outcome(
    scalar: (Vec<TraceRecord>, Option<DecodeError>),
    batched: (Vec<TraceRecord>, Option<DecodeError>),
) {
    assert_eq!(scalar.0, batched.0);
    assert_eq!(format!("{:?}", scalar.1), format!("{:?}", batched.1));
}

fn arb_mode() -> impl Strategy<Value = AccessMode> {
    prop_oneof![
        Just(AccessMode::ReadOnly),
        Just(AccessMode::WriteOnly),
        Just(AccessMode::ReadWrite),
    ]
}

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (
            0u64..1000,
            0u64..1000,
            0u32..64,
            arb_mode(),
            0u64..10_000_000,
            any::<bool>()
        )
            .prop_map(|(o, f, u, mode, size, created)| TraceEvent::Open {
                open_id: OpenId(o),
                file_id: FileId(f),
                user_id: UserId(u),
                mode,
                size,
                created,
            }),
        (0u64..1000, 0u64..10_000_000).prop_map(|(o, p)| TraceEvent::Close {
            open_id: OpenId(o),
            final_pos: p,
        }),
        (0u64..1000, 0u64..10_000_000, 0u64..10_000_000).prop_map(|(o, a, b)| {
            TraceEvent::Seek {
                open_id: OpenId(o),
                old_pos: a,
                new_pos: b,
            }
        }),
        (0u64..1000, 0u32..64).prop_map(|(f, u)| TraceEvent::Unlink {
            file_id: FileId(f),
            user_id: UserId(u),
        }),
        (0u64..1000, 0u64..10_000_000, 0u32..64).prop_map(|(f, l, u)| TraceEvent::Truncate {
            file_id: FileId(f),
            new_len: l,
            user_id: UserId(u),
        }),
        (0u64..1000, 0u32..64, 0u64..10_000_000).prop_map(|(f, u, s)| TraceEvent::Execve {
            file_id: FileId(f),
            user_id: UserId(u),
            size: s,
        }),
    ]
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u64..1_000_000u64, arb_event()), 0..200).prop_map(|pairs| {
        Trace::from_records(
            pairs
                .into_iter()
                .map(|(t, e)| TraceRecord::new(t, e))
                .collect(),
        )
    })
}

/// Like [`arb_trace`] but over a handful of 10 ms ticks, so traces
/// collide on timestamps constantly — the interesting regime for merge
/// tie-breaking.
fn arb_tied_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u64..300u64, arb_event()), 0..60).prop_map(|pairs| {
        Trace::from_records(
            pairs
                .into_iter()
                .map(|(t, e)| TraceRecord::new(t, e))
                .collect(),
        )
    })
}

/// A reader returning at most `chunk` bytes per call, exercising the
/// incremental decoder's refill path at every possible split point.
struct TrickleReader<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl std::io::Read for TrickleReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    /// Binary encode/decode is the identity on any trace.
    #[test]
    fn binary_roundtrip(trace in arb_trace()) {
        let bytes = trace.to_binary();
        let back = Trace::from_binary(&bytes).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// Text encode/decode is the identity on any record.
    #[test]
    fn text_roundtrip(t in 0u64..1_000_000u64, e in arb_event()) {
        let rec = TraceRecord::new(t, e);
        let back = from_text(&to_text(&rec)).unwrap();
        prop_assert_eq!(back, rec);
    }

    /// Timestamps quantize down and never up.
    #[test]
    fn timestamp_quantization(ms in 0u64..u64::MAX / 2) {
        let t = Timestamp::from_ms(ms);
        prop_assert!(t.as_ms() <= ms);
        prop_assert!(ms - t.as_ms() < 10);
        prop_assert_eq!(t.as_ms() % 10, 0);
    }

    /// Session reconstruction conserves transferred bytes: the sum over
    /// runs equals the positional deltas implied by the raw events.
    #[test]
    fn sessions_conserve_bytes(
        moves in prop::collection::vec((0u64..5000u64, 0u64..5000u64), 0..10),
        final_extra in 0u64..5000u64,
    ) {
        // Build one well-formed session: seeks with old_pos = current pos
        // + an advance, so every event is consistent.
        let mut b = fstrace::TraceBuilder::new();
        let f = b.new_file_id();
        let u = b.new_user_id();
        let o = b.open(0, f, u, AccessMode::ReadWrite, 10_000, false);
        let mut pos = 0u64;
        let mut expected = 0u64;
        let mut time = 10u64;
        for (advance, target) in moves {
            let old = pos + advance;
            expected += advance;
            b.seek(time, o, old, target);
            pos = target;
            time += 10;
        }
        b.close(time, o, pos + final_extra);
        expected += final_extra;
        let trace = b.finish();
        let sessions = trace.sessions();
        prop_assert_eq!(sessions.anomalies(), 0);
        prop_assert_eq!(sessions.total_bytes_transferred(), expected);
    }

    /// Summary event counts always sum to the record count.
    #[test]
    fn summary_counts_sum(trace in arb_trace()) {
        let s = trace.summary();
        let total: u64 = s.event_counts.iter().sum();
        prop_assert_eq!(total, s.records);
        prop_assert_eq!(s.records, trace.len() as u64);
    }

    /// Every proper prefix of a valid binary trace decodes to a clean
    /// error or a shorter record list — never a panic, never phantom
    /// records beyond what the prefix holds.
    #[test]
    fn truncated_binary_never_panics(trace in arb_trace(), cut in 0usize..4096) {
        let bytes = trace.to_binary();
        let cut = cut % bytes.len().max(1); // Proper prefix of any length.
        match Trace::from_binary(&bytes[..cut]) {
            Ok(t) => prop_assert!(t.len() <= trace.len()),
            Err(e) => {
                // The error formats without panicking, too.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }

    /// Records with timestamps at and around the 10 ms quantization
    /// boundary survive a binary round trip: encoding uses quantized
    /// tick deltas, so two records in the same tick must not drift.
    #[test]
    fn quantization_edge_roundtrip(
        base in 0u64..1_000_000u64,
        offsets in prop::collection::vec(0u64..30, 1..20),
        e in arb_event(),
    ) {
        // Timestamps cluster within a few ticks of `base`, hitting the
        // x9/x0 boundaries where quantized deltas could misaccumulate.
        let mut ms: Vec<u64> = offsets.iter().map(|&o| base + o).collect();
        ms.sort_unstable();
        let records: Vec<TraceRecord> = ms
            .iter()
            .map(|&t| TraceRecord::new(t, e))
            .collect();
        let trace = Trace::from_records(records.clone());
        let back = Trace::from_binary(&trace.to_binary()).unwrap();
        prop_assert_eq!(back.len(), records.len());
        for (got, want) in back.records().iter().zip(&records) {
            // The codec stores quantized ticks: each decoded time must
            // equal the quantized original exactly (no cumulative
            // drift), and quantization only rounds down, within 10 ms.
            prop_assert_eq!(got.time, want.time);
            prop_assert_eq!(got.time.as_ms(), want.time.as_ms() / 10 * 10);
        }
    }

    /// The streaming k-way merge emits exactly what concatenate, remap,
    /// stable-sort of the materialized inputs would — equal timestamps
    /// resolve to input order, and each input's internal order is kept.
    /// The tied time range makes cross-input collisions the common case.
    #[test]
    fn merge_matches_concat_remap_stable_sort(
        traces in prop::collection::vec(arb_tied_trace(), 0..4),
    ) {
        let refs: Vec<&Trace> = traces.iter().collect();
        let streamed: Vec<TraceRecord> = merged_records(&refs)
            .map(|r| r.expect("in-memory merge is infallible"))
            .collect();
        // Independent model: concatenate the remapped inputs in order
        // and let from_records' stable sort arrange them.
        let mut off = IdOffsets::default();
        let mut concat: Vec<TraceRecord> = Vec::new();
        for t in &traces {
            concat.extend(t.records().iter().map(|r| remap_record(r, off)));
            let (o, f, u) = t.max_ids();
            off.open += o + 1;
            off.file += f + 1;
            off.user += u + 1;
        }
        let model = Trace::from_records(concat);
        prop_assert_eq!(&streamed[..], model.records());
    }

    /// The reorder buffer's watermark protocol reproduces the stable
    /// sort for any emission sequence that honors the promise: records
    /// pushed after `release_before(w)` never land below `w`.
    #[test]
    fn reorder_buffer_equals_stable_sort(
        early in prop::collection::vec((0u64..1000u64, arb_event()), 0..50),
        late in prop::collection::vec((0u64..1000u64, arb_event()), 0..50),
        watermark in 0u64..1000,
    ) {
        let early: Vec<TraceRecord> = early
            .into_iter()
            .map(|(t, e)| TraceRecord::new(t, e))
            .collect();
        let late: Vec<TraceRecord> = late
            .into_iter()
            .map(|(t, e)| TraceRecord::new(watermark + t, e))
            .collect();
        let mut buf = ReorderBuffer::new();
        let mut out: Vec<TraceRecord> = Vec::new();
        for r in &early {
            buf.push(*r);
        }
        buf.release_before(watermark, &mut out).unwrap();
        // Early releases stay strictly below the quantized watermark.
        let w = Timestamp::from_ms(watermark);
        prop_assert!(out.iter().all(|r| r.time < w));
        for r in &late {
            buf.push(*r);
        }
        buf.finish(&mut out).unwrap();
        let mut all = early;
        all.extend(late.iter().copied());
        let expected = Trace::from_records(all);
        prop_assert_eq!(&out[..], expected.records());
    }

    /// Incremental decoding through an adversarially tiny reader (down
    /// to one byte per read) yields the same records as whole-buffer
    /// decoding, for any chunk size.
    #[test]
    fn chunked_reader_matches_from_binary(trace in arb_trace(), chunk in 1usize..17) {
        let bytes = trace.to_binary();
        let reader = TrickleReader { data: &bytes, pos: 0, chunk };
        let records: Vec<TraceRecord> = TraceReader::new(reader)
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        prop_assert_eq!(&records[..], trace.records());
    }

    /// `binary_len` predicts the encoded size exactly for any trace, so
    /// `to_binary` never reallocates.
    #[test]
    fn binary_len_is_exact(trace in arb_trace()) {
        prop_assert_eq!(trace.to_binary().len(), trace.binary_len());
    }

    /// Adversarial byte strings: the scalar and unrolled varint readers
    /// agree on every input — same value and position on success, same
    /// error otherwise. The biased second half raises the density of
    /// continuation bytes, the regime where overflow handling lives.
    #[test]
    fn varint_readers_agree_on_adversarial_bytes(
        bytes in prop::collection::vec(
            prop_oneof![any::<u8>(), 0x80u8..=0xFFu8],
            0..24,
        ),
    ) {
        let mut p1 = 0usize;
        let mut p2 = 0usize;
        let r1 = get_varint(&bytes, &mut p1);
        let r2 = get_varint_fast(&bytes, &mut p2);
        match (&r1, &r2) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a, b);
                prop_assert_eq!(p1, p2);
            }
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            _ => prop_assert!(false, "readers disagree: {:?} vs {:?}", r1, r2),
        }
    }

    /// Varints can never decode to a value that re-encodes wider than
    /// it was read — the overflow fix means silent wrapping is gone.
    #[test]
    fn varint_never_wraps_silently(v in any::<u64>(), junk in 0u8..4) {
        // A valid encoding plus `junk` spurious continuation bytes must
        // either decode to exactly `v` (junk untouched) or error.
        let mut buf = Vec::new();
        fstrace::codec::put_varint(&mut buf, v);
        for _ in 0..junk {
            let last = buf.len() - 1;
            buf[last] |= 0x80;
            buf.push(0x01);
        }
        for reader in [get_varint, get_varint_fast as fn(&[u8], &mut usize) -> _] {
            let mut pos = 0usize;
            match reader(&buf, &mut pos) {
                Ok(got) if junk == 0 => prop_assert_eq!(got, v),
                Ok(got) => {
                    // Extending the encoding may still be in range; the
                    // decoded value must then be bit-exact, never wrapped.
                    let mut re = Vec::new();
                    fstrace::codec::put_varint(&mut re, got);
                    prop_assert!(re.len() <= buf.len());
                }
                Err(_) => {}
            }
        }
    }

    /// Batched ≡ scalar on pure adversarial byte soup.
    #[test]
    fn decoders_agree_on_adversarial_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        assert_same_outcome(scalar_decode(&bytes), batched_decode(&bytes));
    }

    /// Batched ≡ scalar on corrupted real traces: a valid record stream
    /// with one byte flipped and random trailing garbage. This walks
    /// the deep error paths (bad tags, bad modes, out-of-range users,
    /// truncations mid-payload) that byte soup rarely reaches.
    #[test]
    fn decoders_agree_on_corrupted_traces(
        trace in arb_trace(),
        tail in prop::collection::vec(any::<u8>(), 0..40),
        flip in 0usize..4096,
        xor in any::<u8>(),
    ) {
        let mut bytes = trace.to_binary()[5..].to_vec();
        bytes.extend(tail);
        if !bytes.is_empty() {
            let i = flip % bytes.len();
            bytes[i] ^= xor;
        }
        assert_same_outcome(scalar_decode(&bytes), batched_decode(&bytes));
    }

    /// Batched ≡ scalar on every valid trace (the bit-identity claim on
    /// the success path, including timestamps resolved across batches).
    #[test]
    fn decoders_agree_on_valid_traces(trace in arb_trace()) {
        let bytes = trace.to_binary();
        let (recs, err) = batched_decode(&bytes[5..]);
        prop_assert!(err.is_none());
        prop_assert_eq!(&recs[..], trace.records());
    }
}

/// The batched `TraceReader` reports truncation exactly like the scalar
/// whole-buffer oracle at *every* possible prefix of a stream — same
/// surviving records, same stream-absolute offset, same record count —
/// regardless of how the underlying reader chunks its bytes.
#[test]
fn truncation_at_every_prefix_matches_scalar_offsets() {
    let mut b = fstrace::TraceBuilder::new();
    let u = b.new_user_id();
    for i in 0..40u64 {
        let f = b.new_file_id();
        let o = b.open(i * 37, f, u, AccessMode::ReadWrite, 100 + i * 1000, false);
        b.seek(i * 37 + 5, o, 50, 0);
        b.close(i * 37 + 9, o, 100 + i * 1000);
    }
    let trace = b.finish();
    let bytes = trace.to_binary();
    assert!(bytes.len() > 100);
    for cut in 5..=bytes.len() {
        let slice = &bytes[..cut];
        let (want_recs, want_err) = scalar_decode(&slice[5..]);
        for chunk in [usize::MAX, 7] {
            let reader = TrickleReader {
                data: slice,
                pos: 0,
                chunk,
            };
            let mut r = TraceReader::new(reader).unwrap();
            let mut got = Vec::new();
            let got_err = loop {
                match r.next_record() {
                    Some(Ok(rec)) => got.push(rec),
                    Some(Err(e)) => break Some(e),
                    None => break None,
                }
            };
            assert_eq!(got, want_recs, "cut {cut} chunk {chunk}");
            match (&want_err, &got_err) {
                (None, None) => {}
                (
                    Some(DecodeError::Truncated { offset, .. }),
                    Some(DecodeError::Truncated {
                        offset: got_off,
                        records: got_n,
                    }),
                ) => {
                    // The oracle offset is payload-relative; the reader
                    // reports it stream-absolute (header included).
                    assert_eq!(*got_off, offset + 5, "cut {cut} chunk {chunk}");
                    assert_eq!(*got_n, want_recs.len() as u64, "cut {cut}");
                    assert_eq!(r.records_decoded(), want_recs.len() as u64);
                    assert!(*got_off >= r.byte_offset());
                }
                (a, b) => assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "cut {cut} chunk {chunk}"
                ),
            }
        }
    }
}
