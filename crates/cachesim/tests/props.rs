//! Property-based tests for the block cache engine and the replay.

use cachesim::{
    replay_events, stack, sweep, BlockCache, CacheConfig, Replacement, Simulator, WritePolicy,
};
use fstrace::{AccessMode, FileId, OpenId, Trace, TraceBuilder, TraceEvent, TraceRecord, UserId};
use proptest::prelude::*;

fn cfg(blocks: u64) -> CacheConfig {
    CacheConfig {
        cache_bytes: blocks * 4096,
        block_size: 4096,
        write_policy: WritePolicy::DelayedWrite,
        ..CacheConfig::default()
    }
}

/// A naive LRU model: a Vec ordered most-recent-first.
struct NaiveLru {
    cap: usize,
    order: Vec<(u64, u64)>, // (file, block), MRU first.
    hits: u64,
    misses: u64,
}

impl NaiveLru {
    fn access(&mut self, key: (u64, u64)) {
        match self.order.iter().position(|&k| k == key) {
            Some(i) => {
                self.hits += 1;
                let k = self.order.remove(i);
                self.order.insert(0, k);
            }
            None => {
                self.misses += 1;
                self.order.insert(0, key);
                if self.order.len() > self.cap {
                    self.order.pop();
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The intrusive-list cache agrees with a naive LRU model on hits,
    /// misses, and the full recency ordering.
    #[test]
    fn lru_matches_naive_model(
        cap in 1u64..16,
        accesses in prop::collection::vec((0u64..4, 0u64..24), 1..300),
    ) {
        let mut cache = BlockCache::new(&cfg(cap));
        let mut model = NaiveLru { cap: cap as usize, order: Vec::new(), hits: 0, misses: 0 };
        for (i, &(f, b)) in accesses.iter().enumerate() {
            cache.read(
                cachesim::BlockId { file: FileId(f), block: b },
                i as u64,
            );
            model.access((f, b));
        }
        prop_assert_eq!(cache.metrics.read_hits, model.hits);
        prop_assert_eq!(cache.metrics.disk_reads, model.misses);
        let got: Vec<(u64, u64)> = cache
            .contents_mru()
            .iter()
            .map(|id| (id.file.0, id.block))
            .collect();
        prop_assert_eq!(got, model.order);
    }

    /// Under FIFO, contents are the most recently inserted distinct keys
    /// and hit counts still match a set-based model.
    #[test]
    fn fifo_hit_counts(
        cap in 1u64..16,
        accesses in prop::collection::vec((0u64..3, 0u64..16), 1..200),
    ) {
        let mut config = cfg(cap);
        config.replacement = Replacement::Fifo;
        let mut cache = BlockCache::new(&config);
        let mut order: Vec<(u64, u64)> = Vec::new(); // Insertion order, newest first.
        let mut hits = 0u64;
        for (i, &(f, b)) in accesses.iter().enumerate() {
            let key = (f, b);
            if order.contains(&key) {
                hits += 1;
            } else {
                order.insert(0, key);
                if order.len() > cap as usize {
                    order.pop();
                }
            }
            cache.read(
                cachesim::BlockId { file: FileId(f), block: b },
                i as u64,
            );
        }
        prop_assert_eq!(cache.metrics.read_hits, hits);
    }

    /// LRU inclusion: a larger cache never misses more on the same
    /// access stream.
    #[test]
    fn lru_inclusion_property(
        accesses in prop::collection::vec((0u64..4, 0u64..32), 1..400),
        small in 1u64..8,
        extra in 1u64..16,
    ) {
        let run = |cap: u64| {
            let mut c = BlockCache::new(&cfg(cap));
            for (i, &(f, b)) in accesses.iter().enumerate() {
                c.read(cachesim::BlockId { file: FileId(f), block: b }, i as u64);
            }
            c.metrics.disk_reads
        };
        prop_assert!(run(small + extra) <= run(small));
    }

    /// Replay conservation: logical accesses equal the number of blocks
    /// spanned by all runs, independent of cache configuration.
    #[test]
    fn replay_conserves_block_accesses(
        files in prop::collection::vec((0u64..20_000u64, 1u64..40_000u64), 1..40),
        cache_blocks in 1u64..64,
    ) {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let mut expected = 0u64;
        let bs = 4096u64;
        for (i, &(offset, len)) in files.iter().enumerate() {
            let f = b.new_file_id();
            let t = i as u64 * 1000;
            let size = offset + len;
            let o = b.open(t, f, u, AccessMode::ReadOnly, size, false);
            if offset > 0 {
                b.seek(t + 10, o, 0, offset);
            }
            b.close(t + 20, o, size);
            expected += (size - 1) / bs - offset / bs + 1;
        }
        let m = Simulator::run(&b.finish(), &cfg(cache_blocks));
        prop_assert_eq!(m.logical_reads, expected);
        prop_assert_eq!(m.logical_writes, 0);
        // Disk reads are bounded by logical reads.
        prop_assert!(m.disk_reads <= m.logical_reads);
    }
}

fn arb_mode() -> impl Strategy<Value = AccessMode> {
    prop_oneof![
        Just(AccessMode::ReadOnly),
        Just(AccessMode::WriteOnly),
        Just(AccessMode::ReadWrite),
    ]
}

/// Raw events with tight id ranges: opens and closes pair up often,
/// and the expander also sees every anomaly (orphan closes, reused
/// open ids, seeks on dead handles).
fn arb_raw_event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (
            0u64..10,
            0u64..6,
            0u32..4,
            arb_mode(),
            0u64..200_000,
            any::<bool>()
        )
            .prop_map(|(o, f, u, mode, size, created)| TraceEvent::Open {
                open_id: OpenId(o),
                file_id: FileId(f),
                user_id: UserId(u),
                mode,
                size,
                created,
            }),
        (0u64..10, 0u64..200_000).prop_map(|(o, p)| TraceEvent::Close {
            open_id: OpenId(o),
            final_pos: p,
        }),
        (0u64..10, 0u64..200_000, 0u64..200_000).prop_map(|(o, a, b)| TraceEvent::Seek {
            open_id: OpenId(o),
            old_pos: a,
            new_pos: b,
        }),
        (0u64..6, 0u32..4).prop_map(|(f, u)| TraceEvent::Unlink {
            file_id: FileId(f),
            user_id: UserId(u),
        }),
        (0u64..6, 0u64..200_000, 0u32..4).prop_map(|(f, l, u)| TraceEvent::Truncate {
            file_id: FileId(f),
            new_len: l,
            user_id: UserId(u),
        }),
        (0u64..6, 0u32..4, 0u64..200_000).prop_map(|(f, u, s)| TraceEvent::Execve {
            file_id: FileId(f),
            user_id: UserId(u),
            size: s,
        }),
    ]
}

fn arb_raw_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u64..200_000u64, arb_raw_event()), 0..150).prop_map(|pairs| {
        Trace::from_records(
            pairs
                .into_iter()
                .map(|(t, e)| TraceRecord::new(t, e))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streaming expand-and-replay (records fed one at a time through
    /// the expander into the replayer) equals batch expansion followed
    /// by batch replay, for any trace and cache size.
    #[test]
    fn streaming_replay_matches_batch_expansion(
        trace in arb_raw_trace(),
        blocks in 1u64..64,
    ) {
        let config = cfg(blocks);
        let batch = Simulator::run_events(&replay_events(&trace, &config), &config);
        let streamed = Simulator::run(&trace, &config);
        prop_assert_eq!(streamed, batch);
    }

    /// One stack-distance pass reproduces the direct simulator exactly
    /// — misses, disk I/O, dirty accounting, residency — for every
    /// write policy at every capacity of the paper's Figure 5 / Table
    /// VI axis (the 390 kB and 16 MB endpoints in 4 kB blocks) plus
    /// small capacities that force evictions, pruning, and hole
    /// consumption on these short random traces.
    #[test]
    fn stack_profile_matches_direct_simulation(trace in arb_raw_trace()) {
        let caps_blocks = [1u64, 2, 3, 5, 8, 13, 97, 4096];
        let cells: Vec<CacheConfig> = caps_blocks
            .iter()
            .flat_map(|&blocks| {
                WritePolicy::TABLE_VI.into_iter().map(move |policy| CacheConfig {
                    cache_bytes: blocks * 4096,
                    block_size: 4096,
                    write_policy: policy,
                    ..CacheConfig::default()
                })
            })
            .collect();
        let events = replay_events(&trace, &cells[0]);
        let profiled = stack::profile_events(&events, &cells).expect("profilable cells");
        prop_assert_eq!(profiled.len(), cells.len());
        for (config, got) in cells.iter().zip(profiled) {
            let want = Simulator::run(&trace, config);
            prop_assert_eq!(got, want, "config {:?}", config);
        }
    }

    /// The shared-expansion sweep is bit-identical to simulating each
    /// configuration alone, for any worker count — across expansion
    /// groups with several cells (same block size, different sizes and
    /// write policies) and the single-cell streaming path.
    #[test]
    fn sweep_source_matches_individual_runs(
        trace in arb_raw_trace(),
        jobs in 1usize..5,
    ) {
        let mut configs = Vec::new();
        for block_size in [4096u64, 8192] {
            for blocks in [4u64, 16] {
                for policy in [WritePolicy::DelayedWrite, WritePolicy::WriteThrough] {
                    configs.push(CacheConfig {
                        cache_bytes: blocks * block_size,
                        block_size,
                        write_policy: policy,
                        ..CacheConfig::default()
                    });
                }
            }
        }
        // A lone block size: its expansion group has exactly one cell,
        // which takes the no-buffering streaming path.
        configs.push(CacheConfig {
            cache_bytes: 16 * 16384,
            block_size: 16384,
            write_policy: WritePolicy::DelayedWrite,
            ..CacheConfig::default()
        });
        let results = sweep::run_source(|| trace.records().iter(), &configs, jobs);
        prop_assert_eq!(results.len(), configs.len());
        for (config, metrics) in &results {
            prop_assert_eq!(metrics.clone(), Simulator::run(&trace, config));
        }
    }
}
