//! Property-based tests for the block cache engine and the replay.

use cachesim::{BlockCache, CacheConfig, Replacement, Simulator, WritePolicy};
use fstrace::{AccessMode, FileId, TraceBuilder};
use proptest::prelude::*;

fn cfg(blocks: u64) -> CacheConfig {
    CacheConfig {
        cache_bytes: blocks * 4096,
        block_size: 4096,
        write_policy: WritePolicy::DelayedWrite,
        ..CacheConfig::default()
    }
}

/// A naive LRU model: a Vec ordered most-recent-first.
struct NaiveLru {
    cap: usize,
    order: Vec<(u64, u64)>, // (file, block), MRU first.
    hits: u64,
    misses: u64,
}

impl NaiveLru {
    fn access(&mut self, key: (u64, u64)) {
        match self.order.iter().position(|&k| k == key) {
            Some(i) => {
                self.hits += 1;
                let k = self.order.remove(i);
                self.order.insert(0, k);
            }
            None => {
                self.misses += 1;
                self.order.insert(0, key);
                if self.order.len() > self.cap {
                    self.order.pop();
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The intrusive-list cache agrees with a naive LRU model on hits,
    /// misses, and the full recency ordering.
    #[test]
    fn lru_matches_naive_model(
        cap in 1u64..16,
        accesses in prop::collection::vec((0u64..4, 0u64..24), 1..300),
    ) {
        let mut cache = BlockCache::new(&cfg(cap));
        let mut model = NaiveLru { cap: cap as usize, order: Vec::new(), hits: 0, misses: 0 };
        for (i, &(f, b)) in accesses.iter().enumerate() {
            cache.read(
                cachesim::BlockId { file: FileId(f), block: b },
                i as u64,
            );
            model.access((f, b));
        }
        prop_assert_eq!(cache.metrics.read_hits, model.hits);
        prop_assert_eq!(cache.metrics.disk_reads, model.misses);
        let got: Vec<(u64, u64)> = cache
            .contents_mru()
            .iter()
            .map(|id| (id.file.0, id.block))
            .collect();
        prop_assert_eq!(got, model.order);
    }

    /// Under FIFO, contents are the most recently inserted distinct keys
    /// and hit counts still match a set-based model.
    #[test]
    fn fifo_hit_counts(
        cap in 1u64..16,
        accesses in prop::collection::vec((0u64..3, 0u64..16), 1..200),
    ) {
        let mut config = cfg(cap);
        config.replacement = Replacement::Fifo;
        let mut cache = BlockCache::new(&config);
        let mut order: Vec<(u64, u64)> = Vec::new(); // Insertion order, newest first.
        let mut hits = 0u64;
        for (i, &(f, b)) in accesses.iter().enumerate() {
            let key = (f, b);
            if order.contains(&key) {
                hits += 1;
            } else {
                order.insert(0, key);
                if order.len() > cap as usize {
                    order.pop();
                }
            }
            cache.read(
                cachesim::BlockId { file: FileId(f), block: b },
                i as u64,
            );
        }
        prop_assert_eq!(cache.metrics.read_hits, hits);
    }

    /// LRU inclusion: a larger cache never misses more on the same
    /// access stream.
    #[test]
    fn lru_inclusion_property(
        accesses in prop::collection::vec((0u64..4, 0u64..32), 1..400),
        small in 1u64..8,
        extra in 1u64..16,
    ) {
        let run = |cap: u64| {
            let mut c = BlockCache::new(&cfg(cap));
            for (i, &(f, b)) in accesses.iter().enumerate() {
                c.read(cachesim::BlockId { file: FileId(f), block: b }, i as u64);
            }
            c.metrics.disk_reads
        };
        prop_assert!(run(small + extra) <= run(small));
    }

    /// Replay conservation: logical accesses equal the number of blocks
    /// spanned by all runs, independent of cache configuration.
    #[test]
    fn replay_conserves_block_accesses(
        files in prop::collection::vec((0u64..20_000u64, 1u64..40_000u64), 1..40),
        cache_blocks in 1u64..64,
    ) {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let mut expected = 0u64;
        let bs = 4096u64;
        for (i, &(offset, len)) in files.iter().enumerate() {
            let f = b.new_file_id();
            let t = i as u64 * 1000;
            let size = offset + len;
            let o = b.open(t, f, u, AccessMode::ReadOnly, size, false);
            if offset > 0 {
                b.seek(t + 10, o, 0, offset);
            }
            b.close(t + 20, o, size);
            expected += (size - 1) / bs - offset / bs + 1;
        }
        let m = Simulator::run(&b.finish(), &cfg(cache_blocks));
        prop_assert_eq!(m.logical_reads, expected);
        prop_assert_eq!(m.logical_writes, 0);
        // Disk reads are bounded by logical reads.
        prop_assert!(m.disk_reads <= m.logical_reads);
    }
}
