//! The refactor seam of the fidelity axis (DESIGN.md §15): block
//! fidelity must be event-for-event identical to the pre-refactor
//! `EventExpander`, and the coarser fidelities must honor their
//! documented session semantics.
//!
//! `LegacyExpander` below is a verbatim copy of the expander as it
//! stood before `Fidelity` existed. It is the executable spec for
//! `Fidelity::Block`: the proptest and the golden trace compare full
//! event vectors, not just end metrics.

use std::collections::HashMap;

use cachesim::{
    replay_events, sweep, CacheConfig, EventExpander, Fidelity, ReplayEvent, RwHandling, Simulator,
    WritePolicy,
};
use fstrace::{AccessMode, FileId, OpenId, Trace, TraceBuilder, TraceEvent, TraceRecord, UserId};
use proptest::prelude::*;

/// The pre-refactor expander, copied verbatim (modulo the obs counter):
/// one hard-coded block-fidelity expansion.
struct LegacyExpander {
    rw_handling: RwHandling,
    simulate_paging: bool,
    pending: HashMap<OpenId, LegacyPending>,
}

struct LegacyPending {
    file: FileId,
    mode: AccessMode,
    pos: u64,
}

impl LegacyExpander {
    fn new(config: &CacheConfig) -> Self {
        LegacyExpander {
            rw_handling: config.rw_handling,
            simulate_paging: config.simulate_paging,
            pending: HashMap::new(),
        }
    }

    fn transfer(
        &self,
        emit: &mut impl FnMut(ReplayEvent),
        time_ms: u64,
        file: FileId,
        mode: AccessMode,
        offset: u64,
        len: u64,
    ) {
        let event = |write| ReplayEvent::Transfer {
            time_ms,
            file,
            offset,
            len,
            write,
        };
        match (mode, self.rw_handling) {
            (AccessMode::ReadOnly, _) | (AccessMode::ReadWrite, RwHandling::Read) => {
                emit(event(false));
            }
            (AccessMode::WriteOnly, _) | (AccessMode::ReadWrite, RwHandling::Write) => {
                emit(event(true));
            }
            (AccessMode::ReadWrite, RwHandling::Both) => {
                emit(event(false));
                emit(event(true));
            }
        }
    }

    fn feed(&mut self, rec: &TraceRecord, emit: &mut impl FnMut(ReplayEvent)) {
        let time_ms = rec.time.as_ms();
        match rec.event {
            TraceEvent::Open {
                open_id,
                file_id,
                mode,
                size,
                created,
                ..
            } => {
                emit(ReplayEvent::SizeHint {
                    time_ms,
                    file: file_id,
                    size,
                });
                if created {
                    emit(ReplayEvent::TruncateTo {
                        time_ms,
                        file: file_id,
                        new_len: 0,
                    });
                }
                self.pending.insert(
                    open_id,
                    LegacyPending {
                        file: file_id,
                        mode,
                        pos: 0,
                    },
                );
            }
            TraceEvent::Seek {
                open_id,
                old_pos,
                new_pos,
            } => {
                let mut run = None;
                if let Some(p) = self.pending.get_mut(&open_id) {
                    if old_pos > p.pos {
                        run = Some((p.file, p.mode, p.pos, old_pos - p.pos));
                    }
                    p.pos = new_pos;
                }
                if let Some((file, mode, offset, len)) = run {
                    self.transfer(emit, time_ms, file, mode, offset, len);
                }
            }
            TraceEvent::Close { open_id, final_pos } => {
                if let Some(p) = self.pending.remove(&open_id) {
                    if final_pos > p.pos {
                        self.transfer(emit, time_ms, p.file, p.mode, p.pos, final_pos - p.pos);
                    }
                }
            }
            TraceEvent::Unlink { file_id, .. } => emit(ReplayEvent::Delete {
                time_ms,
                file: file_id,
            }),
            TraceEvent::Truncate {
                file_id, new_len, ..
            } => emit(ReplayEvent::TruncateTo {
                time_ms,
                file: file_id,
                new_len,
            }),
            TraceEvent::Execve { file_id, size, .. } if self.simulate_paging && size > 0 => {
                emit(ReplayEvent::Transfer {
                    time_ms,
                    file: file_id,
                    offset: 0,
                    len: size,
                    write: false,
                });
            }
            _ => {}
        }
    }
}

fn legacy_events(trace: &Trace, config: &CacheConfig) -> Vec<ReplayEvent> {
    let mut expander = LegacyExpander::new(config);
    let mut out = Vec::new();
    for rec in trace.records() {
        expander.feed(rec, &mut |ev| out.push(ev));
    }
    out
}

fn arb_mode() -> impl Strategy<Value = AccessMode> {
    prop_oneof![
        Just(AccessMode::ReadOnly),
        Just(AccessMode::WriteOnly),
        Just(AccessMode::ReadWrite),
    ]
}

/// Raw events with tight id ranges: opens and closes pair up often,
/// and the expander also sees every anomaly (orphan closes, reused
/// open ids, seeks on dead handles).
fn arb_raw_event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (
            0u64..10,
            0u64..6,
            0u32..4,
            arb_mode(),
            0u64..200_000,
            any::<bool>()
        )
            .prop_map(|(o, f, u, mode, size, created)| TraceEvent::Open {
                open_id: OpenId(o),
                file_id: FileId(f),
                user_id: UserId(u),
                mode,
                size,
                created,
            }),
        (0u64..10, 0u64..200_000).prop_map(|(o, p)| TraceEvent::Close {
            open_id: OpenId(o),
            final_pos: p,
        }),
        (0u64..10, 0u64..200_000, 0u64..200_000).prop_map(|(o, a, b)| TraceEvent::Seek {
            open_id: OpenId(o),
            old_pos: a,
            new_pos: b,
        }),
        (0u64..6, 0u32..4).prop_map(|(f, u)| TraceEvent::Unlink {
            file_id: FileId(f),
            user_id: UserId(u),
        }),
        (0u64..6, 0u64..200_000, 0u32..4).prop_map(|(f, l, u)| TraceEvent::Truncate {
            file_id: FileId(f),
            new_len: l,
            user_id: UserId(u),
        }),
        (0u64..6, 0u32..4, 0u64..200_000).prop_map(|(f, u, s)| TraceEvent::Execve {
            file_id: FileId(f),
            user_id: UserId(u),
            size: s,
        }),
    ]
}

fn arb_raw_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u64..200_000u64, arb_raw_event()), 0..150).prop_map(|pairs| {
        Trace::from_records(
            pairs
                .into_iter()
                .map(|(t, e)| TraceRecord::new(t, e))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Fidelity::Block` expansion is event-for-event identical to the
    /// pre-refactor expander on random traces, for every rw-handling ×
    /// paging combination.
    #[test]
    fn block_fidelity_matches_legacy_expander(trace in arb_raw_trace()) {
        for rw in [RwHandling::Read, RwHandling::Write, RwHandling::Both] {
            for paging in [false, true] {
                let config = CacheConfig {
                    rw_handling: rw,
                    simulate_paging: paging,
                    fidelity: Fidelity::Block,
                    ..CacheConfig::default()
                };
                let got = replay_events(&trace, &config);
                let want = legacy_events(&trace, &config);
                prop_assert_eq!(got, want, "rw {:?} paging {}", rw, paging);
            }
        }
    }

    /// Block and syscall fidelity touch exactly the same blocks: the
    /// logical read/write traffic matches event-for-event; only the
    /// fetch accounting may differ.
    #[test]
    fn syscall_fidelity_preserves_logical_traffic(trace in arb_raw_trace()) {
        let block = CacheConfig {
            rw_handling: RwHandling::Both,
            simulate_paging: true,
            ..CacheConfig::default()
        };
        let syscall = CacheConfig {
            fidelity: Fidelity::Syscall,
            ..block.clone()
        };
        let mb = Simulator::run(&trace, &block);
        let ms = Simulator::run(&trace, &syscall);
        prop_assert_eq!(mb.logical_reads, ms.logical_reads);
        prop_assert_eq!(mb.logical_writes, ms.logical_writes);
        // Read traffic is expanded identically, so syscall fidelity
        // never manufactures disk reads a write fetch didn't cause.
        prop_assert!(ms.elided_fetches >= mb.elided_fetches);
    }

    /// A sweep mixing all three fidelities stays bit-identical to
    /// sequential per-cell simulation for any worker count.
    #[test]
    fn mixed_fidelity_sweep_matches_sequential(
        trace in arb_raw_trace(),
        jobs in 1usize..5,
    ) {
        let mut configs = Vec::new();
        for fidelity in Fidelity::ALL {
            for blocks in [4u64, 64] {
                for policy in [WritePolicy::DelayedWrite, WritePolicy::WriteThrough] {
                    configs.push(CacheConfig {
                        cache_bytes: blocks * 4096,
                        write_policy: policy,
                        fidelity,
                        ..CacheConfig::default()
                    });
                }
            }
        }
        let results = sweep::run_source(|| trace.records().iter(), &configs, jobs);
        prop_assert_eq!(results.len(), configs.len());
        for (config, metrics) in &results {
            prop_assert_eq!(metrics.clone(), Simulator::run(&trace, config));
        }
    }
}

/// Heavy open/close/unlink churn over a handful of open ids: with
/// only four ids live across hundreds of events, the arena-backed
/// `OpenTable` recycles freed slots constantly and reused ids land on
/// top of still-open sessions (the orphan-overwrite path). Every such
/// sequence must expand to the identical event stream — and replay to
/// the identical cache metrics — as the pre-arena `HashMap` table the
/// `LegacyExpander` vendors.
fn arb_churn_event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (0u64..4, 0u64..3, arb_mode(), 0u64..100_000, any::<bool>()).prop_map(
            |(o, f, mode, size, created)| TraceEvent::Open {
                open_id: OpenId(o),
                file_id: FileId(f),
                user_id: UserId(0),
                mode,
                size,
                created,
            }
        ),
        (0u64..4, 0u64..100_000).prop_map(|(o, p)| TraceEvent::Close {
            open_id: OpenId(o),
            final_pos: p,
        }),
        (0u64..4, 0u64..100_000, 0u64..100_000).prop_map(|(o, a, b)| TraceEvent::Seek {
            open_id: OpenId(o),
            old_pos: a,
            new_pos: b,
        }),
        (0u64..3).prop_map(|f| TraceEvent::Unlink {
            file_id: FileId(f),
            user_id: UserId(0),
        }),
    ]
}

fn arb_churn_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u64..100_000u64, arb_churn_event()), 0..400).prop_map(|pairs| {
        Trace::from_records(
            pairs
                .into_iter()
                .map(|(t, e)| TraceRecord::new(t, e))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arena slot reuse is invisible: churn-heavy traces expand and
    /// replay bit-identically to the pre-arena path.
    #[test]
    fn arena_slot_reuse_matches_prearena_path(trace in arb_churn_trace()) {
        let config = CacheConfig {
            rw_handling: RwHandling::Both,
            simulate_paging: true,
            ..CacheConfig::default()
        };
        let got = replay_events(&trace, &config);
        let want = legacy_events(&trace, &config);
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(
            Simulator::run(&trace, &config),
            Simulator::run_events(&want, &config)
        );
    }
}

/// A golden trace exercising every expander path: creation, seeks
/// (forward and backward), read-write sessions, truncate, unlink,
/// execve, and an unclosed open.
fn golden_trace() -> Trace {
    let mut b = TraceBuilder::new();
    let u = b.new_user_id();
    let f1 = b.new_file_id();
    let f2 = b.new_file_id();
    let o1 = b.open(0, f1, u, AccessMode::ReadWrite, 10_000, false);
    let o2 = b.open(0, f2, u, AccessMode::WriteOnly, 0, true);
    b.seek(10, o1, 4_000, 8_000);
    b.close(10, o2, 6_000);
    b.close(20, o1, 9_500);
    b.truncate(30, f1, 2_000, u);
    b.execve(30, f2, u, 6_000);
    b.unlink(40, f2, u);
    b.open(50, f1, u, AccessMode::ReadOnly, 2_000, false); // Unclosed.
    b.finish()
}

/// `Fidelity::Block` reproduces the hand-computed legacy event vector
/// on the golden trace (RW billed as writes, paging on).
#[test]
fn block_fidelity_golden_events() {
    let config = CacheConfig {
        rw_handling: RwHandling::Write,
        simulate_paging: true,
        ..CacheConfig::default()
    };
    let f1 = FileId(0);
    let f2 = FileId(1);
    let got = replay_events(&golden_trace(), &config);
    let want = vec![
        ReplayEvent::SizeHint {
            time_ms: 0,
            file: f1,
            size: 10_000,
        },
        ReplayEvent::SizeHint {
            time_ms: 0,
            file: f2,
            size: 0,
        },
        ReplayEvent::TruncateTo {
            time_ms: 0,
            file: f2,
            new_len: 0,
        },
        // o1's first run: bytes 0..4000, billed at the seek.
        ReplayEvent::Transfer {
            time_ms: 10,
            file: f1,
            offset: 0,
            len: 4_000,
            write: true,
        },
        // o2's whole-session run: bytes 0..6000, billed at close.
        ReplayEvent::Transfer {
            time_ms: 10,
            file: f2,
            offset: 0,
            len: 6_000,
            write: true,
        },
        // o1's second run: bytes 8000..9500, billed at close.
        ReplayEvent::Transfer {
            time_ms: 20,
            file: f1,
            offset: 8_000,
            len: 1_500,
            write: true,
        },
        ReplayEvent::TruncateTo {
            time_ms: 30,
            file: f1,
            new_len: 2_000,
        },
        // Paging read of the executed program.
        ReplayEvent::Transfer {
            time_ms: 30,
            file: f2,
            offset: 0,
            len: 6_000,
            write: false,
        },
        ReplayEvent::Delete {
            time_ms: 40,
            file: f2,
        },
        ReplayEvent::SizeHint {
            time_ms: 50,
            file: f1,
            size: 2_000,
        },
    ];
    assert_eq!(got, legacy_events(&golden_trace(), &config));
    assert_eq!(got, want);
}

/// Open fidelity on the golden trace: each closed session collapses to
/// one op carrying its transfer total; the unclosed open emits nothing.
#[test]
fn open_fidelity_golden_events() {
    let config = CacheConfig {
        rw_handling: RwHandling::Write,
        simulate_paging: true,
        fidelity: Fidelity::Open,
        ..CacheConfig::default()
    };
    let f1 = FileId(0);
    let f2 = FileId(1);
    let got = replay_events(&golden_trace(), &config);
    let want = vec![
        ReplayEvent::SizeHint {
            time_ms: 0,
            file: f1,
            size: 10_000,
        },
        ReplayEvent::SizeHint {
            time_ms: 0,
            file: f2,
            size: 0,
        },
        ReplayEvent::TruncateTo {
            time_ms: 0,
            file: f2,
            new_len: 0,
        },
        // o2's session: 6000 bytes total, billed at its close.
        ReplayEvent::Op {
            time_ms: 10,
            file: f2,
            offset: 0,
            len: 6_000,
            write: true,
        },
        // o1's session: 4000 + 1500 bytes across two runs.
        ReplayEvent::Op {
            time_ms: 20,
            file: f1,
            offset: 0,
            len: 5_500,
            write: true,
        },
        ReplayEvent::TruncateTo {
            time_ms: 30,
            file: f1,
            new_len: 2_000,
        },
        ReplayEvent::Op {
            time_ms: 30,
            file: f2,
            offset: 0,
            len: 6_000,
            write: false,
        },
        ReplayEvent::Delete {
            time_ms: 40,
            file: f2,
        },
        ReplayEvent::SizeHint {
            time_ms: 50,
            file: f1,
            size: 2_000,
        },
    ];
    assert_eq!(got, want);
}

/// Truncated-trace session reconstruction: a session whose `close`
/// falls beyond the end of the trace replays nothing at open fidelity
/// — its size hint still lands, but no transfer op is synthesized —
/// mirroring block fidelity, where the unbilled final run vanishes the
/// same way.
#[test]
fn open_fidelity_truncated_trace_drops_unclosed_session() {
    let mut b = TraceBuilder::new();
    let u = b.new_user_id();
    let f = b.new_file_id();
    let o = b.open(0, f, u, AccessMode::ReadOnly, 40_960, false);
    // Two completed runs inside the session...
    b.seek(10, o, 8_192, 16_384);
    b.seek(20, o, 24_576, 0);
    // ...but the trace ends before the close.
    let full = {
        let mut b2 = TraceBuilder::new();
        let u2 = b2.new_user_id();
        let f2 = b2.new_file_id();
        let o2 = b2.open(0, f2, u2, AccessMode::ReadOnly, 40_960, false);
        b2.seek(10, o2, 8_192, 16_384);
        b2.seek(20, o2, 24_576, 0);
        b2.close(30, o2, 4_096);
        b2.finish()
    };
    let truncated = b.finish();
    let config = CacheConfig {
        fidelity: Fidelity::Open,
        ..CacheConfig::default()
    };

    let events = replay_events(&truncated, &config);
    assert!(
        events
            .iter()
            .all(|e| !matches!(e, ReplayEvent::Op { .. } | ReplayEvent::Transfer { .. })),
        "unclosed session must not synthesize transfers: {events:?}"
    );

    // The same session with its close intact reconstructs the full
    // total: 8192 + 8192 from the seeks plus 4096 from the final run.
    let events = replay_events(&full, &config);
    assert!(events.iter().any(|e| matches!(
        e,
        ReplayEvent::Op {
            time_ms: 30,
            offset: 0,
            len: 20_480,
            write: false,
            ..
        }
    )));

    // Block fidelity agrees that the truncated session bills only the
    // seek-terminated runs (16384 bytes = 4 blocks), never the tail.
    let m = Simulator::run(&truncated, &CacheConfig::default());
    assert_eq!(m.logical_reads, 4);
}

/// The syscall expander bills runs at the same points as block
/// fidelity, one op per direction under `RwHandling::Both`.
#[test]
fn syscall_fidelity_golden_events() {
    let config = CacheConfig {
        rw_handling: RwHandling::Both,
        simulate_paging: false,
        fidelity: Fidelity::Syscall,
        ..CacheConfig::default()
    };
    let mut b = TraceBuilder::new();
    let u = b.new_user_id();
    let f = b.new_file_id();
    let o = b.open(0, f, u, AccessMode::ReadWrite, 10_000, false);
    b.seek(10, o, 4_000, 8_000);
    b.close(20, o, 9_500);
    let got = replay_events(&b.finish(), &config);
    let want = vec![
        ReplayEvent::SizeHint {
            time_ms: 0,
            file: f,
            size: 10_000,
        },
        ReplayEvent::Op {
            time_ms: 10,
            file: f,
            offset: 0,
            len: 4_000,
            write: false,
        },
        ReplayEvent::Op {
            time_ms: 10,
            file: f,
            offset: 0,
            len: 4_000,
            write: true,
        },
        ReplayEvent::Op {
            time_ms: 20,
            file: f,
            offset: 8_000,
            len: 1_500,
            write: false,
        },
        ReplayEvent::Op {
            time_ms: 20,
            file: f,
            offset: 8_000,
            len: 1_500,
            write: true,
        },
    ];
    assert_eq!(got, want);
}

/// `EventExpander::new` picks the variant matching the config.
#[test]
fn expander_variant_follows_config() {
    for fidelity in Fidelity::ALL {
        let config = CacheConfig {
            fidelity,
            ..CacheConfig::default()
        };
        let expander = EventExpander::new(&config);
        let matched = matches!(
            (&expander, fidelity),
            (EventExpander::Block(_), Fidelity::Block)
                | (EventExpander::Syscall(_), Fidelity::Syscall)
                | (EventExpander::Open(_), Fidelity::Open)
        );
        assert!(matched, "{fidelity:?}");
    }
}
