//! Archive-fed sweeps must be bit-identical to in-memory sweeps.
//!
//! The `tracestore` archive is a storage format, not a semantic layer:
//! a sweep over records decoded from an archive — sequentially or
//! chunk-parallel, compressed or not — must produce exactly the
//! metrics of the same sweep over the original in-memory trace.

use cachesim::{sweep, CacheConfig, RwHandling, WritePolicy};
use fstrace::{AccessMode, FileId, Trace, TraceBuilder};
use rand::{rngs::StdRng, Rng, SeedableRng};
use tracestore::{Archive, ArchiveOptions, ArchiveWriter};

/// A seeded trace with enough volume to span several small chunks.
fn seeded_trace(seed: u64, opens: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TraceBuilder::new();
    let users: Vec<_> = (0..4).map(|_| b.new_user_id()).collect();
    let files: Vec<FileId> = (0..24).map(|_| b.new_file_id()).collect();
    let mut t = 0u64;
    for _ in 0..opens {
        t += rng.gen_range(10u64..2_000);
        let u = users[rng.gen_range(0..users.len())];
        let f = files[rng.gen_range(0..files.len())];
        match rng.gen_range(0u32..8) {
            0..=4 => {
                let size = rng.gen_range(1u64..120_000);
                let o = b.open(t, f, u, AccessMode::ReadOnly, size, false);
                if rng.gen_range(0u32..3) == 0 && size > 100 {
                    b.seek(t + 10, o, 0, rng.gen_range(0..size));
                }
                b.close(t + 100, o, size);
            }
            5..=6 => {
                let size = rng.gen_range(1u64..60_000);
                let o = b.open(t, f, u, AccessMode::WriteOnly, 0, true);
                b.close(t + 100, o, size);
            }
            _ => {
                let size = rng.gen_range(1_000u64..40_000);
                let o = b.open(t, f, u, AccessMode::ReadWrite, size, false);
                b.close(t + 100, o, size + 512);
            }
        }
    }
    b.finish()
}

fn archive_of(trace: &Trace, compress: bool) -> Archive {
    let mut w = ArchiveWriter::new(
        Vec::new(),
        ArchiveOptions {
            chunk_target_bytes: 2048,
            compress,
            name: "sweep-test".into(),
        },
    )
    .unwrap();
    for rec in trace.records() {
        w.write(rec).unwrap();
    }
    Archive::from_bytes(w.finish().unwrap().0).unwrap()
}

fn grid() -> Vec<CacheConfig> {
    [4 << 10, 64 << 10, 1 << 20]
        .into_iter()
        .flat_map(|cache_bytes| {
            [
                WritePolicy::WriteThrough,
                WritePolicy::FlushBack {
                    interval_ms: 30_000,
                },
            ]
            .into_iter()
            .map(move |write_policy| CacheConfig {
                cache_bytes,
                block_size: 4096,
                write_policy,
                rw_handling: RwHandling::Both,
                ..CacheConfig::default()
            })
        })
        .collect()
}

#[test]
fn archive_fed_sweep_matches_in_memory_sweep() {
    let trace = seeded_trace(0xA5, 600);
    let configs = grid();
    let baseline = sweep::run(&trace, &configs);

    for compress in [false, true] {
        let archive = archive_of(&trace, compress);
        assert!(
            archive.chunks().len() > 2,
            "want a multi-chunk archive, got {}",
            archive.chunks().len()
        );
        for jobs in [1, 4] {
            let (records, report) = archive.decode_parallel(jobs);
            assert!(report.is_clean());
            let swept = sweep::run_source(|| records.iter(), &configs, jobs);
            assert_eq!(swept.len(), baseline.len());
            for ((ca, ma), (cb, mb)) in baseline.iter().zip(&swept) {
                assert_eq!(ca, cb);
                assert_eq!(ma, mb, "compress={compress} jobs={jobs} config={ca:?}");
            }
        }
    }
}

#[test]
fn sequential_archive_source_feeds_sweep_directly() {
    let trace = seeded_trace(0x7E, 400);
    let configs = grid();
    let baseline = sweep::run(&trace, &configs);
    let archive = archive_of(&trace, true);
    // The ArchiveRecords iterator is itself a record source; unwrap is
    // safe because the archive was just written.
    let swept = sweep::run_source(
        || {
            archive
                .records(tracestore::Corruption::Fail)
                .map(|r| r.expect("fresh archive cannot be corrupt"))
        },
        &configs,
        2,
    );
    for ((ca, ma), (cb, mb)) in baseline.iter().zip(&swept) {
        assert_eq!(ca, cb);
        assert_eq!(ma, mb);
    }
}
