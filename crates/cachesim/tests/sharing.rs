//! Expansion-sharing verification.
//!
//! The counter behind [`cachesim::expansion_count`] is process-global,
//! so every assertion lives in this single test function: integration
//! tests in one binary run concurrently, and any other test that
//! triggered an expansion would perturb a before/after diff.

use cachesim::{sweep, CacheConfig, WritePolicy};
use fstrace::{AccessMode, Trace, TraceBuilder};

fn trace() -> Trace {
    let mut b = TraceBuilder::new();
    let u = b.new_user_id();
    for i in 0..16u64 {
        let f = b.new_file_id();
        let t = i * 1_000;
        let o = b.open(t, f, u, AccessMode::ReadOnly, 12_288, false);
        b.close(t + 100, o, 12_288);
        b.execve(t + 500, f, u, 8_192);
    }
    b.finish()
}

#[test]
fn sweep_expands_once_per_group() {
    let trace = trace();

    // A full Table VI-shaped grid (sizes x policies) shares one key.
    let grid: Vec<CacheConfig> = [128u64, 512, 2048]
        .iter()
        .flat_map(|&kb| {
            WritePolicy::TABLE_VI.into_iter().map(move |p| CacheConfig {
                cache_bytes: kb * 1024,
                write_policy: p,
                ..CacheConfig::default()
            })
        })
        .collect();

    // Sharing must hold for every worker count, with bit-identical
    // results, and the obs registry must agree with expansion_count().
    let mut all_results = Vec::new();
    for jobs in [1usize, 2, 8] {
        let before = obs::global().snapshot();
        let count_before = cachesim::expansion_count();
        let results = sweep::run_with_jobs(&trace, &grid, jobs);
        let after = obs::global().snapshot();
        assert_eq!(
            cachesim::expansion_count() - count_before,
            1,
            "12 same-key configs must share one expansion at jobs={jobs}"
        );
        assert_eq!(
            after.counter("cachesim.replay.expansions").unwrap_or(0)
                - before.counter("cachesim.replay.expansions").unwrap_or(0),
            1,
            "obs counter must mirror expansion_count() at jobs={jobs}"
        );
        assert_eq!(
            after.counter("cachesim.sweep.cells").unwrap_or(0)
                - before.counter("cachesim.sweep.cells").unwrap_or(0),
            grid.len() as u64,
            "jobs={jobs}"
        );
        assert_eq!(
            after.counter("cachesim.stack.profiled_cells").unwrap_or(0)
                - before.counter("cachesim.stack.profiled_cells").unwrap_or(0),
            grid.len() as u64,
            "an all-LRU same-block-size grid profiles every cell at jobs={jobs}"
        );
        assert_eq!(
            after.counter("cachesim.stack.fallback_cells").unwrap_or(0)
                - before.counter("cachesim.stack.fallback_cells").unwrap_or(0),
            0,
            "nothing falls back to direct simulation at jobs={jobs}"
        );
        assert!(
            after
                .counter("cachesim.stack.distances_recorded")
                .unwrap_or(0)
                > before
                    .counter("cachesim.stack.distances_recorded")
                    .unwrap_or(0),
            "the profiler must record stack distances at jobs={jobs}"
        );
        all_results.push(results);
    }
    assert!(
        all_results.windows(2).all(|w| w[0] == w[1]),
        "sweep results must be bit-identical across jobs 1/2/8"
    );

    let before = cachesim::expansion_count();
    sweep::run_with_jobs(&trace, &grid, 4);
    assert_eq!(
        cachesim::expansion_count() - before,
        1,
        "12 same-key configs must share one expansion"
    );

    // Block size is consumption-only: mixing block sizes still shares.
    // Each block size is a partnerless profile subgroup, so all four
    // cells fall back to direct simulation of the shared event vector.
    let blocks: Vec<CacheConfig> = [1u64, 4, 16, 32]
        .iter()
        .map(|&kb| CacheConfig {
            block_size: kb * 1024,
            ..CacheConfig::default()
        })
        .collect();
    let before_snap = obs::global().snapshot();
    let before = cachesim::expansion_count();
    sweep::run_with_jobs(&trace, &blocks, 4);
    assert_eq!(cachesim::expansion_count() - before, 1);
    let after_snap = obs::global().snapshot();
    assert_eq!(
        after_snap
            .counter("cachesim.stack.fallback_cells")
            .unwrap_or(0)
            - before_snap
                .counter("cachesim.stack.fallback_cells")
                .unwrap_or(0),
        blocks.len() as u64,
        "singleton block-size subgroups must fall back to direct cells"
    );

    // Paging flips the expansion key: exactly one extra expansion.
    let mut mixed = grid;
    mixed.push(CacheConfig {
        simulate_paging: true,
        ..CacheConfig::default()
    });
    let before = cachesim::expansion_count();
    sweep::run_with_jobs(&trace, &mixed, 4);
    assert_eq!(
        cachesim::expansion_count() - before,
        2,
        "paging on/off groups expand separately"
    );
}
