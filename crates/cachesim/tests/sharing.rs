//! Expansion-sharing verification.
//!
//! The counter behind [`cachesim::expansion_count`] is process-global,
//! so every assertion lives in this single test function: integration
//! tests in one binary run concurrently, and any other test that
//! triggered an expansion would perturb a before/after diff.

use cachesim::{sweep, CacheConfig, WritePolicy};
use fstrace::{AccessMode, Trace, TraceBuilder};

fn trace() -> Trace {
    let mut b = TraceBuilder::new();
    let u = b.new_user_id();
    for i in 0..16u64 {
        let f = b.new_file_id();
        let t = i * 1_000;
        let o = b.open(t, f, u, AccessMode::ReadOnly, 12_288, false);
        b.close(t + 100, o, 12_288);
        b.execve(t + 500, f, u, 8_192);
    }
    b.finish()
}

#[test]
fn sweep_expands_once_per_group() {
    let trace = trace();

    // A full Table VI-shaped grid (sizes x policies) shares one key.
    let grid: Vec<CacheConfig> = [128u64, 512, 2048]
        .iter()
        .flat_map(|&kb| {
            WritePolicy::TABLE_VI.into_iter().map(move |p| CacheConfig {
                cache_bytes: kb * 1024,
                write_policy: p,
                ..CacheConfig::default()
            })
        })
        .collect();
    let before = cachesim::expansion_count();
    sweep::run_with_jobs(&trace, &grid, 4);
    assert_eq!(
        cachesim::expansion_count() - before,
        1,
        "12 same-key configs must share one expansion"
    );

    // Block size is consumption-only: mixing block sizes still shares.
    let blocks: Vec<CacheConfig> = [1u64, 4, 16, 32]
        .iter()
        .map(|&kb| CacheConfig {
            block_size: kb * 1024,
            ..CacheConfig::default()
        })
        .collect();
    let before = cachesim::expansion_count();
    sweep::run_with_jobs(&trace, &blocks, 4);
    assert_eq!(cachesim::expansion_count() - before, 1);

    // Paging flips the expansion key: exactly one extra expansion.
    let mut mixed = grid;
    mixed.push(CacheConfig {
        simulate_paging: true,
        ..CacheConfig::default()
    });
    let before = cachesim::expansion_count();
    sweep::run_with_jobs(&trace, &mixed, 4);
    assert_eq!(
        cachesim::expansion_count() - before,
        2,
        "paging on/off groups expand separately"
    );
}
