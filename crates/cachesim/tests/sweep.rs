//! Sweep-engine equivalence suite: parallel sweeps must be
//! bit-identical to per-config sequential simulation, at any thread
//! count, and sharing one expansion across a group must never change
//! the results.

use cachesim::{sweep, CacheConfig, CacheMetrics, RwHandling, Simulator, WritePolicy};
use fstrace::{AccessMode, FileId, Trace, TraceBuilder};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A seeded pseudo-random trace with every event kind the replay
/// expands: reads, writes, read-write opens, seeks, creates, unlinks,
/// truncates, and execves.
fn seeded_trace(seed: u64, opens: usize) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TraceBuilder::new();
    let users: Vec<_> = (0..4).map(|_| b.new_user_id()).collect();
    let files: Vec<FileId> = (0..24).map(|_| b.new_file_id()).collect();
    let mut t = 0u64;
    for _ in 0..opens {
        t += rng.gen_range(10u64..2_000);
        let u = users[rng.gen_range(0..users.len())];
        let f = files[rng.gen_range(0..files.len())];
        match rng.gen_range(0u32..10) {
            0..=4 => {
                // Sequential or seeky read.
                let size = rng.gen_range(1u64..120_000);
                let o = b.open(t, f, u, AccessMode::ReadOnly, size, false);
                if rng.gen_range(0u32..3) == 0 && size > 100 {
                    let pos = rng.gen_range(0..size);
                    b.seek(t + 10, o, 0, pos);
                }
                b.close(t + 100, o, size);
            }
            5..=6 => {
                // Whole-file (re)write.
                let size = rng.gen_range(1u64..60_000);
                let o = b.open(t, f, u, AccessMode::WriteOnly, 0, true);
                b.close(t + 100, o, size);
            }
            7 => {
                // Read-write open: expansion depends on RwHandling.
                let size = rng.gen_range(1_000u64..40_000);
                let o = b.open(t, f, u, AccessMode::ReadWrite, size, false);
                b.seek(t + 10, o, 0, rng.gen_range(0..size));
                b.close(t + 100, o, size + 512);
            }
            8 => {
                // Program execution: expansion depends on paging.
                b.execve(t, f, u, rng.gen_range(4_096u64..80_000));
            }
            _ => {
                if rng.gen_range(0u32..2) == 0 {
                    b.unlink(t, f, u);
                } else {
                    b.truncate(t, f, rng.gen_range(0u64..10_000), u);
                }
            }
        }
    }
    b.finish()
}

/// A 12-config grid spanning every expansion-relevant and
/// consumption-only option.
fn grid() -> Vec<CacheConfig> {
    let mut v = Vec::new();
    for policy in WritePolicy::TABLE_VI {
        for cache_kb in [128u64, 1024] {
            v.push(CacheConfig {
                cache_bytes: cache_kb * 1024,
                block_size: 4096,
                write_policy: policy,
                ..CacheConfig::default()
            });
        }
    }
    v.push(CacheConfig {
        block_size: 16 * 1024,
        ..CacheConfig::default()
    });
    v.push(CacheConfig {
        simulate_paging: true,
        ..CacheConfig::default()
    });
    v.push(CacheConfig {
        rw_handling: RwHandling::Read,
        ..CacheConfig::default()
    });
    v.push(CacheConfig {
        rw_handling: RwHandling::Both,
        ..CacheConfig::default()
    });
    v
}

/// Sweep results are bit-identical to a per-config sequential
/// `Simulator::run`, and identical across 1, 2, and 8 worker threads.
#[test]
fn sweep_equals_sequential_at_any_thread_count() {
    let trace = seeded_trace(0x5EED, 400);
    let configs = grid();
    assert!(configs.len() >= 8);
    let sequential: Vec<CacheMetrics> = configs.iter().map(|c| Simulator::run(&trace, c)).collect();
    for jobs in [1usize, 2, 8] {
        let swept = sweep::run_with_jobs(&trace, &configs, jobs);
        assert_eq!(swept.len(), configs.len());
        for (i, (c, m)) in swept.iter().enumerate() {
            assert_eq!(c, &configs[i], "jobs={jobs}: order must match input");
            assert_eq!(m, &sequential[i], "jobs={jobs}: config {i} diverged");
        }
    }
}

/// The Table VI grid shape (sizes x policies) on a second seed.
#[test]
fn table_vi_grid_is_exact() {
    let trace = seeded_trace(1985, 600);
    let configs: Vec<CacheConfig> = [390u64, 1024, 2048, 4096, 8192, 16_384]
        .iter()
        .flat_map(|&kb| {
            WritePolicy::TABLE_VI.into_iter().map(move |p| CacheConfig {
                cache_bytes: kb * 1024,
                write_policy: p,
                ..CacheConfig::default()
            })
        })
        .collect();
    let swept = sweep::run_with_jobs(&trace, &configs, 8);
    for (c, m) in &swept {
        assert_eq!(m, &Simulator::run(&trace, c));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Shared-expansion reuse never changes the miss ratio: for random
    /// configurations (random consumption fields on both sides of the
    /// expansion key) and a random thread count, the sweep's miss
    /// ratios equal freshly-expanded sequential runs.
    #[test]
    fn shared_expansion_preserves_miss_ratio(
        seed in 0u64..1_000,
        jobs in 1usize..9,
        specs in prop::collection::vec(
            (1u64..65, 0u32..3, 0u32..3, 0u32..2, any::<bool>()),
            2..10,
        ),
    ) {
        let trace = seeded_trace(seed, 150);
        let configs: Vec<CacheConfig> = specs
            .iter()
            .map(|&(cache_blocks, policy, rw, block_shift, paging)| CacheConfig {
                cache_bytes: cache_blocks * 16 * 1024,
                block_size: 4096 << block_shift,
                write_policy: [
                    WritePolicy::WriteThrough,
                    WritePolicy::FlushBack { interval_ms: 30_000 },
                    WritePolicy::DelayedWrite,
                ][policy as usize],
                rw_handling: [RwHandling::Write, RwHandling::Read, RwHandling::Both]
                    [rw as usize],
                simulate_paging: paging,
                ..CacheConfig::default()
            })
            .collect();
        let swept = sweep::run_with_jobs(&trace, &configs, jobs);
        for (i, (c, m)) in swept.iter().enumerate() {
            let fresh = Simulator::run(&trace, c);
            prop_assert_eq!(
                m.miss_ratio(),
                fresh.miss_ratio(),
                "config {} diverged under jobs={}",
                i,
                jobs
            );
            prop_assert_eq!(m, &fresh);
        }
    }
}
