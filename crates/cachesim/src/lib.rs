//! Trace-driven disk block cache simulation (Section 6 of the paper).
//!
//! Given a logical trace, this crate replays every byte range transferred
//! (billed at the `close`/`seek` that ended each sequential run) against
//! a simulated cache of fixed-size blocks, and reports the paper's
//! metric: the **miss ratio** — disk I/O operations per logical block
//! access.
//!
//! The simulator reproduces the design space explored in Section 6:
//!
//! * **cache size** — any capacity, from the 4.2 BSD default (~400
//!   kbytes) to many megabytes;
//! * **write policy** — write-through, flush-back at an interval (30 s
//!   and 5 min in the paper), and delayed-write (write only on
//!   eviction);
//! * **block size** — 1 to 32 kbytes in the paper's sweep;
//! * **whole-block-overwrite elision** — a missing block about to be
//!   entirely overwritten is not first read from disk;
//! * **delete/overwrite invalidation** — blocks of deleted files are
//!   dropped from the cache, dirty ones *without ever being written*,
//!   which is the mechanism behind delayed-write's large win;
//! * **paging approximation** (Figure 7) — each `execve` forces a
//!   whole-file read of the program file;
//! * **replay fidelity** ([`Fidelity`], DESIGN.md §15) — the same trace
//!   replayable at block, syscall, or open-session granularity, with
//!   block fidelity (the paper's simulator) as the default.
//!
//! # Examples
//!
//! ```
//! use cachesim::{CacheConfig, Simulator, WritePolicy};
//! use fstrace::{AccessMode, TraceBuilder};
//!
//! let mut b = TraceBuilder::new();
//! let f = b.new_file_id();
//! let u = b.new_user_id();
//! let o = b.open(0, f, u, AccessMode::ReadOnly, 8192, false);
//! b.close(100, o, 8192);
//! let o = b.open(200, f, u, AccessMode::ReadOnly, 8192, false);
//! b.close(300, o, 8192);
//! let trace = b.finish();
//!
//! let config = CacheConfig {
//!     cache_bytes: 64 * 1024,
//!     block_size: 4096,
//!     write_policy: WritePolicy::DelayedWrite,
//!     ..CacheConfig::default()
//! };
//! let m = Simulator::run(&trace, &config);
//! // First read misses both blocks, second read hits both.
//! assert_eq!(m.logical_accesses(), 4);
//! assert_eq!(m.disk_reads, 2);
//! assert!((m.miss_ratio() - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod metrics;
mod replay;
mod series;
pub mod stack;
pub mod sweep;

pub use cache::{BlockCache, BlockId};
pub use config::{CacheConfig, Fidelity, Replacement, RwHandling, WritePolicy};
pub use metrics::CacheMetrics;
pub use replay::{
    expansion_count, replay_events, BlockExpander, EventExpander, OpenExpander, ReplayEvent,
    Replayer, Simulator, SyscallExpander,
};
pub use series::{MissSeries, SeriesPoint};
pub use stack::StackEngine;
pub use sweep::ExpansionKey;
