//! Simulation results.

use simstat::Distribution;

/// Counters and distributions produced by one simulation run.
///
/// Equality is exact (all fields are integer counters or integer
/// distributions), so two runs can be checked for bit-identical results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Logical block read accesses.
    pub logical_reads: u64,
    /// Logical block write accesses.
    pub logical_writes: u64,
    /// Disk reads (block fetches on misses).
    pub disk_reads: u64,
    /// Disk writes (write-through, flushes, evictions, end-of-run sync
    /// is *not* counted — the paper measures steady-state traffic).
    pub disk_writes: u64,
    /// Reads satisfied from the cache.
    pub read_hits: u64,
    /// Fetches avoided because the whole block was being overwritten.
    pub elided_fetches: u64,
    /// Dirty blocks dropped by invalidation before ever reaching disk
    /// (deleted or overwritten while cached).
    pub dirty_blocks_never_written: u64,
    /// Blocks that were written (dirtied) at least once.
    pub blocks_dirtied: u64,
    /// Milliseconds each dirty block stayed in the cache before being
    /// written, invalidated, or the run ending (Section 6.2's residency
    /// measurement: "about 20% of all blocks stay in the cache longer
    /// than 20 minutes" at 4 Mbytes).
    pub dirty_residency_ms: Distribution,
}

impl CacheMetrics {
    /// Total logical block accesses.
    pub fn logical_accesses(&self) -> u64 {
        self.logical_reads + self.logical_writes
    }

    /// Total disk I/O operations.
    pub fn disk_ios(&self) -> u64 {
        self.disk_reads + self.disk_writes
    }

    /// The paper's metric: disk I/Os per logical block access.
    ///
    /// Zero accesses yield `0.0`, per the workspace-wide [`obs::ratio`]
    /// convention.
    pub fn miss_ratio(&self) -> f64 {
        obs::ratio(self.disk_ios(), self.logical_accesses())
    }

    /// Fraction of dirtied blocks that never reached disk (the paper
    /// reports ~75% under delayed-write with large caches).
    pub fn never_written_fraction(&self) -> f64 {
        obs::ratio(self.dirty_blocks_never_written, self.blocks_dirtied)
    }

    /// Fraction of dirty residencies longer than `minutes`.
    pub fn residency_longer_than_minutes(&mut self, minutes: u64) -> f64 {
        if self.dirty_residency_ms.is_empty() {
            return 0.0;
        }
        1.0 - self.dirty_residency_ms.fraction_le(minutes * 60_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut m = CacheMetrics {
            logical_reads: 60,
            logical_writes: 40,
            disk_reads: 20,
            disk_writes: 5,
            ..CacheMetrics::default()
        };
        assert_eq!(m.logical_accesses(), 100);
        assert_eq!(m.disk_ios(), 25);
        assert!((m.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(m.never_written_fraction(), 0.0);
        assert_eq!(m.residency_longer_than_minutes(20), 0.0);
    }

    #[test]
    fn empty_run() {
        let m = CacheMetrics::default();
        assert_eq!(m.miss_ratio(), 0.0);
    }

    #[test]
    fn residency_fraction() {
        let mut m = CacheMetrics::default();
        m.dirty_residency_ms.add(10 * 60_000, 1);
        m.dirty_residency_ms.add(30 * 60_000, 1);
        assert!((m.residency_longer_than_minutes(20) - 0.5).abs() < 1e-12);
    }
}
