//! Simulation parameters.

/// Write policy for dirty cache blocks (Section 6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Each modification writes the block straight to disk.
    WriteThrough,
    /// The cache is scanned at a fixed interval; blocks modified since
    /// the last scan are written (the paper tries 30 s and 5 min).
    FlushBack {
        /// Scan interval in milliseconds.
        interval_ms: u64,
    },
    /// Blocks are written only when ejected from the cache.
    DelayedWrite,
}

impl WritePolicy {
    /// The paper's four columns, in Table VI order.
    pub const TABLE_VI: [WritePolicy; 4] = [
        WritePolicy::WriteThrough,
        WritePolicy::FlushBack {
            interval_ms: 30_000,
        },
        WritePolicy::FlushBack {
            interval_ms: 300_000,
        },
        WritePolicy::DelayedWrite,
    ];

    /// Human-readable name as used in the paper's tables.
    pub fn name(&self) -> String {
        match self {
            WritePolicy::WriteThrough => "write-through".to_string(),
            WritePolicy::FlushBack { interval_ms } => {
                if *interval_ms % 60_000 == 0 {
                    format!("{} min flush", interval_ms / 60_000)
                } else {
                    format!("{} sec flush", interval_ms / 1000)
                }
            }
            WritePolicy::DelayedWrite => "delayed write".to_string(),
        }
    }
}

/// Cache replacement policy.
///
/// The paper uses LRU; FIFO is provided as an ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Least recently used (the paper's choice).
    #[default]
    Lru,
    /// First in, first out (ablation).
    Fifo,
}

/// How to bill runs from read-write opens, whose direction the
/// no-read-write trace cannot determine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RwHandling {
    /// Treat as writes (the dominant read-write use is appending).
    #[default]
    Write,
    /// Treat as reads.
    Read,
    /// Bill both a read and a write access per block.
    Both,
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Fixed block size in bytes.
    pub block_size: u64,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Replacement policy.
    pub replacement: Replacement,
    /// Skip the disk read when a missing block is about to be entirely
    /// overwritten (Section 6.1; the paper's simulator does this).
    pub whole_block_elision: bool,
    /// Drop blocks of deleted/overwritten files from the cache, dirty
    /// ones without writing them (Section 6.2's delayed-write win).
    pub invalidate_on_delete: bool,
    /// Billing for read-write opens.
    pub rw_handling: RwHandling,
    /// Approximate program paging by a whole-file read per `execve`
    /// (Figure 7).
    pub simulate_paging: bool,
}

impl Default for CacheConfig {
    /// The 4.2 BSD-like baseline: 400 kbyte cache, 4 kbyte blocks,
    /// 30-second flush-back, LRU.
    fn default() -> Self {
        CacheConfig {
            cache_bytes: 400 * 1024,
            block_size: 4096,
            write_policy: WritePolicy::FlushBack {
                interval_ms: 30_000,
            },
            replacement: Replacement::Lru,
            whole_block_elision: true,
            invalidate_on_delete: true,
            rw_handling: RwHandling::Write,
            simulate_paging: false,
        }
    }
}

impl CacheConfig {
    /// Number of whole blocks that fit in the cache (at least 1).
    pub fn capacity_blocks(&self) -> u64 {
        (self.cache_bytes / self.block_size).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_blocks_rounds_down() {
        let c = CacheConfig {
            cache_bytes: 10_000,
            block_size: 4096,
            ..CacheConfig::default()
        };
        assert_eq!(c.capacity_blocks(), 2);
        let tiny = CacheConfig {
            cache_bytes: 100,
            block_size: 4096,
            ..CacheConfig::default()
        };
        assert_eq!(tiny.capacity_blocks(), 1);
    }

    #[test]
    fn policy_names() {
        assert_eq!(WritePolicy::WriteThrough.name(), "write-through");
        assert_eq!(
            WritePolicy::FlushBack {
                interval_ms: 30_000
            }
            .name(),
            "30 sec flush"
        );
        assert_eq!(
            WritePolicy::FlushBack {
                interval_ms: 300_000
            }
            .name(),
            "5 min flush"
        );
        assert_eq!(WritePolicy::DelayedWrite.name(), "delayed write");
    }

    #[test]
    fn table_vi_order() {
        assert_eq!(WritePolicy::TABLE_VI[0], WritePolicy::WriteThrough);
        assert_eq!(WritePolicy::TABLE_VI[3], WritePolicy::DelayedWrite);
    }
}
