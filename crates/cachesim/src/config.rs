//! Simulation parameters.

/// Write policy for dirty cache blocks (Section 6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Each modification writes the block straight to disk.
    WriteThrough,
    /// The cache is scanned at a fixed interval; blocks modified since
    /// the last scan are written (the paper tries 30 s and 5 min).
    FlushBack {
        /// Scan interval in milliseconds.
        interval_ms: u64,
    },
    /// Blocks are written only when ejected from the cache.
    DelayedWrite,
}

impl WritePolicy {
    /// The paper's four columns, in Table VI order.
    pub const TABLE_VI: [WritePolicy; 4] = [
        WritePolicy::WriteThrough,
        WritePolicy::FlushBack {
            interval_ms: 30_000,
        },
        WritePolicy::FlushBack {
            interval_ms: 300_000,
        },
        WritePolicy::DelayedWrite,
    ];

    /// Human-readable name as used in the paper's tables.
    pub fn name(&self) -> String {
        match self {
            WritePolicy::WriteThrough => "write-through".to_string(),
            WritePolicy::FlushBack { interval_ms } => {
                if *interval_ms % 60_000 == 0 {
                    format!("{} min flush", interval_ms / 60_000)
                } else {
                    format!("{} sec flush", interval_ms / 1000)
                }
            }
            WritePolicy::DelayedWrite => "delayed write".to_string(),
        }
    }
}

/// Cache replacement policy.
///
/// The paper uses LRU; FIFO is provided as an ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Least recently used (the paper's choice).
    #[default]
    Lru,
    /// First in, first out (ablation).
    Fifo,
}

/// Replay fidelity: the granularity at which a logical trace is
/// expanded into cache accesses (DESIGN.md §15).
///
/// The taxonomy follows Kahanwal & Singh's replay-fidelity levels.
/// Every level consumes the same trace records through the same
/// expansion layer; what changes is how much of the original request
/// structure survives into the replayed events:
///
/// * [`Block`]: the paper's expansion — every sequential run is split
///   into block-size accesses with per-block byte accounting
///   (partial-overwrite fetches, per-block whole-write elision). This
///   is the pre-refactor behavior, kept bit-identical.
/// * [`Syscall`]: one replay event per logical operation (the run a
///   `seek`/`close` bills), carrying the covering block-run extent.
///   The replayer touches the same blocks but skips per-block byte
///   accounting: requests are quantized to block units at op
///   granularity, so partial-block write fetches disappear.
/// * [`Open`]: one replay event per open-close session, reconstructed
///   from the open table's transfer totals and billed at close time as
///   a single sequential run from offset 0. Intra-session structure
///   (seek patterns, run offsets) is not preserved.
///
/// [`Block`]: Fidelity::Block
/// [`Syscall`]: Fidelity::Syscall
/// [`Open`]: Fidelity::Open
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fidelity {
    /// Whole-session replay (coarsest).
    Open,
    /// Per-operation replay without block decomposition.
    Syscall,
    /// Per-block replay with byte accounting (the paper's simulator).
    #[default]
    Block,
}

impl Fidelity {
    /// All fidelities, finest first (reference level leads).
    pub const ALL: [Fidelity; 3] = [Fidelity::Block, Fidelity::Syscall, Fidelity::Open];

    /// Short lowercase name, accepted back by [`Fidelity::parse`].
    pub fn name(&self) -> &'static str {
        match self {
            Fidelity::Open => "open",
            Fidelity::Syscall => "syscall",
            Fidelity::Block => "block",
        }
    }

    /// Parses a name as produced by [`Fidelity::name`].
    pub fn parse(s: &str) -> Option<Fidelity> {
        match s {
            "open" => Some(Fidelity::Open),
            "syscall" => Some(Fidelity::Syscall),
            "block" => Some(Fidelity::Block),
            _ => None,
        }
    }
}

/// How to bill runs from read-write opens, whose direction the
/// no-read-write trace cannot determine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RwHandling {
    /// Treat as writes (the dominant read-write use is appending).
    #[default]
    Write,
    /// Treat as reads.
    Read,
    /// Bill both a read and a write access per block.
    Both,
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache capacity in bytes.
    pub cache_bytes: u64,
    /// Fixed block size in bytes.
    pub block_size: u64,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Replacement policy.
    pub replacement: Replacement,
    /// Skip the disk read when a missing block is about to be entirely
    /// overwritten (Section 6.1; the paper's simulator does this).
    pub whole_block_elision: bool,
    /// Drop blocks of deleted/overwritten files from the cache, dirty
    /// ones without writing them (Section 6.2's delayed-write win).
    pub invalidate_on_delete: bool,
    /// Billing for read-write opens.
    pub rw_handling: RwHandling,
    /// Approximate program paging by a whole-file read per `execve`
    /// (Figure 7).
    pub simulate_paging: bool,
    /// Replay fidelity (expansion granularity); [`Fidelity::Block`] is
    /// the paper's simulator and the default.
    pub fidelity: Fidelity,
}

impl Default for CacheConfig {
    /// The 4.2 BSD-like baseline: 400 kbyte cache, 4 kbyte blocks,
    /// 30-second flush-back, LRU.
    fn default() -> Self {
        CacheConfig {
            cache_bytes: 400 * 1024,
            block_size: 4096,
            write_policy: WritePolicy::FlushBack {
                interval_ms: 30_000,
            },
            replacement: Replacement::Lru,
            whole_block_elision: true,
            invalidate_on_delete: true,
            rw_handling: RwHandling::Write,
            simulate_paging: false,
            fidelity: Fidelity::Block,
        }
    }
}

impl CacheConfig {
    /// Number of whole blocks that fit in the cache (at least 1).
    pub fn capacity_blocks(&self) -> u64 {
        (self.cache_bytes / self.block_size).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_blocks_rounds_down() {
        let c = CacheConfig {
            cache_bytes: 10_000,
            block_size: 4096,
            ..CacheConfig::default()
        };
        assert_eq!(c.capacity_blocks(), 2);
        let tiny = CacheConfig {
            cache_bytes: 100,
            block_size: 4096,
            ..CacheConfig::default()
        };
        assert_eq!(tiny.capacity_blocks(), 1);
    }

    #[test]
    fn policy_names() {
        assert_eq!(WritePolicy::WriteThrough.name(), "write-through");
        assert_eq!(
            WritePolicy::FlushBack {
                interval_ms: 30_000
            }
            .name(),
            "30 sec flush"
        );
        assert_eq!(
            WritePolicy::FlushBack {
                interval_ms: 300_000
            }
            .name(),
            "5 min flush"
        );
        assert_eq!(WritePolicy::DelayedWrite.name(), "delayed write");
    }

    #[test]
    fn table_vi_order() {
        assert_eq!(WritePolicy::TABLE_VI[0], WritePolicy::WriteThrough);
        assert_eq!(WritePolicy::TABLE_VI[3], WritePolicy::DelayedWrite);
    }

    #[test]
    fn fidelity_names_round_trip() {
        for f in Fidelity::ALL {
            assert_eq!(Fidelity::parse(f.name()), Some(f));
        }
        assert_eq!(Fidelity::parse("nope"), None);
        assert_eq!(Fidelity::default(), Fidelity::Block);
        assert_eq!(Fidelity::ALL[0], Fidelity::Block);
    }
}
