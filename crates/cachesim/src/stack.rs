//! Single-pass stack-distance profiling: every cache size in one replay.
//!
//! LRU obeys the *inclusion property*: at any instant, the contents of a
//! cache of capacity `C` are exactly the `C` most recently used blocks,
//! so a cache of capacity `C' > C` holds a superset. A reference to a
//! block whose reuse *stack distance* is `d` (it is the `d`-th most
//! recently used block) therefore hits every capacity `>= d` and misses
//! every capacity `< d` — one replay annotated with distances yields
//! exact miss counts for the whole Figure 5 / Table VI size axis
//! (Mattson's classic one-pass algorithm).
//!
//! This module extends the classic algorithm in two directions the
//! paper's workload demands:
//!
//! * **Deletions.** `unlink`/`truncate` invalidate cached blocks. Naive
//!   removal from the recency stack would shift deeper blocks *up*,
//!   falsely re-admitting them into small caches they had already been
//!   evicted from. Instead an invalidated entry becomes a **hole** in
//!   place: positions of other entries never decrease, preserving the
//!   per-capacity window invariant (valid entries among the top `C`
//!   positions == the direct capacity-`C` cache contents). A later
//!   access consumes the *shallowest* hole above the referenced block —
//!   capacities between the hole and the block fill free space without
//!   evicting, exactly like the direct caches.
//! * **Write policies.** Dirty state diverges across capacities (a small
//!   cache evicts-and-writes a dirty block that a large cache still
//!   holds dirty), but it diverges *monotonically*: between accesses a
//!   block's stack depth never decreases, so it crosses capacity
//!   boundaries smallest-first and its per-capacity dirty flags form a
//!   suffix of the capacity list. One `(policy, block)` record holding
//!   the smallest still-dirty capacity index `m` and per-capacity dirty
//!   timestamps reproduces write-through, flush-back (any interval), and
//!   delayed-write accounting bit-identically in the same single pass.
//!
//! What cannot be expressed: FIFO replacement (no inclusion property).
//! Such cells — and subgroups of one cell, where a profile saves
//! nothing — fall back to the direct [`crate::BlockCache`] simulator;
//! [`crate::sweep::run_source`] does the partitioning.
//!
//! The order-statistic structure is a Fenwick tree over recency
//! sequence numbers: depth queries and "who sits at depth `c`"
//! selections are both O(log n) with n bounded by the largest tracked
//! capacity (entries sinking past it are pruned — they are in no
//! tracked cache, so a later reference is a cold miss everywhere, which
//! is exactly what forgetting them produces).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};

use fstrace::{FastMap, FastSet, FileId, TraceRecord};
use simstat::Distribution;

use crate::cache::BlockId;
use crate::config::{CacheConfig, Fidelity, Replacement, WritePolicy};
use crate::metrics::CacheMetrics;
use crate::replay::{EventExpander, ReplayEvent};

/// Caps the Fenwick tree size; configurations this large fall back to
/// direct simulation rather than risk `u32` sequence overflow.
const MAX_TRACKED_BLOCKS: u64 = 1 << 30;

/// Process-wide switch for the profiled sweep path (default on).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables stack-distance profiling in the sweep engine.
///
/// Disabling forces every cell through the direct simulator — results
/// are identical either way; this exists so benchmarks can measure the
/// two paths against each other.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the sweep engine may use stack-distance profiling.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether a single configuration's metrics can be derived from a
/// stack-distance profile (block fidelity, LRU replacement, sane
/// capacity).
///
/// The engine's per-block byte accounting models [`Fidelity::Block`]
/// expansion only; syscall/open-fidelity cells always fall back to
/// direct simulation. Profilable cells still need a *partner* sharing
/// block size, elision, and invalidation settings before profiling
/// beats a direct replay; that grouping is the sweep engine's job.
pub fn profilable(config: &CacheConfig) -> bool {
    config.fidelity == Fidelity::Block
        && config.replacement == Replacement::Lru
        && config.capacity_blocks() < MAX_TRACKED_BLOCKS
}

/// A Fenwick (binary indexed) tree over 0/1 occupancy of sequence
/// slots, supporting prefix sums and rank selection in O(log n).
struct Fenwick {
    tree: Vec<u32>,
    /// Tree capacity (`tree.len() - 1`), a power of two, so the select
    /// walk starts at the root in one step.
    top_bit: usize,
}

impl Fenwick {
    fn new(slots: usize) -> Self {
        // Pad capacity to a power of two: `select` then needs no bounds
        // check (every probe `pos + step` stays `<= cap`, because `pos`
        // is a sum of distinct steps larger than `step`), which lets
        // the walk run branch-free.
        let cap = slots.next_power_of_two().max(1);
        Fenwick {
            tree: vec![0; cap + 1],
            top_bit: cap,
        }
    }

    /// Adds `delta` at sequence slot `seq` (0-based).
    fn add(&mut self, seq: u32, delta: i32) {
        let mut i = seq as usize + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u32);
            i += i & i.wrapping_neg();
        }
    }

    /// Number of occupied slots with sequence `<= seq`.
    fn prefix(&self, seq: u32) -> u64 {
        let mut i = seq as usize + 1;
        let mut acc = 0u64;
        while i > 0 {
            acc += u64::from(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        acc
    }

    /// Smallest sequence slot whose prefix sum reaches `k` (`k >= 1`;
    /// caller guarantees such a slot exists).
    ///
    /// The descent is branchless: each level turns "descend right?"
    /// into a 0/1 mask, so the loop is a fixed log₂(cap) iterations of
    /// straight-line arithmetic with no unpredictable branch — this
    /// walk dominates the profiled sweep's per-access cost.
    fn select(&self, k: u64) -> u32 {
        let mut pos = 0usize;
        let mut rem = k;
        let mut step = self.top_bit;
        while step > 0 {
            // The root probe (`pos == 0`, `step == cap`) reads the
            // whole-tree sum, which is `>= rem` by the caller's
            // guarantee, so `pos + step` never exceeds `cap`.
            let v = u64::from(self.tree[pos + step]);
            let take = usize::from(v < rem);
            rem -= v * take as u64;
            pos += step & take.wrapping_neg();
            step >>= 1;
        }
        pos as u32 // 1-based slot `pos + 1` → 0-based sequence `pos`.
    }
}

/// What occupies one sequence slot of the recency stack.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SeqState {
    /// Slot unused (never allocated, consumed, or pruned).
    Empty,
    /// An invalidated entry: keeps its position, owns no block.
    Hole,
    /// A live cached block.
    Block(BlockId),
}

/// Per-(policy, block) dirty record.
///
/// `m` is the smallest capacity index at which the block is still
/// dirty (capacities are sorted ascending, and dirtiness is a suffix:
/// small caches evict-and-clean first). `t[i]` is the time the block
/// became dirty in the capacity-`i` cache, valid for `i >= m` — the
/// timestamps differ per capacity because a small cache that evicted
/// and re-dirtied the block restarts its residency clock while a large
/// cache's older clock keeps running.
struct DirtyPart {
    m: usize,
    t: Vec<u64>,
}

/// Dirty-block bookkeeping for one tracked write policy across all
/// capacities (write-through needs none: its per-cell write traffic is
/// capacity-independent and derived analytically).
struct PolicyState {
    policy: WritePolicy,
    /// Flush interval for `FlushBack`, `None` otherwise.
    interval_ms: Option<u64>,
    last_flush_ms: u64,
    dirty: FastMap<BlockId, DirtyPart>,
    /// Per capacity index: writebacks (flushes + evictions).
    disk_writes: Vec<u64>,
    /// Per capacity index: dirty blocks invalidated before any write.
    never_written: Vec<u64>,
    /// Per capacity index: dirty residency distribution.
    residency: Vec<Distribution>,
    /// `dirtied_split[m]` counts clean→dirty transitions whose prior
    /// smallest-dirty index was `m` — the transition dirties exactly
    /// the capacities `< m`, so `blocks_dirtied(i) = Σ_{m > i}`.
    dirtied_split: Vec<u64>,
}

/// How one requested cell maps onto the shared profile.
struct CellSpec {
    /// Index into the sorted distinct capacity list.
    cap_idx: usize,
    /// `None` for write-through (derived), `Some(p)` indexing
    /// [`StackEngine::pol`] otherwise.
    policy_idx: Option<usize>,
}

/// The single-pass profiler: feed it the [`ReplayEvent`] stream once,
/// and [`StackEngine::finish`] returns a [`CacheMetrics`] per requested
/// cell, each bit-identical to a direct [`crate::Simulator`] run of
/// that cell over the same events.
pub struct StackEngine {
    // Shared cell parameters.
    bs: u64,
    elision: bool,
    invalidate_on_delete: bool,
    /// Sorted distinct capacities, in blocks. `K = caps.len()`.
    caps: Vec<u64>,
    cells: Vec<CellSpec>,
    pol: Vec<PolicyState>,

    // The recency stack.
    fen: Fenwick,
    owner: Vec<SeqState>,
    blocks: FastMap<BlockId, u32>,
    holes: BTreeSet<u32>,
    active: u64,
    next_seq: u32,
    per_file: FastMap<FileId, FastSet<u64>>,

    // Replay state mirroring `Replayer`.
    sizes: FastMap<FileId, u64>,
    end_time: u64,

    // Distance accounting. `*_split[k]` counts accesses whose distance
    // exceeded exactly the `k` smallest capacities (misses for capacity
    // indices `< k`); `k == K` means a miss everywhere.
    total_reads: u64,
    total_writes: u64,
    read_split: Vec<u64>,
    write_whole_split: Vec<u64>,
    write_partial_split: Vec<u64>,

    tree_peak: u64,
    distances: u64,
}

impl StackEngine {
    /// Builds a profiler covering `cells`, or `None` when the cells are
    /// not jointly expressible: every cell must be [`profilable`] and
    /// all must share block size, whole-block elision, delete
    /// invalidation, and expansion options (they consume one event
    /// stream). Any write policy mix is fine.
    pub fn try_new(cells: &[CacheConfig]) -> Option<StackEngine> {
        let first = cells.first()?;
        for c in cells {
            let compatible = profilable(c)
                && c.block_size == first.block_size
                && c.whole_block_elision == first.whole_block_elision
                && c.invalidate_on_delete == first.invalidate_on_delete
                && c.rw_handling == first.rw_handling
                && c.simulate_paging == first.simulate_paging;
            if !compatible {
                return None;
            }
        }
        let mut caps: Vec<u64> = cells.iter().map(|c| c.capacity_blocks()).collect();
        caps.sort_unstable();
        caps.dedup();
        let k = caps.len();

        let mut pol: Vec<PolicyState> = Vec::new();
        let cells = cells
            .iter()
            .map(|c| {
                let cap_idx = caps.binary_search(&c.capacity_blocks()).expect("own cap");
                let policy_idx = match c.write_policy {
                    WritePolicy::WriteThrough => None,
                    p => Some(match pol.iter().position(|ps| ps.policy == p) {
                        Some(i) => i,
                        None => {
                            pol.push(PolicyState {
                                policy: p,
                                interval_ms: match p {
                                    WritePolicy::FlushBack { interval_ms } => Some(interval_ms),
                                    _ => None,
                                },
                                last_flush_ms: 0,
                                dirty: FastMap::default(),
                                disk_writes: vec![0; k],
                                never_written: vec![0; k],
                                residency: vec![Distribution::new(); k],
                                dirtied_split: vec![0; k + 1],
                            });
                            pol.len() - 1
                        }
                    }),
                };
                CellSpec {
                    cap_idx,
                    policy_idx,
                }
            })
            .collect();

        Some(StackEngine {
            bs: first.block_size,
            elision: first.whole_block_elision,
            invalidate_on_delete: first.invalidate_on_delete,
            caps,
            cells,
            pol,
            fen: Fenwick::new(64),
            owner: vec![SeqState::Empty; 64],
            blocks: FastMap::default(),
            holes: BTreeSet::new(),
            active: 0,
            next_seq: 0,
            per_file: FastMap::default(),
            sizes: FastMap::default(),
            end_time: 0,
            total_reads: 0,
            total_writes: 0,
            read_split: vec![0; k + 1],
            write_whole_split: vec![0; k + 1],
            write_partial_split: vec![0; k + 1],
            tree_peak: 0,
            distances: 0,
        })
    }

    /// Positional depth of sequence slot `seq`: 1 = most recent, holes
    /// count.
    fn depth(&self, seq: u32) -> u64 {
        self.active - self.fen.prefix(seq) + 1
    }

    /// Sequence slot of the entry at positional depth `c` (1-based;
    /// caller guarantees `c <= active`).
    fn seq_at_depth(&self, c: u64) -> u32 {
        self.fen.select(self.active - c + 1)
    }

    /// Renumbers live entries densely from 0, growing the slot arrays
    /// when more than half full. Amortized O(1) per access: each
    /// compaction reclaims at least half the slot space.
    fn compact(&mut self) {
        let live: Vec<(u32, SeqState)> = self
            .owner
            .iter()
            .enumerate()
            .filter(|(_, s)| !matches!(s, SeqState::Empty))
            .map(|(i, s)| (i as u32, *s))
            .collect();
        let mut slots = self.owner.len();
        while live.len() + 1 > slots / 2 {
            slots *= 2;
        }
        self.fen = Fenwick::new(slots);
        self.owner = vec![SeqState::Empty; slots];
        self.holes.clear();
        for (new_seq, (_, state)) in live.iter().enumerate() {
            let new_seq = new_seq as u32;
            self.owner[new_seq as usize] = *state;
            self.fen.add(new_seq, 1);
            match state {
                SeqState::Hole => {
                    self.holes.insert(new_seq);
                }
                SeqState::Block(id) => {
                    self.blocks.insert(*id, new_seq);
                }
                SeqState::Empty => unreachable!(),
            }
        }
        self.next_seq = live.len() as u32;
    }

    /// Drops the entry at `seq` from the tree entirely.
    fn clear_slot(&mut self, seq: u32) {
        self.owner[seq as usize] = SeqState::Empty;
        self.fen.add(seq, -1);
        self.active -= 1;
    }

    /// Catch-up flush scans, mirroring `BlockCache::run_flush_if_due`:
    /// the schedule depends only on access times, never on capacity, so
    /// one scan covers every capacity column at once.
    fn flush_if_due(&mut self, now_ms: u64) {
        let k = self.caps.len();
        for ps in &mut self.pol {
            let Some(interval_ms) = ps.interval_ms else {
                continue;
            };
            if now_ms.saturating_sub(ps.last_flush_ms) >= interval_ms {
                for (_, part) in ps.dirty.drain() {
                    for i in part.m..k {
                        ps.disk_writes[i] += 1;
                        ps.residency[i].add(now_ms.saturating_sub(part.t[i]), 1);
                    }
                }
                ps.last_flush_ms = now_ms - (now_ms - ps.last_flush_ms) % interval_ms;
            }
        }
    }

    /// Accounts an eviction of `victim` from the capacity-index-`j`
    /// cache at `now_ms`: a dirty victim is written back, exactly like
    /// `BlockCache::evict`.
    ///
    /// The victim can only be dirty at capacity `j` with `m == j`:
    /// depths are nondecreasing between accesses, so it crossed every
    /// smaller capacity boundary (cleaning those columns) before this
    /// one, and a re-dirtying write would have moved it back to the
    /// top.
    fn evict_dirty(&mut self, victim: BlockId, j: usize, now_ms: u64) {
        let k = self.caps.len();
        for ps in &mut self.pol {
            if let Some(part) = ps.dirty.get_mut(&victim) {
                debug_assert!(part.m >= j, "dirty suffix must start at or past {j}");
                if part.m == j {
                    ps.disk_writes[j] += 1;
                    ps.residency[j].add(now_ms.saturating_sub(part.t[j]), 1);
                    part.m = j + 1;
                    if part.m == k {
                        ps.dirty.remove(&victim);
                    }
                }
            }
        }
    }

    /// One block reference: `write` is `None` for reads, else
    /// `Some(whole_block_overwrite)`.
    fn access(&mut self, id: BlockId, now_ms: u64, write: Option<bool>) {
        if self.next_seq as usize == self.owner.len() {
            self.compact();
        }
        self.flush_if_due(now_ms);
        self.distances += 1;

        let s_b = self.blocks.get(&id).copied();
        let d = match s_b {
            Some(s) => self.depth(s),
            None => u64::MAX,
        };
        let k = self.caps.partition_point(|&c| c < d);
        match write {
            None => {
                self.total_reads += 1;
                self.read_split[k] += 1;
            }
            Some(true) => {
                self.total_writes += 1;
                self.write_whole_split[k] += 1;
            }
            Some(false) => {
                self.total_writes += 1;
                self.write_partial_split[k] += 1;
            }
        }

        // The shallowest hole (highest sequence) above the referenced
        // block. Holes below it are irrelevant this access: positions
        // at or beyond the block's depth do not move.
        let hole = self
            .holes
            .iter()
            .next_back()
            .copied()
            .filter(|&hs| s_b.is_none_or(|s| hs > s));
        let bound = match hole {
            Some(hs) => self.depth(hs),
            None => d,
        };

        // Eviction walk: the entry at depth exactly `caps[j]` shifts to
        // `caps[j] + 1`, leaving the capacity-`j` window — for every
        // capacity below both the reuse depth (larger ones hit) and the
        // shallowest hole (those fill free space instead). Such entries
        // are valid blocks: no holes exist above the shallowest one.
        let last = self.caps.len() - 1;
        for j in 0..self.caps.len() {
            let c = self.caps[j];
            if c >= bound || c > self.active {
                break;
            }
            let victim_seq = self.seq_at_depth(c);
            let SeqState::Block(victim) = self.owner[victim_seq as usize] else {
                unreachable!("entries above the shallowest hole are valid blocks");
            };
            self.evict_dirty(victim, j, now_ms);
            if j == last {
                // Sunk past the largest tracked capacity: in no cache
                // any more, so forget it — a future reference is a cold
                // miss everywhere, which is exactly what the direct
                // simulators see. Bounds the tree at `caps[last]`.
                self.clear_slot(victim_seq);
                self.blocks.remove(&victim);
                if let Some(set) = self.per_file.get_mut(&victim.file) {
                    set.remove(&victim.block);
                    if set.is_empty() {
                        self.per_file.remove(&victim.file);
                    }
                }
                debug_assert!(
                    self.pol.iter().all(|ps| !ps.dirty.contains_key(&victim)),
                    "pruned entry must be clean everywhere"
                );
            }
        }

        // Restack: consume the shallowest hole above the block, leave a
        // hole at the block's old position when one was consumed (the
        // hole migrates down — net positions: entries above the old
        // hole sink one, everything else stays), then push the block on
        // top.
        match (s_b, hole) {
            (Some(s), Some(hs)) => {
                self.holes.remove(&hs);
                self.clear_slot(hs);
                self.owner[s as usize] = SeqState::Hole;
                self.holes.insert(s);
            }
            (Some(s), None) => {
                self.clear_slot(s);
            }
            (None, Some(hs)) => {
                self.holes.remove(&hs);
                self.clear_slot(hs);
            }
            (None, None) => {}
        }
        let ns = self.next_seq;
        self.next_seq += 1;
        self.owner[ns as usize] = SeqState::Block(id);
        self.fen.add(ns, 1);
        self.active += 1;
        self.blocks.insert(id, ns);
        if s_b.is_none() {
            self.per_file.entry(id.file).or_default().insert(id.block);
        }
        self.tree_peak = self.tree_peak.max(self.active);

        // Dirty transitions: a write dirties the block in every
        // capacity column where it was clean (`i < m`), restarting
        // those residency clocks; columns `>= m` keep their original
        // dirtied-at times, exactly like the direct write-hit path.
        if write.is_some() {
            let k = self.caps.len();
            for ps in &mut self.pol {
                match ps.dirty.get_mut(&id) {
                    Some(part) => {
                        ps.dirtied_split[part.m] += 1;
                        for i in 0..part.m {
                            part.t[i] = now_ms;
                        }
                        part.m = 0;
                    }
                    None => {
                        ps.dirtied_split[k] += 1;
                        ps.dirty.insert(
                            id,
                            DirtyPart {
                                m: 0,
                                t: vec![now_ms; k],
                            },
                        );
                    }
                }
            }
        }
    }

    /// Invalidates one block: its entry becomes a hole in place (so no
    /// other entry's position changes), and dirty copies are dropped
    /// without writing — counted per capacity column where the block
    /// was dirty, which is necessarily a subset of the columns whose
    /// cache held it.
    fn invalidate_block(&mut self, id: BlockId, now_ms: u64) {
        let Some(seq) = self.blocks.remove(&id) else {
            return;
        };
        self.owner[seq as usize] = SeqState::Hole;
        self.holes.insert(seq);
        let k = self.caps.len();
        for ps in &mut self.pol {
            if let Some(part) = ps.dirty.remove(&id) {
                for i in part.m..k {
                    ps.never_written[i] += 1;
                    ps.residency[i].add(now_ms.saturating_sub(part.t[i]), 1);
                }
            }
        }
    }

    fn invalidate_file(&mut self, file: FileId, now_ms: u64) {
        let Some(blocks) = self.per_file.remove(&file) else {
            return;
        };
        for block in blocks {
            self.invalidate_block(BlockId { file, block }, now_ms);
        }
    }

    fn invalidate_beyond(&mut self, file: FileId, first_block: u64, now_ms: u64) {
        let Some(set) = self.per_file.get_mut(&file) else {
            return;
        };
        let doomed: Vec<u64> = set.iter().copied().filter(|&b| b >= first_block).collect();
        for b in &doomed {
            set.remove(b);
        }
        if set.is_empty() {
            self.per_file.remove(&file);
        }
        for block in doomed {
            self.invalidate_block(BlockId { file, block }, now_ms);
        }
    }

    /// Applies one replay event — the profiler's twin of
    /// `Replayer::step`, with identical block splitting, whole-write
    /// detection, and invalidation semantics.
    pub fn step(&mut self, ev: &ReplayEvent) {
        let bs = self.bs;
        self.end_time = self.end_time.max(ev.time());
        match *ev {
            ReplayEvent::SizeHint { file, size, .. } => {
                let e = self.sizes.entry(file).or_insert(size);
                *e = (*e).max(size);
            }
            ReplayEvent::Transfer {
                time_ms,
                file,
                offset,
                len,
                write,
            } => {
                if len == 0 {
                    return;
                }
                let size = self.sizes.entry(file).or_insert(0);
                let end = offset + len;
                let old_size = *size;
                *size = old_size.max(end);
                for block in offset / bs..=(end - 1) / bs {
                    let id = BlockId { file, block };
                    if write {
                        let bstart = block * bs;
                        let bend = bstart + bs;
                        let old_valid = old_size.saturating_sub(bstart).min(bs);
                        let covered_hi = end.min(bend);
                        let whole = old_valid == 0
                            || (offset <= bstart && covered_hi >= bstart + old_valid);
                        self.access(id, time_ms, Some(whole));
                    } else {
                        self.access(id, time_ms, None);
                    }
                }
            }
            // Op-level events only exist at syscall/open fidelity,
            // which `profilable` excludes; `try_new` therefore never
            // builds an engine that could see one.
            ReplayEvent::Op { .. } => {
                unreachable!("stack profiling is block-fidelity only")
            }
            ReplayEvent::TruncateTo {
                time_ms,
                file,
                new_len,
            } => {
                let size = self.sizes.entry(file).or_insert(0);
                *size = (*size).min(new_len);
                if self.invalidate_on_delete {
                    if new_len == 0 {
                        self.invalidate_file(file, time_ms);
                    } else {
                        self.invalidate_beyond(file, new_len.div_ceil(bs), time_ms);
                    }
                }
            }
            ReplayEvent::Delete { time_ms, file } => {
                self.sizes.remove(&file);
                if self.invalidate_on_delete {
                    self.invalidate_file(file, time_ms);
                }
            }
        }
    }

    /// Finalizes residency accounting and assembles one
    /// [`CacheMetrics`] per requested cell, in input order.
    pub fn finish(mut self) -> Vec<CacheMetrics> {
        let k = self.caps.len();
        // End-of-run residency for still-dirty blocks, without disk
        // writes (`BlockCache::finish` semantics).
        for ps in &mut self.pol {
            for (_, part) in ps.dirty.drain() {
                for i in part.m..k {
                    ps.residency[i].add(self.end_time.saturating_sub(part.t[i]), 1);
                }
            }
        }

        // `split[j]` counted accesses missing capacities `< j`, so the
        // miss count at capacity index `i` is the suffix sum over
        // `j > i`.
        let suffix = |split: &[u64]| -> Vec<u64> {
            let mut out = vec![0u64; k];
            let mut acc = 0u64;
            for i in (0..k).rev() {
                acc += split[i + 1];
                out[i] = acc;
            }
            out
        };
        let read_miss = suffix(&self.read_split);
        let whole_miss = suffix(&self.write_whole_split);
        let partial_miss = suffix(&self.write_partial_split);
        let dirtied: Vec<Vec<u64>> = self
            .pol
            .iter()
            .map(|ps| suffix(&ps.dirtied_split))
            .collect();

        let reg = obs::global();
        reg.counter("cachesim.stack.distances_recorded")
            .add(self.distances);
        reg.gauge("cachesim.stack.tree_nodes_peak")
            .record(self.tree_peak);

        self.cells
            .iter()
            .map(|cell| {
                let i = cell.cap_idx;
                let mut m = CacheMetrics {
                    logical_reads: self.total_reads,
                    logical_writes: self.total_writes,
                    read_hits: self.total_reads - read_miss[i],
                    disk_reads: read_miss[i] + partial_miss[i],
                    ..CacheMetrics::default()
                };
                if self.elision {
                    m.elided_fetches = whole_miss[i];
                } else {
                    m.disk_reads += whole_miss[i];
                }
                match cell.policy_idx {
                    // Write-through: every logical write goes straight
                    // to disk with zero residency, at any capacity.
                    None => {
                        m.disk_writes = self.total_writes;
                        m.blocks_dirtied = self.total_writes;
                        m.dirty_residency_ms.add(0, self.total_writes);
                    }
                    Some(p) => {
                        m.disk_writes = self.pol[p].disk_writes[i];
                        m.blocks_dirtied = dirtied[p][i];
                        m.dirty_blocks_never_written = self.pol[p].never_written[i];
                        m.dirty_residency_ms = self.pol[p].residency[i].clone();
                    }
                }
                m
            })
            .collect()
    }
}

/// Profiles pre-expanded events for `cells` in one pass, or `None`
/// when the cells are not jointly expressible (see
/// [`StackEngine::try_new`]).
pub fn profile_events(events: &[ReplayEvent], cells: &[CacheConfig]) -> Option<Vec<CacheMetrics>> {
    let mut engine = StackEngine::try_new(cells)?;
    for ev in events {
        engine.step(ev);
    }
    Some(engine.finish())
}

/// Expands a record stream once (counting one expansion, like any
/// simulator run) and profiles it for `cells` in one pass — the
/// bounded-memory entry point for all-profilable sweep groups.
pub fn profile_stream<I>(records: I, cells: &[CacheConfig]) -> Option<Vec<CacheMetrics>>
where
    I: IntoIterator,
    I::Item: std::borrow::Borrow<TraceRecord>,
{
    let mut engine = StackEngine::try_new(cells)?;
    let mut expander = EventExpander::new(&cells[0]);
    for rec in records {
        expander.feed(std::borrow::Borrow::borrow(&rec), &mut |ev| {
            engine.step(&ev)
        });
    }
    Some(engine.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{replay_events, Simulator};
    use fstrace::{AccessMode, Trace, TraceBuilder};

    fn cells_for(caps_blocks: &[u64], policies: &[WritePolicy]) -> Vec<CacheConfig> {
        caps_blocks
            .iter()
            .flat_map(|&blocks| {
                policies.iter().map(move |&p| CacheConfig {
                    cache_bytes: blocks * 4096,
                    block_size: 4096,
                    write_policy: p,
                    ..CacheConfig::default()
                })
            })
            .collect()
    }

    fn assert_matches_direct(trace: &Trace, cells: &[CacheConfig]) {
        let events = replay_events(trace, &cells[0]);
        let profiled = profile_events(&events, cells).expect("profilable");
        for (config, got) in cells.iter().zip(&profiled) {
            let want = Simulator::run(trace, config);
            assert_eq!(got, &want, "config {config:?}");
        }
    }

    /// Reads, overwrites, truncates, and deletes — the full event
    /// repertoire including hole creation and consumption.
    fn busy_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let mut files = Vec::new();
        for i in 0..6u64 {
            let f = b.new_file_id();
            files.push(f);
            let t = i * 7_000;
            let o = b.open(t, f, u, AccessMode::ReadOnly, 20_000, false);
            b.close(t + 100, o, 20_000);
        }
        // Rewrite two files, truncate one, delete another, then re-read
        // everything so consumed holes and cold re-misses both occur.
        let o = b.open(50_000, files[0], u, AccessMode::WriteOnly, 20_000, false);
        b.close(50_100, o, 20_000);
        b.truncate(55_000, files[1], 5_000, u);
        b.unlink(60_000, files[2], u);
        let o = b.open(65_000, files[3], u, AccessMode::ReadWrite, 20_000, false);
        b.seek(65_010, o, 4_000, 9_000);
        b.close(65_100, o, 15_000);
        for (i, &f) in files.iter().enumerate() {
            let t = 100_000 + i as u64 * 3_000;
            let o = b.open(t, f, u, AccessMode::ReadOnly, 12_000, false);
            b.close(t + 100, o, 12_000);
        }
        b.finish()
    }

    #[test]
    fn matches_direct_across_sizes_and_policies() {
        let cells = cells_for(&[1, 2, 3, 5, 8, 100], &WritePolicy::TABLE_VI);
        assert_matches_direct(&busy_trace(), &cells);
    }

    #[test]
    fn duplicate_and_single_capacity_cells() {
        // Duplicate (capacity, policy) pairs and a lone capacity: the
        // engine must align outputs with inputs, duplicates included.
        let mut cells = cells_for(&[4], &WritePolicy::TABLE_VI);
        cells.push(cells[0].clone());
        cells.push(cells[3].clone());
        assert_matches_direct(&busy_trace(), &cells);
    }

    #[test]
    fn deletion_holes_do_not_readmit_blocks() {
        // Three reads fill a 2-block cache's history; invalidating the
        // newest must not let the oldest re-enter the 2-block window.
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let mut files = Vec::new();
        for i in 0..3u64 {
            let f = b.new_file_id();
            files.push(f);
            let t = i * 1_000;
            let o = b.open(t, f, u, AccessMode::ReadOnly, 4_096, false);
            b.close(t + 100, o, 4_096);
        }
        b.unlink(5_000, files[2], u);
        // Re-read file 0: depth 3 before the delete, and still a miss
        // at capacity 2 afterwards (the hole keeps its position).
        let o = b.open(6_000, files[0], u, AccessMode::ReadOnly, 4_096, false);
        b.close(6_100, o, 4_096);
        let trace = b.finish();
        let cells = cells_for(&[1, 2, 3, 4], &[WritePolicy::DelayedWrite]);
        assert_matches_direct(&trace, &cells);
        let events = replay_events(&trace, &cells[0]);
        let profiled = profile_events(&events, &cells).expect("profilable");
        // Capacity 2: the re-read must miss (4 disk reads total).
        assert_eq!(profiled[1].disk_reads, 4);
        // Capacity 3: the re-read hits (file 0 was 3rd most recent).
        assert_eq!(profiled[2].disk_reads, 3);
    }

    #[test]
    fn rejects_fifo_and_mismatched_cells() {
        let lru = CacheConfig {
            cache_bytes: 8 * 4096,
            ..CacheConfig::default()
        };
        let fifo = CacheConfig {
            replacement: Replacement::Fifo,
            ..lru.clone()
        };
        assert!(!profilable(&fifo));
        assert!(StackEngine::try_new(&[lru.clone(), fifo]).is_none());
        let other_bs = CacheConfig {
            block_size: 8192,
            ..lru.clone()
        };
        assert!(StackEngine::try_new(&[lru.clone(), other_bs]).is_none());
        let no_inval = CacheConfig {
            invalidate_on_delete: false,
            ..lru.clone()
        };
        assert!(StackEngine::try_new(&[lru.clone(), no_inval]).is_none());
        assert!(StackEngine::try_new(&[]).is_none());
        assert!(StackEngine::try_new(&[lru]).is_some());
    }

    #[test]
    fn elision_and_invalidation_variants_match() {
        let trace = busy_trace();
        for elision in [true, false] {
            for inval in [true, false] {
                let cells: Vec<CacheConfig> = cells_for(&[2, 4, 16], &WritePolicy::TABLE_VI)
                    .into_iter()
                    .map(|c| CacheConfig {
                        whole_block_elision: elision,
                        invalidate_on_delete: inval,
                        ..c
                    })
                    .collect();
                assert_matches_direct(&trace, &cells);
            }
        }
    }

    #[test]
    fn compaction_survives_long_reference_streams() {
        // Far more distinct blocks than the largest capacity: forces
        // pruning and repeated sequence-space compaction.
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        for round in 0..4u64 {
            for i in 0..40u64 {
                let f = fstrace::FileId(i % 25);
                let t = round * 100_000 + i * 1_000;
                let o = b.open(t, f, u, AccessMode::ReadOnly, 8_192, false);
                b.close(t + 100, o, 8_192);
            }
        }
        let cells = cells_for(&[2, 7, 16], &WritePolicy::TABLE_VI);
        assert_matches_direct(&b.finish(), &cells);
    }

    #[test]
    fn enabled_toggle_round_trips() {
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
