//! Miss-ratio time series: how the cache warms up over a trace.
//!
//! The paper reports steady-state ratios over multi-day traces; on
//! shorter traces the warm-up transient matters. This module replays a
//! trace while sampling the *interval* miss ratio per fixed window, so
//! experiments can check they are quoting warmed-up numbers.

use crate::config::CacheConfig;
use crate::replay::{replay_events, ReplayEvent, Replayer};
use fstrace::Trace;

/// One sample of the interval miss ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Window start time (ms).
    pub start_ms: u64,
    /// Logical block accesses in the window.
    pub accesses: u64,
    /// Disk I/Os in the window.
    pub disk_ios: u64,
}

impl SeriesPoint {
    /// Miss ratio within this window alone.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.disk_ios as f64 / self.accesses as f64
        }
    }
}

/// The warm-up series for one configuration.
#[derive(Debug, Clone, Default)]
pub struct MissSeries {
    /// Window length (ms).
    pub window_ms: u64,
    /// Per-window samples, in time order.
    pub points: Vec<SeriesPoint>,
}

impl MissSeries {
    /// Replays `trace` under `config`, sampling every `window_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `window_ms` is zero.
    pub fn measure(trace: &Trace, config: &CacheConfig, window_ms: u64) -> Self {
        assert!(window_ms > 0, "window must be positive");
        let events = replay_events(trace, config);
        let mut replayer = Replayer::new(config);
        let mut points: Vec<SeriesPoint> = Vec::new();
        let mut window_start = 0u64;
        let mut last = (0u64, 0u64); // (accesses, ios) at window start.
        for ev in &events {
            let t = match *ev {
                ReplayEvent::SizeHint { time_ms, .. }
                | ReplayEvent::Transfer { time_ms, .. }
                | ReplayEvent::Op { time_ms, .. }
                | ReplayEvent::TruncateTo { time_ms, .. }
                | ReplayEvent::Delete { time_ms, .. } => time_ms,
            };
            while t >= window_start + window_ms {
                let m = &replayer.cache().metrics;
                let now_acc = m.logical_reads + m.logical_writes;
                let now_ios = m.disk_reads + m.disk_writes;
                points.push(SeriesPoint {
                    start_ms: window_start,
                    accesses: now_acc - last.0,
                    disk_ios: now_ios - last.1,
                });
                last = (now_acc, now_ios);
                window_start += window_ms;
            }
            replayer.step(ev);
        }
        let m = &replayer.cache().metrics;
        let now_acc = m.logical_reads + m.logical_writes;
        let now_ios = m.disk_reads + m.disk_writes;
        points.push(SeriesPoint {
            start_ms: window_start,
            accesses: now_acc - last.0,
            disk_ios: now_ios - last.1,
        });
        MissSeries { window_ms, points }
    }

    /// Miss ratio over the last `n` windows — the warmed-up estimate.
    pub fn steady_state(&self, n: usize) -> f64 {
        let tail = &self.points[self.points.len().saturating_sub(n)..];
        let acc: u64 = tail.iter().map(|p| p.accesses).sum();
        let ios: u64 = tail.iter().map(|p| p.disk_ios).sum();
        if acc == 0 {
            0.0
        } else {
            ios as f64 / acc as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WritePolicy;
    use crate::replay::Simulator;
    use fstrace::{AccessMode, TraceBuilder};

    /// The same 16 blocks reread every second for a minute: the first
    /// window pays the cold misses, later windows approach zero.
    #[test]
    fn warmup_transient_visible() {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let f = b.new_file_id();
        for i in 0..60u64 {
            let o = b.open(i * 1_000, f, u, AccessMode::ReadOnly, 64 * 1024, false);
            b.close(i * 1_000 + 100, o, 64 * 1024);
        }
        let cfg = CacheConfig {
            cache_bytes: 1 << 20,
            block_size: 4096,
            write_policy: WritePolicy::DelayedWrite,
            ..CacheConfig::default()
        };
        let series = MissSeries::measure(&b.finish(), &cfg, 10_000);
        assert!(series.points.len() >= 6);
        let first = series.points[0].miss_ratio();
        let last = series.steady_state(3);
        assert!(first > 0.0, "first window must show cold misses");
        assert_eq!(last, 0.0, "steady state must be fully warm");
        // Totals across windows equal a plain simulation.
        let m = Simulator::run(
            &{
                let mut b = TraceBuilder::new();
                let u = b.new_user_id();
                let f = b.new_file_id();
                for i in 0..60u64 {
                    let o = b.open(i * 1_000, f, u, AccessMode::ReadOnly, 64 * 1024, false);
                    b.close(i * 1_000 + 100, o, 64 * 1024);
                }
                b.finish()
            },
            &cfg,
        );
        let acc: u64 = series.points.iter().map(|p| p.accesses).sum();
        let ios: u64 = series.points.iter().map(|p| p.disk_ios).sum();
        assert_eq!(acc, m.logical_accesses());
        assert_eq!(ios, m.disk_ios());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = MissSeries::measure(&fstrace::Trace::default(), &CacheConfig::default(), 0);
    }
}
