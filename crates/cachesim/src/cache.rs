//! The block cache engine: a hash map plus an intrusive recency list.
//!
//! Entries carry no data — the simulator only needs presence, dirtiness,
//! and recency. The list is a slab-backed doubly-linked list giving O(1)
//! insert, touch, and evict, which matters when replaying multi-million-
//! event traces across dozens of parameter combinations.

use fstrace::{FastMap, FileId};

use crate::config::{CacheConfig, Replacement, WritePolicy};
use crate::metrics::CacheMetrics;

/// Identifies one cache block: a file and a block index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId {
    /// The file.
    pub file: FileId,
    /// Block index within the file (offset / block size).
    pub block: u64,
}

const NIL: u32 = u32::MAX;

struct Slot {
    id: BlockId,
    dirty: bool,
    dirtied_at: u64,
    prev: u32,
    next: u32,
    /// Neighbours in the per-file chain (see `per_file`).
    fprev: u32,
    fnext: u32,
}

/// A fixed-capacity cache of disk blocks with LRU or FIFO replacement.
pub struct BlockCache {
    map: FastMap<BlockId, u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32, // Most recently used.
    tail: u32, // Least recently used.
    capacity: u64,
    replacement: Replacement,
    policy: WritePolicy,
    elision: bool,
    last_flush_ms: u64,
    /// Number of dirty blocks currently cached, maintained incrementally
    /// so `dirty_count` is O(1) instead of an O(n) map scan.
    dirty: usize,
    /// Head slot of each file's chain of cached blocks, threaded
    /// through the slab via `fprev`/`fnext` — O(file blocks) delete
    /// and truncate with no per-file allocation.
    per_file: FastMap<FileId, u32>,
    /// Metrics accumulated across the run.
    pub metrics: CacheMetrics,
}

impl BlockCache {
    /// Creates a cache from a configuration.
    pub fn new(config: &CacheConfig) -> Self {
        BlockCache {
            map: FastMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: config.capacity_blocks(),
            replacement: config.replacement,
            policy: config.write_policy,
            elision: config.whole_block_elision,
            last_flush_ms: 0,
            dirty: 0,
            per_file: FastMap::default(),
            metrics: CacheMetrics::default(),
        }
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of dirty blocks currently cached.
    pub fn dirty_count(&self) -> usize {
        debug_assert_eq!(
            self.dirty,
            self.map
                .values()
                .filter(|&&i| self.slots[i as usize].dirty)
                .count(),
            "incremental dirty counter diverged from the map scan"
        );
        self.dirty
    }

    // --------------------------------------------------------------
    // Intrusive list plumbing.

    fn detach(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[i as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = i;
        } else {
            self.tail = i;
        }
        self.head = i;
    }

    fn touch(&mut self, i: u32) {
        // FIFO never reorders after insertion.
        if self.replacement == Replacement::Lru && self.head != i {
            self.detach(i);
            self.push_front(i);
        }
    }

    /// Links slot `i` at the head of its file's chain.
    fn file_link(&mut self, i: u32) {
        let file = self.slots[i as usize].id.file;
        let old_head = self.per_file.insert(file, i).unwrap_or(NIL);
        {
            let s = &mut self.slots[i as usize];
            s.fprev = NIL;
            s.fnext = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].fprev = i;
        }
    }

    /// Unlinks slot `i` from its file's chain, dropping the map entry
    /// when the chain empties.
    fn file_unlink(&mut self, i: u32) {
        let (file, fprev, fnext) = {
            let s = &self.slots[i as usize];
            (s.id.file, s.fprev, s.fnext)
        };
        if fprev != NIL {
            self.slots[fprev as usize].fnext = fnext;
        } else if fnext != NIL {
            self.per_file.insert(file, fnext);
        } else {
            self.per_file.remove(&file);
        }
        if fnext != NIL {
            self.slots[fnext as usize].fprev = fprev;
        }
    }

    fn remove_slot(&mut self, i: u32) -> Slot {
        self.detach(i);
        self.file_unlink(i);
        let id = self.slots[i as usize].id;
        self.map.remove(&id);
        if self.slots[i as usize].dirty {
            self.dirty -= 1;
        }
        self.free.push(i);
        // Take the slot's fields by replacing with a tombstone.
        std::mem::replace(
            &mut self.slots[i as usize],
            Slot {
                id,
                dirty: false,
                dirtied_at: 0,
                prev: NIL,
                next: NIL,
                fprev: NIL,
                fnext: NIL,
            },
        )
    }

    fn insert(&mut self, id: BlockId, dirty: bool, now_ms: u64) {
        debug_assert!(!self.map.contains_key(&id));
        let slot = Slot {
            id,
            dirty,
            dirtied_at: if dirty { now_ms } else { 0 },
            prev: NIL,
            next: NIL,
            fprev: NIL,
            fnext: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as u32
            }
        };
        self.map.insert(id, i);
        self.file_link(i);
        if dirty {
            self.dirty += 1;
        }
        self.push_front(i);
        while self.map.len() as u64 > self.capacity {
            self.evict(now_ms);
        }
    }

    /// Ejects the replacement victim, writing it if dirty.
    fn evict(&mut self, now_ms: u64) {
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "evicting from an empty cache");
        let slot = self.remove_slot(victim);
        if slot.dirty {
            self.metrics.disk_writes += 1;
            self.metrics
                .dirty_residency_ms
                .add(now_ms.saturating_sub(slot.dirtied_at), 1);
        }
    }

    // --------------------------------------------------------------
    // Logical accesses.

    /// A logical read of one block.
    pub fn read(&mut self, id: BlockId, now_ms: u64) {
        self.run_flush_if_due(now_ms);
        self.metrics.logical_reads += 1;
        match self.map.get(&id).copied() {
            Some(i) => {
                self.metrics.read_hits += 1;
                self.touch(i);
            }
            None => {
                self.metrics.disk_reads += 1;
                self.insert(id, false, now_ms);
            }
        }
    }

    /// A logical write of one block; `whole` means the entire block is
    /// being overwritten, so a miss need not fetch from disk first.
    pub fn write(&mut self, id: BlockId, whole: bool, now_ms: u64) {
        self.run_flush_if_due(now_ms);
        self.metrics.logical_writes += 1;
        let i = match self.map.get(&id).copied() {
            Some(i) => {
                self.touch(i);
                i
            }
            None => {
                if whole && self.elision {
                    self.metrics.elided_fetches += 1;
                } else {
                    self.metrics.disk_reads += 1; // Read-modify-write.
                }
                self.insert(id, false, now_ms);
                self.map[&id]
            }
        };
        match self.policy {
            WritePolicy::WriteThrough => {
                self.metrics.disk_writes += 1;
                self.metrics.blocks_dirtied += 1;
                self.metrics.dirty_residency_ms.add(0, 1);
                let s = &mut self.slots[i as usize];
                if s.dirty {
                    s.dirty = false;
                    self.dirty -= 1;
                }
            }
            _ => {
                let s = &mut self.slots[i as usize];
                if !s.dirty {
                    s.dirty = true;
                    s.dirtied_at = now_ms;
                    self.dirty += 1;
                    self.metrics.blocks_dirtied += 1;
                }
            }
        }
    }

    /// Drops every cached block of `file` (the file was deleted or its
    /// data overwritten wholesale). Dirty blocks vanish without a disk
    /// write — the delayed-write win the paper quantifies.
    pub fn invalidate_file(&mut self, file: FileId, now_ms: u64) {
        self.invalidate_beyond(file, 0, now_ms);
    }

    /// Drops cached blocks of `file` at indices `>= first_block`
    /// (truncation). Walks the file's intrusive chain — no allocation,
    /// no hashing beyond the single head lookup.
    pub fn invalidate_beyond(&mut self, file: FileId, first_block: u64, now_ms: u64) {
        let mut i = self.per_file.get(&file).copied().unwrap_or(NIL);
        while i != NIL {
            // Capture the successor before `remove_slot` tombstones it.
            let (block, fnext) = {
                let s = &self.slots[i as usize];
                (s.id.block, s.fnext)
            };
            if block >= first_block {
                let slot = self.remove_slot(i);
                if slot.dirty {
                    self.metrics.dirty_blocks_never_written += 1;
                    self.metrics
                        .dirty_residency_ms
                        .add(now_ms.saturating_sub(slot.dirtied_at), 1);
                }
            }
            i = fnext;
        }
    }

    fn run_flush_if_due(&mut self, now_ms: u64) {
        if let WritePolicy::FlushBack { interval_ms } = self.policy {
            // Catch up on all scan points since the last flush, so long
            // idle gaps don't skip scans.
            if now_ms.saturating_sub(self.last_flush_ms) >= interval_ms {
                self.flush(now_ms);
                self.last_flush_ms = now_ms - (now_ms - self.last_flush_ms) % interval_ms;
            }
        }
    }

    /// Writes every dirty block (a `sync` scan).
    pub fn flush(&mut self, now_ms: u64) {
        let mut i = self.head;
        while i != NIL {
            let s = &mut self.slots[i as usize];
            if s.dirty {
                s.dirty = false;
                self.dirty -= 1;
                self.metrics.disk_writes += 1;
                let dur = now_ms.saturating_sub(s.dirtied_at);
                self.metrics.dirty_residency_ms.add(dur, 1);
            }
            i = s.next;
        }
    }

    /// Records residency for blocks still dirty at the end of a run
    /// without charging disk writes (steady-state accounting).
    pub fn finish(&mut self, now_ms: u64) {
        let mut i = self.head;
        while i != NIL {
            let s = &self.slots[i as usize];
            if s.dirty {
                let dur = now_ms.saturating_sub(s.dirtied_at);
                self.metrics.dirty_residency_ms.add(dur, 1);
            }
            i = s.next;
        }
    }

    /// The cached block ids in most-recently-used order (for tests).
    pub fn contents_mru(&self) -> Vec<BlockId> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            out.push(self.slots[i as usize].id);
            i = self.slots[i as usize].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(blocks: u64) -> CacheConfig {
        CacheConfig {
            cache_bytes: blocks * 4096,
            block_size: 4096,
            write_policy: WritePolicy::DelayedWrite,
            ..CacheConfig::default()
        }
    }

    fn bid(f: u64, b: u64) -> BlockId {
        BlockId {
            file: FileId(f),
            block: b,
        }
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = BlockCache::new(&cfg(4));
        c.read(bid(1, 0), 0);
        c.read(bid(1, 0), 10);
        assert_eq!(c.metrics.disk_reads, 1);
        assert_eq!(c.metrics.read_hits, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = BlockCache::new(&cfg(2));
        c.read(bid(1, 0), 0);
        c.read(bid(1, 1), 1);
        c.read(bid(1, 0), 2); // 0 becomes MRU.
        c.read(bid(1, 2), 3); // Evicts block 1.
        let ids: Vec<u64> = c.contents_mru().iter().map(|b| b.block).collect();
        assert_eq!(ids, vec![2, 0]);
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut config = cfg(2);
        config.replacement = Replacement::Fifo;
        let mut c = BlockCache::new(&config);
        c.read(bid(1, 0), 0);
        c.read(bid(1, 1), 1);
        c.read(bid(1, 0), 2); // Touch does not reorder under FIFO.
        c.read(bid(1, 2), 3); // Evicts block 0 (oldest inserted).
        let ids: Vec<u64> = c.contents_mru().iter().map(|b| b.block).collect();
        assert_eq!(ids, vec![2, 1]);
    }

    #[test]
    fn whole_write_elides_fetch_partial_does_not() {
        let mut c = BlockCache::new(&cfg(4));
        c.write(bid(1, 0), true, 0);
        assert_eq!(c.metrics.disk_reads, 0);
        assert_eq!(c.metrics.elided_fetches, 1);
        c.write(bid(1, 1), false, 1);
        assert_eq!(c.metrics.disk_reads, 1);
    }

    #[test]
    fn elision_can_be_disabled() {
        let mut config = cfg(4);
        config.whole_block_elision = false;
        let mut c = BlockCache::new(&config);
        c.write(bid(1, 0), true, 0);
        assert_eq!(c.metrics.disk_reads, 1);
        assert_eq!(c.metrics.elided_fetches, 0);
    }

    #[test]
    fn write_through_counts_every_write() {
        let mut config = cfg(4);
        config.write_policy = WritePolicy::WriteThrough;
        let mut c = BlockCache::new(&config);
        c.write(bid(1, 0), true, 0);
        c.write(bid(1, 0), true, 1);
        assert_eq!(c.metrics.disk_writes, 2);
        assert_eq!(c.dirty_count(), 0);
    }

    #[test]
    fn delayed_write_writes_on_eviction_only() {
        let mut c = BlockCache::new(&cfg(1));
        c.write(bid(1, 0), true, 0);
        assert_eq!(c.metrics.disk_writes, 0);
        c.read(bid(1, 1), 60_000); // Evicts the dirty block.
        assert_eq!(c.metrics.disk_writes, 1);
        // Residency of the evicted block was 60 s.
        assert_eq!(c.metrics.dirty_residency_ms.percentile(1.0), Some(60_000));
    }

    #[test]
    fn flush_back_writes_at_interval() {
        let mut config = cfg(8);
        config.write_policy = WritePolicy::FlushBack {
            interval_ms: 30_000,
        };
        let mut c = BlockCache::new(&config);
        c.write(bid(1, 0), true, 1_000);
        c.read(bid(1, 0), 2_000); // Within interval: no flush.
        assert_eq!(c.metrics.disk_writes, 0);
        c.read(bid(1, 0), 31_000); // Past interval: flush fires.
        assert_eq!(c.metrics.disk_writes, 1);
        // A re-dirty later flushes again.
        c.write(bid(1, 0), true, 40_000);
        c.read(bid(1, 0), 61_000);
        assert_eq!(c.metrics.disk_writes, 2);
    }

    #[test]
    fn invalidate_drops_dirty_without_write() {
        let mut c = BlockCache::new(&cfg(8));
        c.write(bid(7, 0), true, 0);
        c.write(bid(7, 1), true, 0);
        c.write(bid(8, 0), true, 0);
        c.invalidate_file(FileId(7), 1_000);
        assert_eq!(c.len(), 1);
        assert_eq!(c.metrics.disk_writes, 0);
        assert_eq!(c.metrics.dirty_blocks_never_written, 2);
    }

    #[test]
    fn invalidate_beyond_keeps_prefix() {
        let mut c = BlockCache::new(&cfg(8));
        for b in 0..4 {
            c.write(bid(7, b), true, 0);
        }
        c.invalidate_beyond(FileId(7), 2, 100);
        let mut blocks: Vec<u64> = c.contents_mru().iter().map(|b| b.block).collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![0, 1]);
        assert_eq!(c.metrics.dirty_blocks_never_written, 2);
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = BlockCache::new(&cfg(3));
        for b in 0..100 {
            c.read(bid(1, b), b);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.metrics.disk_reads, 100);
    }

    #[test]
    fn dirty_count_tracks_all_transitions() {
        let mut c = BlockCache::new(&cfg(2));
        assert_eq!(c.dirty_count(), 0);
        c.write(bid(1, 0), true, 0);
        c.write(bid(1, 1), true, 0);
        assert_eq!(c.dirty_count(), 2);
        c.write(bid(1, 0), false, 10); // Re-dirtying is not a transition.
        assert_eq!(c.dirty_count(), 2);
        c.read(bid(1, 2), 20); // Evicts a dirty block.
        assert_eq!(c.dirty_count(), 1);
        c.flush(30);
        assert_eq!(c.dirty_count(), 0);
        c.write(bid(2, 0), true, 40);
        c.invalidate_file(FileId(2), 50);
        assert_eq!(c.dirty_count(), 0);
        // Write-through never leaves blocks dirty.
        let mut config = cfg(2);
        config.write_policy = WritePolicy::WriteThrough;
        let mut wt = BlockCache::new(&config);
        wt.write(bid(1, 0), true, 0);
        assert_eq!(wt.dirty_count(), 0);
    }

    #[test]
    fn per_file_chains_survive_interleaved_churn() {
        // Evictions unlink chain nodes mid-list; slot reuse must not
        // leave stale fprev/fnext links behind.
        let mut c = BlockCache::new(&cfg(4));
        for b in 0..10 {
            c.read(bid(1, b), b);
            c.read(bid(2, b), b);
        }
        c.invalidate_file(FileId(1), 100);
        assert_eq!(c.len(), 2);
        assert!(c.contents_mru().iter().all(|b| b.file == FileId(2)));
        c.invalidate_beyond(FileId(2), 9, 100);
        assert_eq!(c.len(), 1);
        c.invalidate_beyond(FileId(2), 100, 100); // No-op beyond the end.
        assert_eq!(c.len(), 1);
        c.invalidate_file(FileId(2), 100);
        assert!(c.is_empty());
        c.invalidate_file(FileId(3), 100); // Unknown file is a no-op.
    }

    #[test]
    fn finish_records_residency_without_writes() {
        let mut c = BlockCache::new(&cfg(8));
        c.write(bid(1, 0), true, 0);
        c.finish(120_000);
        assert_eq!(c.metrics.disk_writes, 0);
        assert_eq!(c.metrics.dirty_residency_ms.percentile(1.0), Some(120_000));
    }
}
