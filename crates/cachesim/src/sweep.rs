//! Parallel configuration sweeps sharing one trace expansion.
//!
//! Every experiment in Section 6 evaluates a *grid* of configurations
//! against the same trace: cache sizes × write policies (Table VI),
//! block sizes × cache sizes (Table VII), cache sizes with and without
//! paging (Figure 7). Expanding the trace into [`ReplayEvent`]s
//! dominates the setup cost of each run, yet the expansion depends on
//! only three of the configuration fields — [`CacheConfig::fidelity`],
//! [`CacheConfig::rw_handling`], and [`CacheConfig::simulate_paging`]
//! (see [`ExpansionKey`]). All other fields (cache size, block size,
//! write policy, replacement, elision, invalidation) only change how
//! the *same* event stream is consumed.
//!
//! [`run`] therefore groups the requested configurations by expansion
//! key, materializes each group's event vector **once**, and fans the
//! per-configuration simulations out over a scoped thread pool that
//! borrows the events read-only. Results come back indexed exactly like
//! the input slice, so output is deterministic regardless of the thread
//! count — and because [`Simulator::run_events`] is itself
//! deterministic, every metric is bit-identical to what a sequential
//! [`Simulator::run`] of that configuration would produce.
//!
//! [`run_source`] generalizes this to any replayable record stream —
//! e.g. an incremental trace-file reader or the k-way server merge —
//! without ever materializing the records themselves. Buffering is
//! required only when a group has **more than one** cell (the expanded
//! events are consumed once per cell); a single-cell group streams
//! records through the [`crate::EventExpander`] directly into its
//! simulator, holding O(open files) state.
//!
//! Within each expansion group, block-fidelity LRU cells sharing block
//! size, elision, and invalidation settings differ only in capacity and
//! write policy — exactly what the [`crate::stack`] profiler derives
//! from **one** replay via stack distances. The stack engine models
//! block-fidelity expansion only, so syscall/open-fidelity cells are
//! explicit fallbacks ([`stack::profilable`]). The engine partitions
//! each group into such profile subgroups (two or more cells each) plus
//! the remaining *direct* cells (other fidelities, FIFO replacement,
//! partnerless parameter combos),
//! turning an S-size × P-policy grid from S×P replays into one profiled
//! pass plus the fallback cells. A group consisting of a single profile
//! subgroup streams records straight into the profiler; mixed groups
//! materialize the event vector once and run subgroups and direct cells
//! side by side on the thread pool.
//!
//! The engine is dependency-free: plain [`std::thread::scope`] workers
//! pulling indices from an atomic counter, defaulting to
//! [`std::thread::available_parallelism`] threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use fstrace::{Trace, TraceRecord};

use crate::config::{CacheConfig, Fidelity, RwHandling};
use crate::metrics::CacheMetrics;
use crate::replay::{EventExpander, ReplayEvent, Simulator};
use crate::stack;

/// The subset of [`CacheConfig`] that [`replay_events`] depends on.
///
/// Configurations with equal keys can share one expanded event vector;
/// any field *not* in this key is guaranteed not to affect expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpansionKey {
    /// Replay fidelity (changes the event granularity entirely).
    pub fidelity: Fidelity,
    /// How read-write runs are billed (changes which `Transfer`/`Op`
    /// events exist and their direction).
    pub rw_handling: RwHandling,
    /// Whether `execve` records expand into program-image reads.
    pub simulate_paging: bool,
}

impl ExpansionKey {
    /// Extracts the expansion-relevant fields of a configuration.
    pub fn of(config: &CacheConfig) -> Self {
        ExpansionKey {
            fidelity: config.fidelity,
            rw_handling: config.rw_handling,
            simulate_paging: config.simulate_paging,
        }
    }
}

/// Process-wide default worker count; 0 means "ask the OS".
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count used by [`run`].
///
/// `0` restores the automatic default
/// ([`std::thread::available_parallelism`]). The `repro --jobs N` flag
/// calls this once at startup so every experiment sweep picks it up.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// The worker count [`run`] will use: the [`set_default_jobs`] override
/// if set, otherwise the machine's available parallelism.
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::Relaxed) {
        0 => thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Simulates every configuration against the trace using
/// [`default_jobs`] worker threads. See [`run_with_jobs`].
pub fn run(trace: &Trace, configs: &[CacheConfig]) -> Vec<(CacheConfig, CacheMetrics)> {
    run_with_jobs(trace, configs, default_jobs())
}

/// Simulates every configuration against the trace on `jobs` worker
/// threads, expanding the trace once per [`ExpansionKey`] group.
///
/// The result vector is ordered exactly like `configs`, and each entry
/// is bit-identical to `Simulator::run(trace, &config)` for that
/// configuration, for any `jobs >= 1`.
pub fn run_with_jobs(
    trace: &Trace,
    configs: &[CacheConfig],
    jobs: usize,
) -> Vec<(CacheConfig, CacheMetrics)> {
    run_source(|| trace.records().iter(), configs, jobs)
}

/// Simulates every configuration against a replayable record stream on
/// `jobs` worker threads, expanding the stream once per
/// [`ExpansionKey`] group.
///
/// `source` may be called several times and must yield the same
/// records, in time order, each call: once per *streaming* group (a
/// single cell, or a group profiled whole), plus at most **one** call
/// shared by every event-materializing group — their expanders all
/// consume the same pass, so a mixed sweep never re-decodes the stream
/// per buffered group. Each buffered group's event vector is
/// materialized once and borrowed read-only by the thread pool.
///
/// The result vector is ordered exactly like `configs`, and each entry
/// is bit-identical to `Simulator::run` of that configuration over the
/// same records, for any `jobs >= 1`.
pub fn run_source<I, F>(
    source: F,
    configs: &[CacheConfig],
    jobs: usize,
) -> Vec<(CacheConfig, CacheMetrics)>
where
    I: IntoIterator,
    I::Item: std::borrow::Borrow<TraceRecord>,
    F: Fn() -> I,
{
    let reg = obs::global();
    let _sweep_timing = reg.span("cachesim.sweep.run").start();
    // Per-cell timing handles, shared by all workers (lock-free span,
    // coarse-grained histogram — one record per simulated cell).
    let cell_span = reg.span("cachesim.sweep.cell");
    let cell_us = reg.histogram("cachesim.sweep.cell_us");

    // Group config indices by expansion key, preserving first-seen
    // order. At most 18 distinct keys exist (3 fidelities × 3
    // rw-handlings × paging), so a linear scan beats a hash map.
    let mut groups: Vec<(ExpansionKey, Vec<usize>)> = Vec::new();
    for (i, c) in configs.iter().enumerate() {
        let key = ExpansionKey::of(c);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((key, vec![i])),
        }
    }

    let mut slots: Vec<Option<CacheMetrics>> = vec![None; configs.len()];
    let mut profiled_cells = 0u64;
    let mut fallback_cells = 0u64;
    // Groups that must materialize their event vector. They are
    // collected first and then fed from ONE shared pass over the
    // source: each record fans out to every buffered group's expander,
    // so a sweep with several event-materializing groups decodes (or
    // merges, or pipelines) the record stream once, not once per group.
    struct Buffered {
        /// Config indices of the group (first entry keys the expander).
        first: usize,
        direct: Vec<usize>,
        subgroups: Vec<Vec<usize>>,
        events: Vec<ReplayEvent>,
    }
    let mut buffered: Vec<Buffered> = Vec::new();
    for (_, idxs) in &groups {
        if let [i] = idxs.as_slice() {
            // A lone cell consumes the expansion exactly once: stream
            // records through the expander with no event buffering. A
            // profile of one cell would save nothing, so this counts
            // as a fallback when profiling is on.
            slots[*i] = Some(timed_cell(&cell_span, &cell_us, || {
                Simulator::run_stream(source(), &configs[*i])
            }));
            if stack::enabled() {
                fallback_cells += 1;
            }
            continue;
        }

        // Partition the group into stack-profile subgroups (cells that
        // differ only in capacity and write policy — two or more each)
        // and the direct remainder.
        let mut direct: Vec<usize> = Vec::new();
        let mut subgroups: Vec<((u64, bool, bool), Vec<usize>)> = Vec::new();
        if stack::enabled() {
            for &i in idxs {
                let c = &configs[i];
                if stack::profilable(c) {
                    let key = (c.block_size, c.whole_block_elision, c.invalidate_on_delete);
                    match subgroups.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, cells)) => cells.push(i),
                        None => subgroups.push((key, vec![i])),
                    }
                } else {
                    direct.push(i);
                }
            }
            subgroups.retain(|(_, cells)| {
                if cells.len() >= 2 {
                    true
                } else {
                    direct.extend_from_slice(cells);
                    false
                }
            });
            direct.sort_unstable();
        } else {
            direct.clone_from(idxs);
        }
        profiled_cells += subgroups.iter().map(|(_, c)| c.len() as u64).sum::<u64>();
        fallback_cells += direct.len() as u64;

        if direct.is_empty() && subgroups.len() == 1 {
            // The whole group is one profile: stream records straight
            // through the expander into the profiler — one pass, no
            // event buffering, every capacity and policy at once.
            let cell_idxs = &subgroups[0].1;
            let cells: Vec<CacheConfig> = cell_idxs.iter().map(|&i| configs[i].clone()).collect();
            let metrics = timed_cells(&cell_span, &cell_us, cells.len(), || {
                stack::profile_stream(source(), &cells)
                    .expect("partitioned subgroup cells are jointly profilable")
            });
            for (&i, m) in cell_idxs.iter().zip(metrics) {
                slots[i] = Some(m);
            }
            continue;
        }

        buffered.push(Buffered {
            first: idxs[0],
            direct,
            subgroups: subgroups.into_iter().map(|(_, cells)| cells).collect(),
            events: Vec::new(),
        });
    }

    if !buffered.is_empty() {
        // One expansion pass shared by every buffered group: each
        // record feeds each group's expander, each expander fills its
        // own event vector for the workers to borrow read-only.
        let mut expanders: Vec<EventExpander> = buffered
            .iter()
            .map(|b| EventExpander::new(&configs[b.first]))
            .collect();
        for rec in source() {
            let rec = std::borrow::Borrow::borrow(&rec);
            for (b, ex) in buffered.iter_mut().zip(&mut expanders) {
                ex.feed(rec, &mut |ev| b.events.push(ev));
            }
        }

        // Profile subgroups first: they are the heaviest tasks, so
        // they should start before the pool fills up with quick cells.
        enum Task<'a> {
            Profile(&'a [ReplayEvent], &'a [usize]),
            Direct(&'a [ReplayEvent], usize),
        }
        let tasks: Vec<Task> = buffered
            .iter()
            .flat_map(|b| {
                b.subgroups
                    .iter()
                    .map(|cells| Task::Profile(&b.events, cells))
            })
            .chain(
                buffered
                    .iter()
                    .flat_map(|b| b.direct.iter().map(|&i| Task::Direct(&b.events, i))),
            )
            .collect();
        let run_task = |task: &Task| -> Vec<(usize, CacheMetrics)> {
            match *task {
                Task::Direct(events, i) => vec![(
                    i,
                    timed_cell(&cell_span, &cell_us, || {
                        Simulator::run_events(events, &configs[i])
                    }),
                )],
                Task::Profile(events, cell_idxs) => {
                    let cells: Vec<CacheConfig> =
                        cell_idxs.iter().map(|&i| configs[i].clone()).collect();
                    let metrics = timed_cells(&cell_span, &cell_us, cells.len(), || {
                        stack::profile_events(events, &cells)
                            .expect("partitioned subgroup cells are jointly profilable")
                    });
                    cell_idxs.iter().copied().zip(metrics).collect()
                }
            }
        };
        let workers = jobs.max(1).min(tasks.len());
        if workers <= 1 {
            for task in &tasks {
                for (i, m) in run_task(task) {
                    slots[i] = Some(m);
                }
            }
        } else {
            let next = AtomicUsize::new(0);
            let done = thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(|| {
                            let mut out: Vec<(usize, CacheMetrics)> = Vec::new();
                            loop {
                                let n = next.fetch_add(1, Ordering::Relaxed);
                                let Some(task) = tasks.get(n) else { break };
                                out.extend(run_task(task));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("sweep worker panicked"))
                    .collect::<Vec<_>>()
            });
            for (i, m) in done {
                slots[i] = Some(m);
            }
        }
    }
    if stack::enabled() {
        reg.counter("cachesim.stack.profiled_cells")
            .add(profiled_cells);
        reg.counter("cachesim.stack.fallback_cells")
            .add(fallback_cells);
    }

    let out: Vec<(CacheConfig, CacheMetrics)> = configs
        .iter()
        .cloned()
        .zip(slots.into_iter().map(|m| m.expect("every slot filled")))
        .collect();
    publish_sweep_totals(reg, groups.len(), &out);
    out
}

/// Simulates every configuration against a replayable **block** stream
/// — the columnar twin of [`run_source`] for batched-decode producers
/// like `tracestore::Archive::blocks`.
///
/// `source` must yield the same blocks, in time order, each call (see
/// [`run_source`] for how many calls a sweep makes); records are
/// materialized from the columns one view at a time via
/// [`fstrace::FillRecords`], which drains each block through one reused
/// set of column buffers — so block producers that implement
/// [`fstrace::FillBlock`] natively (e.g.
/// `tracestore::PipelinedBlocks`) stream through the sweep with no
/// per-chunk allocation, and plain block iterators work via the blanket
/// impl. Grouping, profiling, and parallelism behavior is exactly
/// [`run_source`]'s.
pub fn run_block_source<S, F>(
    source: F,
    configs: &[CacheConfig],
    jobs: usize,
) -> Vec<(CacheConfig, CacheMetrics)>
where
    S: fstrace::FillBlock,
    F: Fn() -> S,
{
    run_source(|| fstrace::FillRecords::new(source()), configs, jobs)
}

/// Runs one profiled subgroup under wall-clock timing, attributing an
/// equal share of the pass to each of its `cells` cells so per-cell
/// span counts and histograms stay comparable with direct cells.
fn timed_cells(
    span: &obs::Span,
    hist: &obs::Histogram,
    cells: usize,
    run: impl FnOnce() -> Vec<CacheMetrics>,
) -> Vec<CacheMetrics> {
    let started = std::time::Instant::now();
    let metrics = run();
    let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let share = ns / cells.max(1) as u64;
    for _ in 0..cells {
        span.record_ns(share);
        hist.record(share / 1_000);
    }
    metrics
}

/// Runs one sweep cell under wall-clock timing.
fn timed_cell(
    span: &obs::Span,
    hist: &obs::Histogram,
    cell: impl FnOnce() -> CacheMetrics,
) -> CacheMetrics {
    let started = std::time::Instant::now();
    let metrics = cell();
    let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    span.record_ns(ns);
    hist.record(ns / 1_000);
    metrics
}

/// Batch-adds one sweep's aggregate traffic into the global registry.
///
/// `read_misses` is derived as `logical_reads - read_hits`, which the
/// metrics-invariant suite cross-checks against `disk_reads` plus
/// elided fetches.
fn publish_sweep_totals(
    reg: &obs::Registry,
    groups: usize,
    results: &[(CacheConfig, CacheMetrics)],
) {
    reg.counter("cachesim.sweep.runs").inc();
    reg.counter("cachesim.sweep.groups").add(groups as u64);
    reg.counter("cachesim.sweep.cells")
        .add(results.len() as u64);
    let mut logical_reads = 0u64;
    let mut logical_writes = 0u64;
    let mut read_hits = 0u64;
    let mut disk_reads = 0u64;
    let mut disk_writes = 0u64;
    for (_, m) in results {
        logical_reads += m.logical_reads;
        logical_writes += m.logical_writes;
        read_hits += m.read_hits;
        disk_reads += m.disk_reads;
        disk_writes += m.disk_writes;
    }
    reg.counter("cachesim.sweep.logical_reads")
        .add(logical_reads);
    reg.counter("cachesim.sweep.logical_writes")
        .add(logical_writes);
    reg.counter("cachesim.sweep.read_hits").add(read_hits);
    reg.counter("cachesim.sweep.read_misses")
        .add(logical_reads - read_hits);
    reg.counter("cachesim.sweep.disk_reads").add(disk_reads);
    reg.counter("cachesim.sweep.disk_writes").add(disk_writes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WritePolicy;
    use fstrace::{AccessMode, TraceBuilder};

    fn small_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        for i in 0..24u64 {
            let f = b.new_file_id();
            let t = i * 500;
            let o = b.open(t, f, u, AccessMode::ReadOnly, 8_192, false);
            b.close(t + 100, o, 8_192);
            if i % 3 == 0 {
                let o = b.open(t + 200, f, u, AccessMode::WriteOnly, 8_192, false);
                b.close(t + 300, o, 4_096);
            }
            b.execve(t + 400, f, u, 16_384);
        }
        b.finish()
    }

    fn grid() -> Vec<CacheConfig> {
        let mut v = Vec::new();
        for cache_kb in [64u64, 256] {
            for policy in WritePolicy::TABLE_VI {
                v.push(CacheConfig {
                    cache_bytes: cache_kb * 1024,
                    write_policy: policy,
                    ..CacheConfig::default()
                });
            }
        }
        v
    }

    #[test]
    fn matches_sequential_runs() {
        let trace = small_trace();
        let configs = grid();
        for jobs in [1, 2, 8] {
            let swept = run_with_jobs(&trace, &configs, jobs);
            assert_eq!(swept.len(), configs.len());
            for (i, (c, m)) in swept.iter().enumerate() {
                assert_eq!(*c, configs[i], "order must match input");
                assert_eq!(*m, Simulator::run(&trace, c), "jobs={jobs} config {i}");
            }
        }
    }

    // Expansion-count sharing is asserted in tests/sharing.rs, which
    // runs in its own process: the counter is process-global, and
    // concurrent unit tests would perturb before/after diffs here.

    #[test]
    fn paging_key_differs_and_changes_results() {
        let plain = CacheConfig::default();
        let paging = CacheConfig {
            simulate_paging: true,
            ..CacheConfig::default()
        };
        assert_ne!(ExpansionKey::of(&plain), ExpansionKey::of(&paging));
        let trace = small_trace();
        let out = run_with_jobs(&trace, &[plain, paging], 2);
        assert!(out[1].1.logical_reads > out[0].1.logical_reads);
    }

    #[test]
    fn empty_and_single_config_edge_cases() {
        let trace = small_trace();
        assert!(run_with_jobs(&trace, &[], 4).is_empty());
        let one = run_with_jobs(&trace, &[CacheConfig::default()], 4);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].1, Simulator::run(&trace, &CacheConfig::default()));
    }

    #[test]
    fn run_source_matches_run_for_owned_streams() {
        let trace = small_trace();
        // A grid with a lone paging cell: exercises both the streamed
        // single-cell path and the buffered multi-cell path.
        let mut configs = grid();
        configs.push(CacheConfig {
            simulate_paging: true,
            ..CacheConfig::default()
        });
        for jobs in [1, 4] {
            let streamed = run_source(|| trace.records().iter().copied(), &configs, jobs);
            let materialized = run_with_jobs(&trace, &configs, jobs);
            assert_eq!(streamed, materialized, "jobs={jobs}");
        }
    }

    #[test]
    fn run_block_source_matches_run_source() {
        let trace = small_trace();
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for r in trace.records() {
            prev = fstrace::codec::encode_into(&mut buf, r, prev);
        }
        let blocks_of = |step: usize| {
            let mut blocks = Vec::new();
            let mut pos = 0;
            let mut ticks = 0u64;
            while pos < buf.len() {
                let mut b = fstrace::RecordBlock::new();
                ticks =
                    fstrace::block::decode_block(&buf, &mut pos, ticks, buf.len(), step, &mut b)
                        .expect("well-formed");
                blocks.push(b);
            }
            blocks
        };
        let mut configs = grid();
        configs.push(CacheConfig {
            simulate_paging: true,
            ..CacheConfig::default()
        });
        for step in [5usize, 1024] {
            let blocks = blocks_of(step);
            for jobs in [1, 3] {
                let batched = run_block_source(|| blocks.iter().cloned(), &configs, jobs);
                let streamed = run_source(|| trace.records().iter(), &configs, jobs);
                assert_eq!(batched, streamed, "step {step} jobs {jobs}");
            }
        }
    }

    #[test]
    fn fifo_cells_fall_back_alongside_profiled_columns() {
        // LRU capacity columns profile together; FIFO cells (no
        // inclusion property) and a mismatched-elision singleton run
        // direct — all in one expansion group, all bit-identical to
        // sequential simulation.
        let trace = small_trace();
        let mut configs = Vec::new();
        for cache_kb in [32u64, 64, 256] {
            for policy in [WritePolicy::DelayedWrite, WritePolicy::WriteThrough] {
                configs.push(CacheConfig {
                    cache_bytes: cache_kb * 1024,
                    write_policy: policy,
                    ..CacheConfig::default()
                });
            }
            configs.push(CacheConfig {
                cache_bytes: cache_kb * 1024,
                replacement: crate::Replacement::Fifo,
                ..CacheConfig::default()
            });
        }
        configs.push(CacheConfig {
            whole_block_elision: false,
            ..CacheConfig::default()
        });
        for jobs in [1, 3] {
            let swept = run_with_jobs(&trace, &configs, jobs);
            for (i, (c, m)) in swept.iter().enumerate() {
                assert_eq!(*c, configs[i]);
                assert_eq!(*m, Simulator::run(&trace, c), "jobs={jobs} config {i}");
            }
        }
    }

    #[test]
    fn fidelity_joins_the_expansion_key() {
        let block = CacheConfig::default();
        let syscall = CacheConfig {
            fidelity: Fidelity::Syscall,
            ..CacheConfig::default()
        };
        assert_ne!(ExpansionKey::of(&block), ExpansionKey::of(&syscall));
    }

    #[test]
    fn mixed_fidelity_sweep_matches_sequential_runs() {
        // A grid spanning all three fidelities in one call: block
        // cells profile (or fall back), syscall/open cells always run
        // direct — every result bit-identical to a sequential run.
        let trace = small_trace();
        let mut configs = Vec::new();
        for fidelity in Fidelity::ALL {
            for cache_kb in [64u64, 256] {
                for policy in [WritePolicy::DelayedWrite, WritePolicy::WriteThrough] {
                    configs.push(CacheConfig {
                        cache_bytes: cache_kb * 1024,
                        write_policy: policy,
                        fidelity,
                        ..CacheConfig::default()
                    });
                }
            }
        }
        for jobs in [1, 4] {
            let swept = run_with_jobs(&trace, &configs, jobs);
            for (i, (c, m)) in swept.iter().enumerate() {
                assert_eq!(*c, configs[i], "order must match input");
                assert_eq!(*m, Simulator::run(&trace, c), "jobs={jobs} config {i}");
            }
        }
    }

    #[test]
    fn duplicate_configs_each_get_a_result() {
        let trace = small_trace();
        let one = CacheConfig::default();
        let configs = vec![one.clone(), one.clone(), one.clone()];
        let swept = run_with_jobs(&trace, &configs, 2);
        let want = Simulator::run(&trace, &one);
        assert_eq!(swept.len(), 3);
        for (_, m) in &swept {
            assert_eq!(*m, want);
        }
    }

    #[test]
    fn disabled_profiling_still_matches() {
        let trace = small_trace();
        let configs = grid();
        let profiled = run_with_jobs(&trace, &configs, 2);
        crate::stack::set_enabled(false);
        let direct = run_with_jobs(&trace, &configs, 2);
        crate::stack::set_enabled(true);
        assert_eq!(profiled, direct);
    }

    #[test]
    fn default_jobs_override_round_trips() {
        set_default_jobs(3);
        assert_eq!(default_jobs(), 3);
        set_default_jobs(0);
        assert!(default_jobs() >= 1);
    }
}
