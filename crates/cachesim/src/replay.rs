//! Converting a logical trace into block accesses and replaying them.
//!
//! Each sequential run reconstructed from the trace is billed at the
//! time of the `seek` or `close` that ended it (Section 3.1). How a run
//! reaches the cache depends on the configured [`Fidelity`]
//! (DESIGN.md §15):
//!
//! * [`Fidelity::Block`] splits runs into block accesses of the
//!   configured size with per-block byte accounting (Section 6.1: "we
//!   assumed that programs made requests in units of the cache block
//!   size") — the paper's simulator, kept bit-identical across the
//!   fidelity refactor.
//! * [`Fidelity::Syscall`] emits one [`ReplayEvent::Op`] per run; the
//!   replayer touches the same covering block range but skips byte
//!   accounting.
//! * [`Fidelity::Open`] emits one [`ReplayEvent::Op`] per open-close
//!   session, reconstructed from the session's transfer total.

use fstrace::{AccessMode, FastMap, FileId, OpenId, Trace, TraceEvent, TraceRecord};

use crate::cache::{BlockCache, BlockId};
use crate::config::{CacheConfig, Fidelity, RwHandling};
use crate::metrics::CacheMetrics;

/// One step of the replay, in time order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayEvent {
    /// The file's size became known (an `open` recorded it).
    SizeHint {
        /// Event time (ms).
        time_ms: u64,
        /// The file.
        file: FileId,
        /// Size at open.
        size: u64,
    },
    /// Bytes were transferred to or from a file.
    Transfer {
        /// Billing time (ms): the ending `seek`/`close`.
        time_ms: u64,
        /// The file.
        file: FileId,
        /// Starting byte offset.
        offset: u64,
        /// Length in bytes (positive).
        len: u64,
        /// `true` for writes.
        write: bool,
    },
    /// A logical operation replayed as a unit (syscall/open fidelity):
    /// the replayer accesses the covering block run without per-block
    /// byte accounting — requests are quantized to block units at op
    /// granularity, so writes never pay a read-modify-write fetch.
    Op {
        /// Billing time (ms): the ending `seek`/`close`.
        time_ms: u64,
        /// The file.
        file: FileId,
        /// Starting byte offset of the extent.
        offset: u64,
        /// Extent length in bytes (positive).
        len: u64,
        /// `true` for writes.
        write: bool,
    },
    /// The file was shortened (or emptied) in place.
    TruncateTo {
        /// Event time (ms).
        time_ms: u64,
        /// The file.
        file: FileId,
        /// New length in bytes.
        new_len: u64,
    },
    /// The file was deleted.
    Delete {
        /// Event time (ms).
        time_ms: u64,
        /// The file.
        file: FileId,
    },
}

impl ReplayEvent {
    /// The event's billing time in milliseconds.
    pub(crate) fn time(&self) -> u64 {
        match *self {
            ReplayEvent::SizeHint { time_ms, .. }
            | ReplayEvent::Transfer { time_ms, .. }
            | ReplayEvent::Op { time_ms, .. }
            | ReplayEvent::TruncateTo { time_ms, .. }
            | ReplayEvent::Delete { time_ms, .. } => time_ms,
        }
    }
}

/// Process-wide count of trace expansions started (one per
/// [`EventExpander`], and thus one per [`replay_events`] call),
/// exported via [`obs::global`] as `cachesim.replay.expansions`.
///
/// Expansion dominates sweep setup cost, so the sweep engine is careful
/// to do it once per (trace, expansion-relevant options) group; tests
/// read this counter to verify that sharing actually happens. Counts
/// monotonically across the whole process — callers should diff
/// before/after values rather than compare absolutes.
fn expansions_counter() -> &'static obs::Counter {
    static CELL: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
    CELL.get_or_init(|| obs::global().counter("cachesim.replay.expansions"))
}

/// Returns the process-wide [`replay_events`] invocation count.
pub fn expansion_count() -> u64 {
    expansions_counter().get()
}

/// Expands a trace into time-ordered replay events under a configuration
/// (the `rw_handling` and `simulate_paging` options affect the
/// expansion).
///
/// A thin wrapper over the streaming [`EventExpander`]: the events are
/// exactly what the expander emits, in the same order, so replaying
/// this vector and streaming the records produce identical metrics.
pub fn replay_events(trace: &Trace, config: &CacheConfig) -> Vec<ReplayEvent> {
    let mut expander = EventExpander::new(config);
    let mut events: Vec<ReplayEvent> = Vec::new();
    for rec in trace.records() {
        expander.feed(rec, &mut |ev| events.push(ev));
    }
    events
}

/// Expansion options that direct run billing, shared by every
/// fidelity's expander.
#[derive(Clone, Copy)]
struct Billing {
    rw_handling: RwHandling,
    simulate_paging: bool,
}

impl Billing {
    /// Calls `emit` once per billed direction for an access mode —
    /// reads, writes, or (read-write under [`RwHandling::Both`]) the
    /// read before the write.
    fn directions(&self, mode: AccessMode, emit: &mut impl FnMut(bool)) {
        match (mode, self.rw_handling) {
            (AccessMode::ReadOnly, _) | (AccessMode::ReadWrite, RwHandling::Read) => {
                emit(false);
            }
            (AccessMode::WriteOnly, _) | (AccessMode::ReadWrite, RwHandling::Write) => {
                emit(true);
            }
            (AccessMode::ReadWrite, RwHandling::Both) => {
                emit(false);
                emit(true);
            }
        }
    }
}

/// In-flight position tracking for one open file during expansion.
#[derive(Clone, Copy)]
struct PendingOpen {
    file: FileId,
    mode: AccessMode,
    pos: u64,
    /// Total bytes transferred over the session's runs — the
    /// open-fidelity expander's session-reconstruction input.
    total: u64,
}

/// A sequential run ended by a `seek` or `close` (Section 3.1).
struct Run {
    file: FileId,
    mode: AccessMode,
    offset: u64,
    len: u64,
}

/// The open-table machinery shared by every fidelity's expander:
/// tracks in-flight opens, reconstructs the sequential runs that
/// `seek`/`close` events bill, and accumulates per-session transfer
/// totals. Memory is O(simultaneously open files), never O(records).
///
/// Session state lives in an arena: `slots` holds the [`PendingOpen`]
/// payloads, `free` recycles the indices of closed sessions, and the
/// small `index` map only stores `OpenId -> u32` slot handles. An
/// open/close pair therefore allocates nothing in steady state — the
/// slot vector grows once to the high-water mark of simultaneously
/// open files and is reused for the rest of the trace. Slot indices
/// are stable for the lifetime of their session.
#[derive(Default)]
struct OpenTable {
    slots: Vec<PendingOpen>,
    free: Vec<u32>,
    index: FastMap<OpenId, u32>,
}

impl OpenTable {
    /// Starts tracking a session at position 0.
    fn open(&mut self, open_id: OpenId, file: FileId, mode: AccessMode) {
        let p = PendingOpen {
            file,
            mode,
            pos: 0,
            total: 0,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = p;
                slot
            }
            None => {
                self.slots.push(p);
                (self.slots.len() - 1) as u32
            }
        };
        if let Some(old) = self.index.insert(open_id, slot) {
            // A re-used OpenId overwrote an unclosed session, matching
            // the map-based table's insert semantics: free the orphan.
            self.free.push(old);
        }
    }

    /// Ends the run a `seek` bills (if any) and repositions.
    fn seek(&mut self, open_id: OpenId, old_pos: u64, new_pos: u64) -> Option<Run> {
        let slot = *self.index.get(&open_id)?;
        let p = &mut self.slots[slot as usize];
        let run = if old_pos > p.pos {
            let len = old_pos - p.pos;
            p.total += len;
            Some(Run {
                file: p.file,
                mode: p.mode,
                offset: p.pos,
                len,
            })
        } else {
            None
        };
        p.pos = new_pos;
        run
    }

    /// Ends the session a `close` ends, returning it together with its
    /// final run (if any), already folded into the session total.
    fn close(&mut self, open_id: OpenId, final_pos: u64) -> Option<(PendingOpen, Option<Run>)> {
        let slot = self.index.remove(&open_id)?;
        self.free.push(slot);
        let p = &mut self.slots[slot as usize];
        let run = if final_pos > p.pos {
            let len = final_pos - p.pos;
            p.total += len;
            Some(Run {
                file: p.file,
                mode: p.mode,
                offset: p.pos,
                len,
            })
        } else {
            None
        };
        Some((*p, run))
    }
}

/// Emits the open-record events every fidelity shares: the size hint,
/// then a zeroing truncate when the open created/truncated the file
/// (cached blocks of the old data are stale).
fn open_prologue(
    time_ms: u64,
    file: FileId,
    size: u64,
    created: bool,
    emit: &mut impl FnMut(ReplayEvent),
) {
    emit(ReplayEvent::SizeHint {
        time_ms,
        file,
        size,
    });
    if created {
        emit(ReplayEvent::TruncateTo {
            time_ms,
            file,
            new_len: 0,
        });
    }
}

/// The paper's block-fidelity expansion ([`Fidelity::Block`]): each
/// billed run becomes [`ReplayEvent::Transfer`]s that the replayer
/// splits into block accesses with per-block byte accounting. This
/// path is kept bit-identical to the pre-refactor `EventExpander`
/// (enforced by the legacy-equivalence proptests in
/// `tests/fidelity.rs`).
pub struct BlockExpander {
    billing: Billing,
    table: OpenTable,
}

impl BlockExpander {
    fn feed(&mut self, rec: &TraceRecord, emit: &mut impl FnMut(ReplayEvent)) {
        let time_ms = rec.time.as_ms();
        match rec.event {
            TraceEvent::Open {
                open_id,
                file_id,
                mode,
                size,
                created,
                ..
            } => {
                open_prologue(time_ms, file_id, size, created, emit);
                self.table.open(open_id, file_id, mode);
            }
            TraceEvent::Seek {
                open_id,
                old_pos,
                new_pos,
            } => {
                if let Some(run) = self.table.seek(open_id, old_pos, new_pos) {
                    self.emit_run(time_ms, &run, emit);
                }
            }
            TraceEvent::Close { open_id, final_pos } => {
                if let Some((_, Some(run))) = self.table.close(open_id, final_pos) {
                    self.emit_run(time_ms, &run, emit);
                }
            }
            TraceEvent::Unlink { file_id, .. } => emit(ReplayEvent::Delete {
                time_ms,
                file: file_id,
            }),
            TraceEvent::Truncate {
                file_id, new_len, ..
            } => emit(ReplayEvent::TruncateTo {
                time_ms,
                file: file_id,
                new_len,
            }),
            TraceEvent::Execve { file_id, size, .. }
                if self.billing.simulate_paging && size > 0 =>
            {
                emit(ReplayEvent::Transfer {
                    time_ms,
                    file: file_id,
                    offset: 0,
                    len: size,
                    write: false,
                });
            }
            _ => {}
        }
    }

    /// Emits the transfer(s) billed for one sequential run.
    fn emit_run(&self, time_ms: u64, run: &Run, emit: &mut impl FnMut(ReplayEvent)) {
        self.billing.directions(run.mode, &mut |write| {
            emit(ReplayEvent::Transfer {
                time_ms,
                file: run.file,
                offset: run.offset,
                len: run.len,
                write,
            })
        });
    }
}

/// Syscall-fidelity expansion ([`Fidelity::Syscall`]): one
/// [`ReplayEvent::Op`] per billed run, carrying the run's extent. Runs
/// are billed at the same points and in the same order as at block
/// fidelity — only the per-block decomposition is dropped.
pub struct SyscallExpander {
    billing: Billing,
    table: OpenTable,
}

impl SyscallExpander {
    fn feed(&mut self, rec: &TraceRecord, emit: &mut impl FnMut(ReplayEvent)) {
        let time_ms = rec.time.as_ms();
        match rec.event {
            TraceEvent::Open {
                open_id,
                file_id,
                mode,
                size,
                created,
                ..
            } => {
                open_prologue(time_ms, file_id, size, created, emit);
                self.table.open(open_id, file_id, mode);
            }
            TraceEvent::Seek {
                open_id,
                old_pos,
                new_pos,
            } => {
                if let Some(run) = self.table.seek(open_id, old_pos, new_pos) {
                    self.emit_run(time_ms, &run, emit);
                }
            }
            TraceEvent::Close { open_id, final_pos } => {
                if let Some((_, Some(run))) = self.table.close(open_id, final_pos) {
                    self.emit_run(time_ms, &run, emit);
                }
            }
            TraceEvent::Unlink { file_id, .. } => emit(ReplayEvent::Delete {
                time_ms,
                file: file_id,
            }),
            TraceEvent::Truncate {
                file_id, new_len, ..
            } => emit(ReplayEvent::TruncateTo {
                time_ms,
                file: file_id,
                new_len,
            }),
            TraceEvent::Execve { file_id, size, .. }
                if self.billing.simulate_paging && size > 0 =>
            {
                emit(ReplayEvent::Op {
                    time_ms,
                    file: file_id,
                    offset: 0,
                    len: size,
                    write: false,
                });
            }
            _ => {}
        }
    }

    /// Emits the op(s) billed for one sequential run.
    fn emit_run(&self, time_ms: u64, run: &Run, emit: &mut impl FnMut(ReplayEvent)) {
        self.billing.directions(run.mode, &mut |write| {
            emit(ReplayEvent::Op {
                time_ms,
                file: run.file,
                offset: run.offset,
                len: run.len,
                write,
            })
        });
    }
}

/// Open-fidelity expansion ([`Fidelity::Open`]): one
/// [`ReplayEvent::Op`] per open-close session, reconstructed from the
/// session's transfer total and billed at close time as a single
/// sequential extent from offset 0. Seeks contribute to the total but
/// emit nothing; sessions still open when the trace ends emit nothing
/// (mirroring block fidelity, where an unclosed open's final run is
/// never billed).
pub struct OpenExpander {
    billing: Billing,
    table: OpenTable,
}

impl OpenExpander {
    fn feed(&mut self, rec: &TraceRecord, emit: &mut impl FnMut(ReplayEvent)) {
        let time_ms = rec.time.as_ms();
        match rec.event {
            TraceEvent::Open {
                open_id,
                file_id,
                mode,
                size,
                created,
                ..
            } => {
                open_prologue(time_ms, file_id, size, created, emit);
                self.table.open(open_id, file_id, mode);
            }
            TraceEvent::Seek {
                open_id,
                old_pos,
                new_pos,
            } => {
                // Accumulates the run into the session total only.
                let _ = self.table.seek(open_id, old_pos, new_pos);
            }
            TraceEvent::Close { open_id, final_pos } => {
                if let Some((session, _)) = self.table.close(open_id, final_pos) {
                    if session.total > 0 {
                        self.billing.directions(session.mode, &mut |write| {
                            emit(ReplayEvent::Op {
                                time_ms,
                                file: session.file,
                                offset: 0,
                                len: session.total,
                                write,
                            })
                        });
                    }
                }
            }
            TraceEvent::Unlink { file_id, .. } => emit(ReplayEvent::Delete {
                time_ms,
                file: file_id,
            }),
            TraceEvent::Truncate {
                file_id, new_len, ..
            } => emit(ReplayEvent::TruncateTo {
                time_ms,
                file: file_id,
                new_len,
            }),
            TraceEvent::Execve { file_id, size, .. }
                if self.billing.simulate_paging && size > 0 =>
            {
                emit(ReplayEvent::Op {
                    time_ms,
                    file: file_id,
                    offset: 0,
                    len: size,
                    write: false,
                });
            }
            _ => {}
        }
    }
}

/// Streaming trace expansion: feed records in time order, receive the
/// replay events they imply, in a canonical per-record order. One
/// variant per [`Fidelity`], all sharing the [`OpenTable`] run/session
/// reconstruction; [`EventExpander::new`] picks the variant from
/// `config.fidelity`.
///
/// Each record's events are emitted the moment the record arrives:
///
/// * `open` → [`ReplayEvent::SizeHint`], then a zeroing
///   [`ReplayEvent::TruncateTo`] if the open created/truncated the file;
/// * `seek`/`close` → the [`ReplayEvent::Transfer`]s (block fidelity)
///   or [`ReplayEvent::Op`]s (syscall fidelity) for the sequential run
///   the event bills, or — at open fidelity — one [`ReplayEvent::Op`]
///   per `close` covering the whole session (for read-write opens under
///   [`RwHandling::Both`], the read precedes the write);
/// * `unlink` → [`ReplayEvent::Delete`];
/// * `truncate` → [`ReplayEvent::TruncateTo`];
/// * `execve` → a paging read when `simulate_paging` is on.
///
/// Event times are therefore nondecreasing whenever the input records
/// are, which is what [`Replayer`] and [`crate::MissSeries`] require.
/// Memory is O(simultaneously open files), never O(records) — this is
/// what lets a sweep cell consume a multi-day trace straight from disk.
pub enum EventExpander {
    /// Block-fidelity expansion (the paper's simulator).
    Block(BlockExpander),
    /// Syscall-fidelity expansion.
    Syscall(SyscallExpander),
    /// Open-fidelity expansion.
    Open(OpenExpander),
}

impl EventExpander {
    /// Creates the expander for a configuration's fidelity, counting
    /// one expansion in `cachesim.replay.expansions`.
    pub fn new(config: &CacheConfig) -> Self {
        expansions_counter().inc();
        let billing = Billing {
            rw_handling: config.rw_handling,
            simulate_paging: config.simulate_paging,
        };
        let table = OpenTable::default();
        match config.fidelity {
            Fidelity::Block => EventExpander::Block(BlockExpander { billing, table }),
            Fidelity::Syscall => EventExpander::Syscall(SyscallExpander { billing, table }),
            Fidelity::Open => EventExpander::Open(OpenExpander { billing, table }),
        }
    }

    /// Feeds one record, passing each replay event it implies to `emit`.
    pub fn feed(&mut self, rec: &TraceRecord, emit: &mut impl FnMut(ReplayEvent)) {
        match self {
            EventExpander::Block(e) => e.feed(rec, emit),
            EventExpander::Syscall(e) => e.feed(rec, emit),
            EventExpander::Open(e) => e.feed(rec, emit),
        }
    }

    /// Feeds every record of a decoded block, in order — the columnar
    /// twin of [`feed`] for batched decode pipelines. Materializes each
    /// record from the block's columns on the stack; no allocation.
    ///
    /// [`feed`]: EventExpander::feed
    pub fn feed_block(&mut self, block: &fstrace::RecordBlock, emit: &mut impl FnMut(ReplayEvent)) {
        for i in 0..block.len() {
            self.feed(&block.get(i), emit);
        }
    }
}

/// Incremental replay state: a cache plus the per-file size tracking
/// needed for whole-block-overwrite detection.
///
/// [`Simulator::run_events`] drives this to completion; time-series
/// measurements ([`crate::MissSeries`]) step it event by event.
pub struct Replayer {
    cache: BlockCache,
    config: CacheConfig,
    sizes: FastMap<FileId, u64>,
    end_time: u64,
}

impl Replayer {
    /// Creates replay state for a configuration.
    pub fn new(config: &CacheConfig) -> Self {
        Replayer {
            cache: BlockCache::new(config),
            config: config.clone(),
            sizes: FastMap::default(),
            end_time: 0,
        }
    }

    /// Read access to the cache (metrics, contents).
    pub fn cache(&self) -> &BlockCache {
        &self.cache
    }

    /// Finalizes residency accounting and returns the metrics.
    pub fn finish(mut self) -> CacheMetrics {
        self.cache.finish(self.end_time);
        self.cache.metrics
    }

    /// Applies one replay event.
    pub fn step(&mut self, ev: &ReplayEvent) {
        let bs = self.config.block_size;
        let config = &self.config;
        let cache = &mut self.cache;
        let sizes = &mut self.sizes;
        self.end_time = self.end_time.max(ev.time());
        match *ev {
            ReplayEvent::SizeHint { file, size, .. } => {
                let e = sizes.entry(file).or_insert(size);
                *e = (*e).max(size);
            }
            ReplayEvent::Transfer {
                time_ms,
                file,
                offset,
                len,
                write,
            } => {
                if len == 0 {
                    return;
                }
                let size = sizes.entry(file).or_insert(0);
                let end = offset + len;
                let old_size = *size;
                *size = old_size.max(end);
                for block in offset / bs..=(end - 1) / bs {
                    let id = BlockId { file, block };
                    if write {
                        let bstart = block * bs;
                        let bend = bstart + bs;
                        let old_valid = old_size.saturating_sub(bstart).min(bs);
                        let covered_hi = end.min(bend);
                        // No fetch is needed when the write covers
                        // every previously valid byte of the block
                        // (including the trivial case of none).
                        let whole = old_valid == 0
                            || (offset <= bstart && covered_hi >= bstart + old_valid);
                        cache.write(id, whole, time_ms);
                    } else {
                        cache.read(id, time_ms);
                    }
                }
            }
            ReplayEvent::Op {
                time_ms,
                file,
                offset,
                len,
                write,
            } => {
                if len == 0 {
                    return;
                }
                // Op-level replay (syscall/open fidelity): touch the
                // covering block run without byte accounting. Requests
                // are quantized to block units at op granularity — the
                // Section 6.1 assumption applied per op — so every
                // write counts as whole and the per-file size map is
                // never consulted.
                let end = offset + len;
                for block in offset / bs..=(end - 1) / bs {
                    let id = BlockId { file, block };
                    if write {
                        cache.write(id, true, time_ms);
                    } else {
                        cache.read(id, time_ms);
                    }
                }
            }
            ReplayEvent::TruncateTo {
                time_ms,
                file,
                new_len,
            } => {
                let size = sizes.entry(file).or_insert(0);
                *size = (*size).min(new_len);
                if config.invalidate_on_delete {
                    if new_len == 0 {
                        cache.invalidate_file(file, time_ms);
                    } else {
                        cache.invalidate_beyond(file, new_len.div_ceil(bs), time_ms);
                    }
                }
            }
            ReplayEvent::Delete { time_ms, file } => {
                sizes.remove(&file);
                if config.invalidate_on_delete {
                    cache.invalidate_file(file, time_ms);
                }
            }
        }
    }
}

/// The trace-driven simulator: expands a trace and replays it against a
/// [`BlockCache`].
pub struct Simulator;

impl Simulator {
    /// Runs one full simulation and returns its metrics.
    pub fn run(trace: &Trace, config: &CacheConfig) -> CacheMetrics {
        Self::run_stream(trace.records(), config)
    }

    /// Replays pre-expanded events (reusable across configurations that
    /// share `rw_handling`/`simulate_paging`).
    pub fn run_events(events: &[ReplayEvent], config: &CacheConfig) -> CacheMetrics {
        let mut r = Replayer::new(config);
        for ev in events {
            r.step(ev);
        }
        r.finish()
    }

    /// Expands and replays records as they stream past, holding only
    /// O(open files) state — the bounded-memory twin of [`Simulator::run`].
    pub fn run_stream<I>(records: I, config: &CacheConfig) -> CacheMetrics
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<TraceRecord>,
    {
        let mut expander = EventExpander::new(config);
        let mut r = Replayer::new(config);
        for rec in records {
            expander.feed(std::borrow::Borrow::borrow(&rec), &mut |ev| r.step(&ev));
        }
        r.finish()
    }

    /// Expands and replays columnar record blocks — the batched-decode
    /// twin of [`Simulator::run_stream`], fed straight from
    /// `tracestore::Archive::blocks` or any [`fstrace::RecordBlock`]
    /// producer.
    pub fn run_blocks<I>(blocks: I, config: &CacheConfig) -> CacheMetrics
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<fstrace::RecordBlock>,
    {
        let mut expander = EventExpander::new(config);
        let mut r = Replayer::new(config);
        for block in blocks {
            expander.feed_block(std::borrow::Borrow::borrow(&block), &mut |ev| r.step(&ev));
        }
        r.finish()
    }

    /// Replays a refillable block source through one reused column
    /// buffer — the allocation-free twin of [`Simulator::run_blocks`].
    /// With a [`tracestore`]-style pipelined source the drained buffer
    /// is handed back to the producer on every refill, so the steady
    /// state allocates nothing.
    pub fn run_fill<S: fstrace::FillBlock>(mut source: S, config: &CacheConfig) -> CacheMetrics {
        let mut expander = EventExpander::new(config);
        let mut r = Replayer::new(config);
        let mut block = fstrace::RecordBlock::new();
        while source.fill_next(&mut block) {
            expander.feed_block(&block, &mut |ev| r.step(&ev));
        }
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WritePolicy;
    use fstrace::TraceBuilder;

    fn cfg() -> CacheConfig {
        CacheConfig {
            cache_bytes: 64 * 1024,
            block_size: 4096,
            write_policy: WritePolicy::DelayedWrite,
            ..CacheConfig::default()
        }
    }

    /// Whole-file write then delete: delayed-write never touches disk.
    #[test]
    fn temp_file_never_reaches_disk() {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let f = b.new_file_id();
        let o = b.open(0, f, u, AccessMode::WriteOnly, 0, true);
        b.close(100, o, 12_000);
        b.unlink(5_000, f, u);
        let m = Simulator::run(&b.finish(), &cfg());
        assert_eq!(m.logical_writes, 3); // Three 4 kB blocks.
        assert_eq!(m.disk_reads, 0); // All whole-block writes.
        assert_eq!(m.disk_writes, 0); // Dropped before any flush.
        assert_eq!(m.dirty_blocks_never_written, 3);
        assert_eq!(m.miss_ratio(), 0.0);
    }

    /// The same temp file under write-through pays for every block.
    #[test]
    fn temp_file_write_through() {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let f = b.new_file_id();
        let o = b.open(0, f, u, AccessMode::WriteOnly, 0, true);
        b.close(100, o, 12_000);
        b.unlink(5_000, f, u);
        let mut config = cfg();
        config.write_policy = WritePolicy::WriteThrough;
        let m = Simulator::run(&b.finish(), &config);
        assert_eq!(m.disk_writes, 3);
        assert!((m.miss_ratio() - 1.0).abs() < 1e-12);
    }

    /// Re-reading a file hits the cache.
    #[test]
    fn reread_hits() {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let f = b.new_file_id();
        for t in [0u64, 1_000, 2_000] {
            let o = b.open(t, f, u, AccessMode::ReadOnly, 8_192, false);
            b.close(t + 100, o, 8_192);
        }
        let m = Simulator::run(&b.finish(), &cfg());
        assert_eq!(m.logical_reads, 6);
        assert_eq!(m.disk_reads, 2);
        assert_eq!(m.read_hits, 4);
    }

    /// A partial overwrite of existing data must fetch the block.
    #[test]
    fn partial_overwrite_fetches() {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let f = b.new_file_id();
        // File exists with 8 kB; overwrite bytes 1000..2000 in place.
        let o = b.open(0, f, u, AccessMode::ReadWrite, 8_192, false);
        b.seek(10, o, 0, 1_000);
        b.close(20, o, 2_000);
        let m = Simulator::run(&b.finish(), &cfg());
        assert_eq!(m.logical_writes, 1);
        assert_eq!(m.disk_reads, 1); // Read-modify-write fetch.
    }

    /// Appending to a file: the tail block beyond old EOF needs no fetch.
    #[test]
    fn append_beyond_eof_elides() {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let f = b.new_file_id();
        // File is exactly two blocks; append one more block.
        let o = b.open(0, f, u, AccessMode::ReadWrite, 8_192, false);
        b.seek(10, o, 0, 8_192);
        b.close(20, o, 12_288);
        let m = Simulator::run(&b.finish(), &cfg());
        assert_eq!(m.logical_writes, 1);
        assert_eq!(m.disk_reads, 0);
        assert_eq!(m.elided_fetches, 1);
    }

    /// Truncate-on-open (recreate) invalidates the old cached data.
    #[test]
    fn recreate_invalidates() {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let f = b.new_file_id();
        let o = b.open(0, f, u, AccessMode::WriteOnly, 0, true);
        b.close(100, o, 4_096);
        let o = b.open(10_000, f, u, AccessMode::WriteOnly, 0, true);
        b.close(10_100, o, 4_096);
        let m = Simulator::run(&b.finish(), &cfg());
        // Both generations die in cache under delayed-write.
        assert_eq!(m.disk_writes, 0);
        assert_eq!(m.dirty_blocks_never_written, 1); // First generation.
    }

    /// Paging simulation adds execve reads (Figure 7).
    #[test]
    fn paging_mode_reads_programs() {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let f = b.new_file_id();
        b.execve(0, f, u, 40_960);
        let trace = b.finish();
        let m = Simulator::run(&trace, &cfg());
        assert_eq!(m.logical_reads, 0);
        let mut config = cfg();
        config.simulate_paging = true;
        let m = Simulator::run(&trace, &config);
        assert_eq!(m.logical_reads, 10);
        assert_eq!(m.disk_reads, 10);
    }

    /// The 30 s flush-back writes dirty blocks that survive 30 s.
    #[test]
    fn flush_back_interval() {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let f = b.new_file_id();
        let o = b.open(0, f, u, AccessMode::WriteOnly, 0, true);
        b.close(100, o, 4_096);
        // Unrelated activity 31 s later triggers the scan.
        let g = b.new_file_id();
        let o = b.open(31_000, g, u, AccessMode::ReadOnly, 4_096, false);
        b.close(31_100, o, 4_096);
        let mut config = cfg();
        config.write_policy = WritePolicy::FlushBack {
            interval_ms: 30_000,
        };
        let m = Simulator::run(&b.finish(), &config);
        assert_eq!(m.disk_writes, 1);
    }

    /// A trace with same-tick events, seeks, RW sessions, truncates,
    /// deletes, and an unclosed open — for order-sensitive checks.
    fn busy_trace() -> fstrace::Trace {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let f1 = b.new_file_id();
        let f2 = b.new_file_id();
        let o1 = b.open(0, f1, u, AccessMode::ReadWrite, 10_000, false);
        let o2 = b.open(0, f2, u, AccessMode::WriteOnly, 0, true);
        b.seek(10, o1, 4_000, 8_000);
        b.close(10, o2, 6_000);
        b.close(20, o1, 9_500);
        b.truncate(30, f1, 2_000, u);
        b.execve(30, f2, u, 6_000);
        b.unlink(40, f2, u);
        b.open(50, f1, u, AccessMode::ReadOnly, 2_000, false); // Unclosed.
        b.finish()
    }

    /// Streaming expansion+replay equals expanding first and replaying
    /// the materialized events, for every rw-handling/paging combo.
    #[test]
    fn run_stream_matches_run_events() {
        let trace = busy_trace();
        for rw in [RwHandling::Read, RwHandling::Write, RwHandling::Both] {
            for paging in [false, true] {
                let config = CacheConfig {
                    rw_handling: rw,
                    simulate_paging: paging,
                    ..cfg()
                };
                let events = replay_events(&trace, &config);
                let materialized = Simulator::run_events(&events, &config);
                let streamed = Simulator::run_stream(trace.records(), &config);
                assert_eq!(materialized, streamed, "rw {rw:?} paging {paging}");
            }
        }
    }

    /// Replaying columnar blocks equals replaying the record stream,
    /// across block boundaries that split mid-file-session.
    #[test]
    fn run_blocks_matches_run_stream() {
        let trace = busy_trace();
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for r in trace.records() {
            prev = fstrace::codec::encode_into(&mut buf, r, prev);
        }
        for step in [1usize, 3, 1024] {
            let mut blocks = Vec::new();
            let mut pos = 0;
            let mut ticks = 0u64;
            while pos < buf.len() {
                let mut b = fstrace::RecordBlock::new();
                ticks =
                    fstrace::block::decode_block(&buf, &mut pos, ticks, buf.len(), step, &mut b)
                        .expect("well-formed");
                blocks.push(b);
            }
            let config = CacheConfig {
                rw_handling: RwHandling::Both,
                simulate_paging: true,
                ..cfg()
            };
            let batched = Simulator::run_blocks(&blocks, &config);
            let streamed = Simulator::run_stream(trace.records(), &config);
            assert_eq!(batched, streamed, "step {step}");
        }
    }

    /// Syscall fidelity quantizes requests to block units per op: the
    /// partial overwrite that forces a read-modify-write fetch at
    /// block fidelity is billed as a whole write.
    #[test]
    fn syscall_fidelity_elides_partial_overwrite() {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let f = b.new_file_id();
        let o = b.open(0, f, u, AccessMode::ReadWrite, 8_192, false);
        b.seek(10, o, 0, 1_000);
        b.close(20, o, 2_000);
        let trace = b.finish();
        let block = Simulator::run(&trace, &cfg());
        let syscall = Simulator::run(
            &trace,
            &CacheConfig {
                fidelity: Fidelity::Syscall,
                ..cfg()
            },
        );
        assert_eq!(block.disk_reads, 1); // Read-modify-write fetch.
        assert_eq!(syscall.disk_reads, 0); // Op-level: counts as whole.
        assert_eq!(syscall.elided_fetches, 1);
        // Same blocks touched: logical traffic matches block fidelity.
        assert_eq!(syscall.logical_writes, block.logical_writes);
    }

    /// Open fidelity collapses a session's runs into one extent from
    /// offset 0, billed at close time — a high-offset run therefore
    /// lands on different (lower) blocks than at finer fidelities.
    #[test]
    fn open_fidelity_collapses_session() {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let f = b.new_file_id();
        let o = b.open(0, f, u, AccessMode::ReadOnly, 40_960, false);
        // Two runs: bytes 0..4096 and 36864..40960.
        b.seek(10, o, 4_096, 36_864);
        b.close(20, o, 40_960);
        let trace = b.finish();
        let block = Simulator::run(&trace, &cfg());
        let open = Simulator::run(
            &trace,
            &CacheConfig {
                fidelity: Fidelity::Open,
                ..cfg()
            },
        );
        // Block fidelity reads blocks {0} and {9}; open fidelity reads
        // the 8192-byte total as blocks {0, 1}.
        assert_eq!(block.logical_reads, 2);
        assert_eq!(open.logical_reads, 2);
        let open_events = replay_events(
            &trace,
            &CacheConfig {
                fidelity: Fidelity::Open,
                ..cfg()
            },
        );
        assert!(open_events.iter().any(|e| matches!(
            e,
            ReplayEvent::Op {
                time_ms: 20,
                offset: 0,
                len: 8_192,
                write: false,
                ..
            }
        )));
    }

    /// Seeks emit nothing at open fidelity; the session total still
    /// includes every run.
    #[test]
    fn open_fidelity_bills_at_close_only() {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let f = b.new_file_id();
        let o = b.open(0, f, u, AccessMode::ReadOnly, 8_192, false);
        b.seek(10, o, 4_096, 0); // Ends a 4096-byte run.
        b.close(20, o, 4_096); // Ends another.
        let events = replay_events(
            &b.finish(),
            &CacheConfig {
                fidelity: Fidelity::Open,
                ..cfg()
            },
        );
        let ops: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, ReplayEvent::Op { .. }))
            .collect();
        assert_eq!(ops.len(), 1);
        assert!(matches!(
            ops[0],
            ReplayEvent::Op {
                time_ms: 20,
                len: 8_192,
                ..
            }
        ));
    }

    /// The expander emits one expansion per instance, exactly like a
    /// `replay_events` call.
    #[test]
    fn expander_counts_one_expansion() {
        let before = expansion_count();
        let _ = EventExpander::new(&cfg());
        assert_eq!(expansion_count(), before + 1);
        let trace = busy_trace();
        let _ = replay_events(&trace, &cfg());
        assert_eq!(expansion_count(), before + 2);
    }

    /// Replay events come out in nondecreasing time order (what
    /// `MissSeries` requires), with a record's events contiguous.
    #[test]
    fn replay_events_are_time_ordered() {
        let config = CacheConfig {
            rw_handling: RwHandling::Both,
            simulate_paging: true,
            ..cfg()
        };
        let events = replay_events(&busy_trace(), &config);
        assert!(!events.is_empty());
        for pair in events.windows(2) {
            assert!(pair[0].time() <= pair[1].time(), "{pair:?}");
        }
    }

    /// Larger caches never do more disk I/O on the same trace (LRU
    /// inclusion property).
    #[test]
    fn bigger_cache_never_worse() {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        // A working set that overflows the small cache.
        for i in 0..32u64 {
            let f = b.new_file_id();
            let t = i * 1_000;
            let o = b.open(t, f, u, AccessMode::ReadOnly, 8_192, false);
            b.close(t + 100, o, 8_192);
        }
        // Re-read everything.
        for i in 0..32u64 {
            let f = fstrace::FileId(i);
            let t = 100_000 + i * 1_000;
            let o = b.open(t, f, u, AccessMode::ReadOnly, 8_192, false);
            b.close(t + 100, o, 8_192);
        }
        let trace = b.finish();
        let small = Simulator::run(
            &trace,
            &CacheConfig {
                cache_bytes: 16 * 4096,
                ..cfg()
            },
        );
        let big = Simulator::run(
            &trace,
            &CacheConfig {
                cache_bytes: 128 * 4096,
                ..cfg()
            },
        );
        assert!(big.disk_ios() <= small.disk_ios());
        assert!(big.miss_ratio() < small.miss_ratio());
    }
}
