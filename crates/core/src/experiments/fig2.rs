//! Figure 2: dynamic distribution of file sizes at close.

use std::fmt;

use fsanalysis::FileSizeAnalysis;

use crate::report::{pct, Table};
use crate::TraceSet;

/// Byte grid matching Figure 2's x-axis (up to the ~1 Mbyte
/// administrative files).
pub const GRID_BYTES: [u64; 10] = [
    1_024, 2_048, 5_120, 10_240, 25_600, 51_200, 102_400, 256_000, 512_000, 1_200_000,
];

/// Measured Figure 2 curves.
pub struct Fig2 {
    /// Trace names.
    pub names: Vec<String>,
    /// Size analyses per trace.
    pub analyses: Vec<FileSizeAnalysis>,
}

/// Computes the curves from each entry's shared single-pass analysis.
pub fn run(set: &TraceSet) -> Fig2 {
    Fig2 {
        names: set.entries.iter().map(|e| e.name.clone()).collect(),
        analyses: set
            .entries
            .iter()
            .map(|e| e.analysis().sizes.clone())
            .collect(),
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut analyses: Vec<FileSizeAnalysis> = self.analyses.clone();
        for (title, by_bytes) in [
            ("Figure 2a. Cumulative % of accesses vs file size", false),
            ("Figure 2b. Cumulative % of bytes vs file size", true),
        ] {
            let mut headers = vec!["file size".to_string()];
            headers.extend(self.names.iter().cloned());
            let hrefs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut t = Table::new(title, &hrefs);
            for &g in &GRID_BYTES {
                let mut row = vec![format!("{} KB", g / 1024)];
                for a in analyses.iter_mut() {
                    let v = if by_bytes {
                        a.fraction_of_bytes_le(g)
                    } else {
                        a.fraction_of_accesses_le(g)
                    };
                    row.push(pct(v));
                }
                t.row(row);
            }
            if by_bytes {
                t.note("Paper: only ~30% of bytes move to/from files under 10 kbytes.");
            } else {
                t.note("Paper: ~80% of accesses touch files under 10 kbytes; most of the");
                t.note("rest hit a few ~1 Mbyte administrative files.");
            }
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}
