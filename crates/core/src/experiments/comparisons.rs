//! Section 6.4: why simulated miss ratios exceed measured ones.
//!
//! The paper predicts ~50% miss for the 4.2 BSD configuration from file
//! data alone, yet Leffler et al. *measured* ~15%. The paper gives two
//! reasons: programs issue requests smaller than the block size
//! (inflating logical I/Os), and the real cache also carries paging,
//! directory, and descriptor traffic that caches well. Our substrate
//! lets us reproduce the contrast directly: the `bsdfs` buffer cache
//! sees 1-kbyte stdio requests *and* all metadata, while the
//! trace-driven simulator sees only file data in block-size units.

use std::fmt;

use cachesim::{CacheConfig, Simulator, WritePolicy};

use crate::paper;
use crate::report::{pct, Table};
use crate::TraceSet;

/// The measured-vs-simulated contrast.
pub struct Comparisons {
    /// Miss ratio predicted by the trace-driven simulator (file data
    /// only, 4 KB accesses, 400 KB cache, 30 s flush).
    pub simulated_miss: f64,
    /// Miss ratio measured on the `bsdfs` buffer cache itself (1 KB
    /// requests, plus inode, indirect and directory traffic).
    pub measured_miss: f64,
    /// `bsdfs` directory name cache hit ratio.
    pub name_cache_hit: f64,
    /// Logical accesses seen by the simulator.
    pub simulated_accesses: u64,
    /// Logical accesses seen by the live buffer cache.
    pub measured_accesses: u64,
}

/// Runs the comparison on the A5 trace/file system.
pub fn run(set: &TraceSet) -> Comparisons {
    let entry = set.a5();
    // Always block fidelity, whatever --fidelity asks: the comparison
    // target is the live bsdfs buffer cache, which is a block cache by
    // construction — a coarser replay would measure a different thing.
    let cfg = CacheConfig {
        cache_bytes: 400 * 1024,
        block_size: 4096,
        write_policy: WritePolicy::FlushBack {
            interval_ms: 30_000,
        },
        ..CacheConfig::default()
    };
    let sim = Simulator::run(&entry.out.trace, &cfg);
    let bc = entry.out.fs.bcache_stats();
    Comparisons {
        simulated_miss: sim.miss_ratio(),
        measured_miss: bc.miss_ratio(),
        name_cache_hit: entry.out.fs.ncache_stats().hit_ratio(),
        simulated_accesses: sim.logical_accesses(),
        measured_accesses: bc.logical_accesses(),
    }
}

impl fmt::Display for Comparisons {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Section 6.4. Simulated vs measured cache behavior (a5, ~400 KB cache, 30 s flush)",
            &["Measure", "value"],
        );
        t.row(vec![
            "Trace-driven simulation miss ratio (file data, 4 KB units)".into(),
            pct(self.simulated_miss),
        ]);
        t.row(vec![
            "Live bsdfs buffer cache miss ratio (1 KB stdio + metadata)".into(),
            pct(self.measured_miss),
        ]);
        t.row(vec![
            "  paper: simulated ~50%, Leffler et al. measured".into(),
            pct(paper::LEFFLER_MEASURED_MISS),
        ]);
        t.row(vec![
            "Simulator logical accesses".into(),
            self.simulated_accesses.to_string(),
        ]);
        t.row(vec![
            "Buffer cache logical accesses".into(),
            self.measured_accesses.to_string(),
        ]);
        t.row(vec![
            "Directory name cache hit ratio".into(),
            pct(self.name_cache_hit),
        ]);
        t.row(vec![
            "  Leffler et al. report".into(),
            pct(paper::LEFFLER_NAME_CACHE_HIT),
        ]);
        t.note("Smaller-than-block requests inflate logical I/Os and deflate the");
        t.note("measured ratio, and metadata traffic caches well — the two effects");
        t.note("the paper names to explain the simulated/measured discrepancy.");
        write!(f, "{t}")
    }
}
