//! Figure 4: cumulative distributions of file lifetimes.

use std::fmt;

use fsanalysis::LifetimeAnalysis;

use crate::chart::{render, Curve};
use crate::paper;
use crate::report::{pct, Table};
use crate::TraceSet;

/// Seconds grid matching Figure 4's x-axis.
pub const GRID_SECS: [f64; 9] = [3.0, 10.0, 30.0, 60.0, 120.0, 178.0, 182.0, 300.0, 500.0];

/// Measured Figure 4 curves.
pub struct Fig4 {
    /// Trace names.
    pub names: Vec<String>,
    /// Lifetime analyses per trace.
    pub analyses: Vec<LifetimeAnalysis>,
    /// Fraction of lifetimes in the 179–181 s daemon spike, per trace.
    pub spikes: Vec<f64>,
}

/// Computes the curves from each entry's shared single-pass analysis.
pub fn run(set: &TraceSet) -> Fig4 {
    let mut analyses: Vec<LifetimeAnalysis> = set
        .entries
        .iter()
        .map(|e| e.analysis().lifetimes.clone())
        .collect();
    let spikes = analyses
        .iter_mut()
        .map(|a| a.fraction_of_files_between_secs(179.0, 181.0))
        .collect();
    Fig4 {
        names: set.entries.iter().map(|e| e.name.clone()).collect(),
        analyses,
        spikes,
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut analyses: Vec<LifetimeAnalysis> = self.analyses.clone();
        for (title, by_bytes) in [
            ("Figure 4a. Cumulative % of new files vs lifetime", false),
            ("Figure 4b. Cumulative % of new bytes vs lifetime", true),
        ] {
            let mut headers = vec!["lifetime".to_string()];
            headers.extend(self.names.iter().cloned());
            let hrefs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut t = Table::new(title, &hrefs);
            for &g in &GRID_SECS {
                let mut row = vec![format!("{g} s")];
                for a in analyses.iter_mut() {
                    let v = if by_bytes {
                        a.fraction_of_bytes_le_secs(g)
                    } else {
                        a.fraction_of_files_le_secs(g)
                    };
                    row.push(pct(v));
                }
                t.row(row);
            }
            if !by_bytes {
                let spikes: Vec<String> = self.spikes.iter().map(|&s| pct(s)).collect();
                t.note(&format!(
                    "Spike at 179-181 s (network status daemons): {} (paper: {:.0}-{:.0}%)",
                    spikes.join(" / "),
                    100.0 * paper::LIFETIME_DAEMON_SPIKE.0,
                    100.0 * paper::LIFETIME_DAEMON_SPIKE.1
                ));
                t.note("Paper: most new files die within ~3 minutes of creation.");
            } else {
                t.note("Paper: 20-30% of new bytes die within 30 s, ~50% within 5 min.");
            }
            writeln!(f, "{t}")?;
            if !by_bytes {
                let curves: Vec<Curve> = self
                    .names
                    .iter()
                    .zip(analyses.iter_mut())
                    .map(|(name, a)| Curve {
                        label: name.clone(),
                        points: GRID_SECS
                            .iter()
                            .map(|&g| (g, a.fraction_of_files_le_secs(g)))
                            .collect(),
                    })
                    .collect();
                writeln!(
                    f,
                    "{}",
                    render(
                        "  cumulative % of new files vs lifetime (note the 180 s daemon jump)",
                        "lifetime (s)",
                        &curves,
                        &|x| format!("{x}s")
                    )
                )?;
            }
        }
        Ok(())
    }
}
