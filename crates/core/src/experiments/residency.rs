//! Section 6.2: how long dirty blocks stay in a delayed-write cache —
//! the crash-exposure argument against pure delayed write.

use std::fmt;

use cachesim::{CacheConfig, Simulator, WritePolicy};

use crate::paper;
use crate::report::{pct, Table};
use crate::TraceSet;

/// Residency measurements at one cache size.
pub struct Residency {
    /// Cache size in Mbytes.
    pub cache_mb: u64,
    /// Fraction of dirty blocks resident longer than each checkpoint
    /// (minutes, fraction).
    pub longer_than: Vec<(u64, f64)>,
    /// Fraction of dirtied blocks that never reached disk.
    pub never_written: f64,
}

/// Measures dirty-block residency at a 4-Mbyte delayed-write cache.
pub fn run(set: &TraceSet) -> Residency {
    let trace = &set.a5().out.trace;
    let cfg = CacheConfig {
        cache_bytes: 4 << 20,
        block_size: 4096,
        write_policy: WritePolicy::DelayedWrite,
        fidelity: set.fidelity,
        ..CacheConfig::default()
    };
    let mut m = Simulator::run(trace, &cfg);
    let longer_than = [1u64, 2, 5, 10, 20]
        .iter()
        .map(|&min| (min, m.residency_longer_than_minutes(min)))
        .collect();
    Residency {
        cache_mb: 4,
        longer_than,
        never_written: m.never_written_fraction(),
    }
}

impl fmt::Display for Residency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Section 6.2. Dirty-block residency under delayed write (a5, 4 MB cache)",
            &["Resident longer than", "Fraction of dirty blocks"],
        );
        for &(min, frac) in &self.longer_than {
            t.row(vec![format!("{min} min"), pct(frac)]);
        }
        t.row(vec!["never written at all".into(), pct(self.never_written)]);
        t.note(&format!(
            "Paper: ~20% of blocks stay cached over 20 minutes; ~{:.0}% of new",
            100.0 * paper::NEVER_WRITTEN_FRACTION
        ));
        t.note("blocks are overwritten or deleted before ever reaching disk. Our");
        t.note("synthetic hours are denser than the paper's multi-day traces, so");
        t.note("the cache turns over faster and residencies are shorter; the");
        t.note("never-written fraction reproduces.");
        write!(f, "{t}")
    }
}
