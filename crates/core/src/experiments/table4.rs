//! Table IV: system activity — users, active users, and throughput per
//! active user.

use std::fmt;

use fsanalysis::ActivityAnalysis;

use crate::paper;
use crate::report::{f1, mean_sd, Table};
use crate::TraceSet;

/// Measured Table IV.
pub struct Table4 {
    /// Trace names in column order.
    pub names: Vec<String>,
    /// Activity analyses (10-minute and 10-second windows).
    pub analyses: Vec<ActivityAnalysis>,
}

/// Computes the table (600 s and 10 s windows, as in the paper), from
/// each entry's shared single-pass analysis.
pub fn run(set: &TraceSet) -> Table4 {
    Table4 {
        names: set.entries.iter().map(|e| e.name.clone()).collect(),
        analyses: set
            .entries
            .iter()
            .map(|e| e.analysis().activity.clone())
            .collect(),
    }
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["Measure"];
        headers.extend(self.names.iter().map(String::as_str));
        headers.push("paper a5");
        let mut t = Table::new("Table IV. System activity", &headers);
        let row = |label: &str, cells: Vec<String>, paper: String| {
            let mut r = vec![label.to_string()];
            r.extend(cells);
            r.push(paper);
            r
        };
        t.row(row(
            "Average throughput (bytes/sec)",
            self.analyses.iter().map(|a| f1(a.avg_throughput)).collect(),
            String::new(),
        ));
        t.row(row(
            "Total different users",
            self.analyses
                .iter()
                .map(|a| a.total_users.to_string())
                .collect(),
            String::new(),
        ));
        t.row(row(
            "Max active users (10 min)",
            self.analyses
                .iter()
                .map(|a| a.windows[0].max_active.to_string())
                .collect(),
            String::new(),
        ));
        t.row(row(
            "Avg active users (10 min)",
            self.analyses
                .iter()
                .map(|a| {
                    mean_sd(
                        a.windows[0].avg_active(),
                        a.windows[0].active_per_window.population_stddev(),
                    )
                })
                .collect(),
            mean_sd(
                paper::TABLE_IV_ACTIVE_10MIN[0].0,
                paper::TABLE_IV_ACTIVE_10MIN[0].1,
            ),
        ));
        t.row(row(
            "Throughput/active user B/s (10 min)",
            self.analyses
                .iter()
                .map(|a| {
                    mean_sd(
                        a.windows[0].avg_throughput(),
                        a.windows[0].throughput_per_active.population_stddev(),
                    )
                })
                .collect(),
            mean_sd(
                paper::TABLE_IV_THROUGHPUT_10MIN[0].0,
                paper::TABLE_IV_THROUGHPUT_10MIN[0].1,
            ),
        ));
        t.row(row(
            "Avg active users (10 sec)",
            self.analyses
                .iter()
                .map(|a| {
                    mean_sd(
                        a.windows[1].avg_active(),
                        a.windows[1].active_per_window.population_stddev(),
                    )
                })
                .collect(),
            mean_sd(
                paper::TABLE_IV_ACTIVE_10SEC[0].0,
                paper::TABLE_IV_ACTIVE_10SEC[0].1,
            ),
        ));
        t.row(row(
            "Throughput/active user B/s (10 sec)",
            self.analyses
                .iter()
                .map(|a| {
                    mean_sd(
                        a.windows[1].avg_throughput(),
                        a.windows[1].throughput_per_active.population_stddev(),
                    )
                })
                .collect(),
            mean_sd(
                paper::TABLE_IV_THROUGHPUT_10SEC[0].0,
                paper::TABLE_IV_THROUGHPUT_10SEC[0].1,
            ),
        ));
        t.note("Paper: active users need only a few hundred bytes/second on average");
        t.note("over ten-minute intervals, a few kbytes/second over ten-second bursts.");
        write!(f, "{t}")
    }
}
