//! Figure 1: cumulative distributions of sequential run lengths.

use std::fmt;

use fsanalysis::RunLengthAnalysis;

use crate::report::{pct, Table};
use crate::TraceSet;

/// Kilobyte grid matching Figure 1's x-axis.
pub const GRID_BYTES: [u64; 9] = [
    512, 1_024, 2_048, 4_096, 8_192, 16_384, 25_600, 51_200, 102_400,
];

/// Measured Figure 1 curves.
pub struct Fig1 {
    /// Trace names.
    pub names: Vec<String>,
    /// Run-length analyses per trace.
    pub analyses: Vec<RunLengthAnalysis>,
}

/// Computes the curves from each entry's shared single-pass analysis.
pub fn run(set: &TraceSet) -> Fig1 {
    Fig1 {
        names: set.entries.iter().map(|e| e.name.clone()).collect(),
        analyses: set
            .entries
            .iter()
            .map(|e| e.analysis().run_lengths.clone())
            .collect(),
    }
}

impl fmt::Display for Fig1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut analyses: Vec<RunLengthAnalysis> = self.analyses.clone();
        for (title, by_bytes) in [
            ("Figure 1a. Cumulative % of runs vs run length", false),
            ("Figure 1b. Cumulative % of bytes vs run length", true),
        ] {
            let mut headers = vec!["run length".to_string()];
            headers.extend(self.names.iter().cloned());
            let hrefs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut t = Table::new(title, &hrefs);
            for &g in &GRID_BYTES {
                let mut row = vec![if g < 1024 {
                    format!("{g} B")
                } else {
                    format!("{} KB", g / 1024)
                }];
                for a in analyses.iter_mut() {
                    let v = if by_bytes {
                        a.fraction_of_bytes_le(g)
                    } else {
                        a.fraction_of_runs_le(g)
                    };
                    row.push(pct(v));
                }
                t.row(row);
            }
            if by_bytes {
                t.note("Paper: ~30-40% of all bytes move in runs longer than 25 kbytes.");
            } else {
                t.note("Paper: ~70-75% of all sequential runs are under 4 kbytes.");
            }
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}
