//! Table VII / Figure 6: disk I/Os as a function of block size and
//! cache size (A5 trace, delayed write).

use std::fmt;

use cachesim::{sweep, CacheConfig, WritePolicy};

use crate::paper;
use crate::report::{count, Table};
use crate::TraceSet;

/// One row of the sweep: a block size with its access and I/O counts.
#[derive(Debug, Clone)]
pub struct Row {
    /// Block size in kbytes.
    pub block_kb: u64,
    /// Total logical block accesses at this block size.
    pub accesses: u64,
    /// Disk I/Os per cache size (columns follow
    /// [`paper::TABLE_VII_CACHE_KB`]).
    pub disk_ios: Vec<u64>,
}

/// Measured Table VII.
pub struct Table7 {
    /// Rows, one per block size.
    pub rows: Vec<Row>,
}

/// Runs the block-size × cache-size sweep on the A5 trace.
///
/// The block size only changes how the event stream is *consumed*, not
/// how it expands, so the whole grid shares a single expansion.
pub fn run(set: &TraceSet) -> Table7 {
    let trace = &set.a5().out.trace;
    let fidelity = set.fidelity;
    let configs: Vec<CacheConfig> = paper::TABLE_VII_BLOCK_KB
        .iter()
        .flat_map(|&bs_kb| {
            paper::TABLE_VII_CACHE_KB
                .iter()
                .map(move |&cache_kb| CacheConfig {
                    block_size: bs_kb * 1024,
                    cache_bytes: cache_kb * 1024,
                    write_policy: WritePolicy::DelayedWrite,
                    fidelity,
                    ..CacheConfig::default()
                })
        })
        .collect();
    let results = sweep::run(trace, &configs);
    let rows = results
        .chunks(paper::TABLE_VII_CACHE_KB.len())
        .map(|row| Row {
            block_kb: row[0].0.block_size / 1024,
            accesses: row.last().expect("nonempty row").1.logical_accesses(),
            disk_ios: row.iter().map(|(_, m)| m.disk_ios()).collect(),
        })
        .collect();
    Table7 { rows }
}

impl Table7 {
    /// The block size (kbytes) with the fewest disk I/Os for each cache
    /// size column.
    pub fn optimal_block_kb(&self) -> Vec<u64> {
        (0..paper::TABLE_VII_CACHE_KB.len())
            .map(|c| {
                self.rows
                    .iter()
                    .min_by_key(|r| r.disk_ios[c])
                    .map(|r| r.block_kb)
                    .unwrap_or(0)
            })
            .collect()
    }
}

impl fmt::Display for Table7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["Block Size".to_string(), "Accesses".to_string()];
        for &kb in &paper::TABLE_VII_CACHE_KB {
            headers.push(if kb >= 1024 {
                format!("{} MB", kb / 1024)
            } else {
                format!("{kb} KB")
            });
        }
        let hrefs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            "Table VII / Figure 6. Disk I/Os vs block size and cache size (a5, delayed write)",
            &hrefs,
        );
        for r in &self.rows {
            let mut cells = vec![format!("{} KB", r.block_kb), count(r.accesses)];
            cells.extend(r.disk_ios.iter().map(|&io| count(io)));
            t.row(cells);
        }
        let opt = self.optimal_block_kb();
        let opt_s: Vec<String> = opt.iter().map(|kb| format!("{kb}K")).collect();
        let paper_s: Vec<String> = paper::TABLE_VII_OPTIMAL_BLOCK_KB
            .iter()
            .map(|kb| format!("{kb}K"))
            .collect();
        t.note(&format!(
            "Optimal block size per cache: {} (paper: {})",
            opt_s.join(" / "),
            paper_s.join(" / ")
        ));
        t.note("Paper: large blocks help even small caches; for very large blocks");
        t.note("the curves turn up because the cache holds too few blocks.");
        write!(f, "{t}")
    }
}
