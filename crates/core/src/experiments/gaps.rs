//! Section 3.1: intervals between successive trace events for the same
//! open file, which bound when transfers actually happened.

use std::fmt;

use fsanalysis::EventGapAnalysis;

use crate::paper;
use crate::report::{pct, Table};
use crate::TraceSet;

/// Measured event-gap fractions.
pub struct Gaps {
    /// Trace names.
    pub names: Vec<String>,
    /// Gap analyses per trace.
    pub analyses: Vec<EventGapAnalysis>,
}

/// Computes the gap distributions from each entry's shared single-pass
/// analysis.
pub fn run(set: &TraceSet) -> Gaps {
    Gaps {
        names: set.entries.iter().map(|e| e.name.clone()).collect(),
        analyses: set
            .entries
            .iter()
            .map(|e| e.analysis().gaps.clone())
            .collect(),
    }
}

impl fmt::Display for Gaps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["interval".to_string()];
        headers.extend(self.names.iter().cloned());
        headers.push("paper".to_string());
        let hrefs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            "Section 3.1. Intervals between successive events for one open file",
            &hrefs,
        );
        let mut analyses: Vec<EventGapAnalysis> = self.analyses.clone();
        for &(secs, paper_frac) in &paper::EVENT_GAP_FRACTIONS {
            let mut row = vec![format!("< {secs} s")];
            for a in analyses.iter_mut() {
                row.push(pct(a.fraction_le_secs(secs)));
            }
            row.push(pct(paper_frac));
            t.row(row);
        }
        t.note("These bounds justify billing transfers at the next close/seek.");
        write!(f, "{t}")
    }
}
