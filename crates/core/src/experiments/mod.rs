//! Experiment drivers: one module per table or figure of the paper.
//!
//! Every module exposes `run(&TraceSet) -> <Results>` where the results
//! type carries the measured numbers and renders a report (with the
//! paper's published values alongside) via `Display`.

pub mod ablations;
pub mod comparisons;
pub mod fidelity;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig7;
pub mod gaps;
pub mod residency;
pub mod server;
pub mod table1;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
