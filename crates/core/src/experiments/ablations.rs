//! Ablations of the simulator's design choices (DESIGN.md §5): how much
//! each mechanism contributes to the headline cache results.

use std::fmt;

use cachesim::{sweep, CacheConfig, Replacement, RwHandling, WritePolicy};

use crate::report::{pct, Table};
use crate::TraceSet;

/// One ablation variant and its outcome.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Short name of the variant.
    pub name: String,
    /// Disk I/Os under this variant.
    pub disk_ios: u64,
    /// Miss ratio under this variant.
    pub miss_ratio: f64,
}

/// All ablation results (1 MB cache, 4 KB blocks, delayed write unless
/// the variant says otherwise).
pub struct Ablations {
    /// The baseline configuration's result.
    pub baseline: Variant,
    /// The ablated variants.
    pub variants: Vec<Variant>,
}

/// Runs all ablations on the A5 trace.
pub fn run(set: &TraceSet) -> Ablations {
    let trace = &set.a5().out.trace;
    let base = CacheConfig {
        cache_bytes: 1 << 20,
        block_size: 4096,
        write_policy: WritePolicy::DelayedWrite,
        fidelity: set.fidelity,
        ..CacheConfig::default()
    };
    // The sweep engine groups these by expansion key: the first four
    // share the baseline expansion, and each read-write billing variant
    // gets its own (rw_handling changes the event stream itself).
    let variants_spec: Vec<(String, CacheConfig)> = vec![
        ("baseline (LRU, elision, invalidation)".into(), base.clone()),
        (
            "FIFO replacement".into(),
            CacheConfig {
                replacement: Replacement::Fifo,
                ..base.clone()
            },
        ),
        (
            "no whole-block-overwrite elision".into(),
            CacheConfig {
                whole_block_elision: false,
                ..base.clone()
            },
        ),
        (
            "no delete/overwrite invalidation".into(),
            CacheConfig {
                invalidate_on_delete: false,
                ..base.clone()
            },
        ),
        (
            "read-write runs billed as reads".into(),
            CacheConfig {
                rw_handling: RwHandling::Read,
                ..base.clone()
            },
        ),
        (
            "read-write runs billed as both".into(),
            CacheConfig {
                rw_handling: RwHandling::Both,
                ..base.clone()
            },
        ),
    ];
    let configs: Vec<CacheConfig> = variants_spec.iter().map(|(_, c)| c.clone()).collect();
    let results = sweep::run(trace, &configs);
    let mut measured = variants_spec
        .into_iter()
        .zip(results)
        .map(|((name, _), (_, m))| Variant {
            name,
            disk_ios: m.disk_ios(),
            miss_ratio: m.miss_ratio(),
        });
    let baseline = measured.next().expect("baseline present");
    let variants = measured.collect();
    Ablations { baseline, variants }
}

impl fmt::Display for Ablations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Ablations (a5, 1 MB cache, 4 KB blocks, delayed write)",
            &["Variant", "disk I/Os", "miss ratio", "vs baseline"],
        );
        t.row(vec![
            self.baseline.name.clone(),
            self.baseline.disk_ios.to_string(),
            pct(self.baseline.miss_ratio),
            "—".into(),
        ]);
        for v in &self.variants {
            let delta = v.disk_ios as f64 / self.baseline.disk_ios.max(1) as f64 - 1.0;
            t.row(vec![
                v.name.clone(),
                v.disk_ios.to_string(),
                pct(v.miss_ratio),
                format!("{:+.1}%", 100.0 * delta),
            ]);
        }
        t.note("Elision and invalidation are the mechanisms behind the paper's");
        t.note("delayed-write result; LRU-vs-FIFO shows the recency assumption's value.");
        write!(f, "{t}")
    }
}
