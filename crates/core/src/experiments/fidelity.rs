//! Cross-fidelity replay comparison (DESIGN.md §15): the Table VI
//! grid replayed at block, syscall, and open fidelity over the same A5
//! trace, rendering where miss-ratio and disk-I/O conclusions diverge.
//!
//! This is the TraceTracker point (PAPERS.md) made concrete:
//! conclusions drawn at one replay fidelity do not automatically
//! survive at another. Block fidelity is the paper's simulator and the
//! reference column; the table quantifies how far the coarser replays
//! drift and whether the paper's qualitative conclusions (miss ratio
//! falls with cache size, lazier write policies never lose) still hold
//! at each level.

use std::fmt;

use cachesim::{sweep, CacheConfig, Fidelity, WritePolicy};

use crate::paper;
use crate::report::Table;
use crate::TraceSet;

/// One Table VI grid cell measured at every fidelity.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Cache size in kbytes.
    pub cache_kb: u64,
    /// Write policy.
    pub policy: WritePolicy,
    /// Miss ratio per fidelity, indexed like [`Fidelity::ALL`]
    /// (block, syscall, open).
    pub miss: [f64; 3],
    /// Disk I/Os per fidelity, indexed like [`Fidelity::ALL`].
    pub disk_ios: [u64; 3],
}

/// Aggregate replay traffic for one fidelity over the whole grid's
/// baseline column (delayed write, every cache size).
#[derive(Debug, Clone, Copy)]
pub struct Totals {
    /// The fidelity.
    pub fidelity: Fidelity,
    /// Logical block accesses per simulated cell (identical across
    /// cells of one fidelity).
    pub logical_accesses: u64,
    /// Disk reads summed over the delayed-write column.
    pub disk_reads: u64,
    /// Disk writes summed over the delayed-write column.
    pub disk_writes: u64,
}

/// The measured cross-fidelity comparison.
pub struct FidelityCompare {
    /// Cells in Table VI order (sizes × policies).
    pub cells: Vec<Cell>,
    /// Per-fidelity aggregates, indexed like [`Fidelity::ALL`].
    pub totals: [Totals; 3],
}

/// Replays the Table VI grid at all three fidelities in one sweep call:
/// the block-fidelity group stack-profiles as usual while the syscall
/// and open groups (explicit stack fallbacks) replay direct, each from
/// its own shared expansion.
pub fn run(set: &TraceSet) -> FidelityCompare {
    let trace = &set.a5().out.trace;
    let mut configs: Vec<CacheConfig> = Vec::new();
    for fidelity in Fidelity::ALL {
        for &size_kb in paper::TABLE_VI_SIZES_KB.iter() {
            for policy in WritePolicy::TABLE_VI {
                configs.push(CacheConfig {
                    cache_bytes: size_kb * 1024,
                    block_size: 4096,
                    write_policy: policy,
                    fidelity,
                    ..CacheConfig::default()
                });
            }
        }
    }
    let results = sweep::run(trace, &configs);
    let per = paper::TABLE_VI_SIZES_KB.len() * WritePolicy::TABLE_VI.len();
    let planes: Vec<_> = results.chunks(per).collect();
    let cells: Vec<Cell> = (0..per)
        .map(|i| {
            let (cfg, _) = &planes[0][i];
            Cell {
                cache_kb: cfg.cache_bytes / 1024,
                policy: cfg.write_policy,
                miss: [
                    planes[0][i].1.miss_ratio(),
                    planes[1][i].1.miss_ratio(),
                    planes[2][i].1.miss_ratio(),
                ],
                disk_ios: [
                    planes[0][i].1.disk_ios(),
                    planes[1][i].1.disk_ios(),
                    planes[2][i].1.disk_ios(),
                ],
            }
        })
        .collect();
    let totals = std::array::from_fn(|fi| {
        let plane = planes[fi];
        let dw: Vec<_> = plane
            .iter()
            .filter(|(c, _)| c.write_policy == WritePolicy::DelayedWrite)
            .collect();
        Totals {
            fidelity: Fidelity::ALL[fi],
            logical_accesses: plane[0].1.logical_accesses(),
            disk_reads: dw.iter().map(|(_, m)| m.disk_reads).sum(),
            disk_writes: dw.iter().map(|(_, m)| m.disk_writes).sum(),
        }
    });
    FidelityCompare { cells, totals }
}

impl FidelityCompare {
    /// Rows of the grid, one per cache size.
    fn rows(&self) -> impl Iterator<Item = &[Cell]> {
        self.cells.chunks(WritePolicy::TABLE_VI.len())
    }

    /// Counts the paper's shape-conclusion violations at one fidelity
    /// (miss ratio rising with cache size, or rising with a lazier
    /// write policy) — the Table VI `shape_violations` check applied to
    /// fidelity plane `fi`.
    pub fn shape_violations(&self, fi: usize) -> usize {
        let rows: Vec<&[Cell]> = self.rows().collect();
        let mut v = 0;
        for pair in rows.windows(2) {
            for (prev, cur) in pair[0].iter().zip(pair[1]) {
                if cur.miss[fi] > prev.miss[fi] + 1e-9 {
                    v += 1;
                }
            }
        }
        for row in &rows {
            for pair in row.windows(2) {
                if pair[1].miss[fi] > pair[0].miss[fi] + 1e-9 {
                    v += 1;
                }
            }
        }
        v
    }

    /// The largest miss-ratio divergence (in percentage points) of
    /// fidelity plane `fi` from the block-fidelity reference, over the
    /// whole grid.
    pub fn max_divergence_pct(&self, fi: usize) -> f64 {
        self.cells
            .iter()
            .map(|c| 100.0 * (c.miss[fi] - c.miss[0]).abs())
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for FidelityCompare {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Cross-fidelity divergence: miss ratio by replay fidelity (a5, Table VI grid)",
            &[
                "Cache Size",
                "block DW",
                "syscall DW",
                "open DW",
                "max |d| syscall",
                "max |d| open",
            ],
        );
        for row in self.rows() {
            let dw = row
                .iter()
                .find(|c| c.policy == WritePolicy::DelayedWrite)
                .expect("grid has a delayed-write column");
            let maxd = |fi: usize| {
                row.iter()
                    .map(|c| 100.0 * (c.miss[fi] - c.miss[0]).abs())
                    .fold(0.0, f64::max)
            };
            t.row(vec![
                if dw.cache_kb == 390 {
                    "390 KB (UNIX)".to_string()
                } else if dw.cache_kb >= 1024 {
                    format!("{} MB", dw.cache_kb / 1024)
                } else {
                    format!("{} KB", dw.cache_kb)
                },
                format!("{:.1}%", 100.0 * dw.miss[0]),
                format!("{:.1}%", 100.0 * dw.miss[1]),
                format!("{:.1}%", 100.0 * dw.miss[2]),
                format!("{:.2}pp", maxd(1)),
                format!("{:.2}pp", maxd(2)),
            ]);
        }
        t.note("DW columns: delayed-write miss ratio per fidelity; max |d| is the");
        t.note("worst percentage-point drift from block fidelity over all four");
        t.note("write policies at that size. Syscall replay quantizes each op to");
        t.note("block units (partial-overwrite fetches vanish); open replay");
        t.note("collapses each session to one extent from offset 0.");
        writeln!(f, "{t}")?;

        let mut t = Table::new(
            "Replay traffic per fidelity (delayed-write column totals)",
            &[
                "Fidelity",
                "logical accesses",
                "disk reads",
                "disk writes",
                "shape violations",
            ],
        );
        for (fi, tot) in self.totals.iter().enumerate() {
            t.row(vec![
                tot.fidelity.name().to_string(),
                tot.logical_accesses.to_string(),
                tot.disk_reads.to_string(),
                tot.disk_writes.to_string(),
                self.shape_violations(fi).to_string(),
            ]);
        }
        let survive: Vec<&str> = (0..3)
            .filter(|&fi| self.shape_violations(fi) == 0)
            .map(|fi| Fidelity::ALL[fi].name())
            .collect();
        t.note("Shape violations: cells where miss ratio rises with cache size or");
        t.note("with a lazier write policy — the paper's two Table VI conclusions.");
        t.note(&format!(
            "Conclusions survive unviolated at: {}.",
            if survive.is_empty() {
                "none".to_string()
            } else {
                survive.join(", ")
            }
        ));
        t.note(&format!(
            "Worst miss-ratio drift vs block: syscall {:.2}pp, open {:.2}pp.",
            self.max_divergence_pct(1),
            self.max_divergence_pct(2)
        ));
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReproConfig;

    #[test]
    fn grid_covers_all_fidelities_and_diverges_sanely() {
        let set = TraceSet::generate_a5(&ReproConfig {
            hours: 0.05,
            seed: 1,
            ..ReproConfig::default()
        })
        .unwrap();
        let out = run(&set);
        assert_eq!(
            out.cells.len(),
            paper::TABLE_VI_SIZES_KB.len() * WritePolicy::TABLE_VI.len()
        );
        // Block and syscall fidelity touch identical blocks, so their
        // logical traffic matches exactly; open fidelity collapses
        // sessions and may not.
        assert_eq!(
            out.totals[0].logical_accesses,
            out.totals[1].logical_accesses
        );
        for tot in &out.totals {
            assert!(tot.logical_accesses > 0, "{:?}", tot.fidelity);
        }
        // The report renders the divergence table.
        let text = out.to_string();
        assert!(text.contains("Cross-fidelity divergence"));
        assert!(text.contains("Replay traffic per fidelity"));
    }
}
