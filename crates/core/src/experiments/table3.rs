//! Table III: overall statistics for the three traces.

use std::fmt;

use fstrace::{EventKind, TraceSummary};

use crate::report::{count, f1, mbytes, pct, Table};
use crate::TraceSet;

/// Measured Table III: one summary per trace.
pub struct Table3 {
    /// Trace names in column order.
    pub names: Vec<String>,
    /// Summaries in the same order.
    pub summaries: Vec<TraceSummary>,
}

/// Computes the table.
pub fn run(set: &TraceSet) -> Table3 {
    Table3 {
        names: set.entries.iter().map(|e| e.name.clone()).collect(),
        summaries: set.entries.iter().map(|e| e.out.trace.summary()).collect(),
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["Trace"];
        let name_refs: Vec<&str> = self.names.iter().map(String::as_str).collect();
        headers.extend(name_refs);
        let mut t = Table::new("Table III. Overall statistics for the traces", &headers);
        let row = |label: &str, cells: Vec<String>| {
            let mut r = vec![label.to_string()];
            r.extend(cells);
            r
        };
        t.row(row(
            "Duration (hours)",
            self.summaries
                .iter()
                .map(|s| f1(s.duration_hours))
                .collect(),
        ));
        t.row(row(
            "Number of trace records",
            self.summaries.iter().map(|s| count(s.records)).collect(),
        ));
        t.row(row(
            "Size of trace file (Mbytes)",
            self.summaries
                .iter()
                .map(|s| mbytes(s.trace_file_bytes))
                .collect(),
        ));
        t.row(row(
            "Total data transferred (Mbytes)",
            self.summaries
                .iter()
                .map(|s| f1(s.total_mbytes_transferred()))
                .collect(),
        ));
        for kind in EventKind::ALL {
            t.row(row(
                &format!("{} events", kind.name()),
                self.summaries
                    .iter()
                    .map(|s| format!("{} ({})", count(s.count(kind)), pct(s.fraction(kind))))
                    .collect(),
            ));
        }
        t.row(row(
            "opens/sec (peak 10 min)",
            self.summaries
                .iter()
                .map(|s| format!("{:.2}", s.peak_opens_per_second))
                .collect(),
        ));
        t.note("Paper event mix (a5): create 3.8%, open 31.9%, close 35.7%, seek 18.5%,");
        t.note("unlink 3.8%, truncate 0.1%, execve 6.1%; 2-3 files opened/sec at peak.");
        t.note("Synthetic mixes are calibrated to these shares (seeks within a");
        t.note("few percent, creates slightly high); see EXPERIMENTS.md.");
        write!(f, "{t}")
    }
}
