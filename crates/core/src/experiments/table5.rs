//! Table V: sequentiality of file access.

use std::fmt;

use fsanalysis::SequentialityReport;

use crate::paper;
use crate::report::{pct, Table};
use crate::TraceSet;

/// Measured Table V.
pub struct Table5 {
    /// Trace names in column order.
    pub names: Vec<String>,
    /// Reports in the same order.
    pub reports: Vec<SequentialityReport>,
}

/// Computes the table from each entry's shared single-pass analysis.
pub fn run(set: &TraceSet) -> Table5 {
    Table5 {
        names: set.entries.iter().map(|e| e.name.clone()).collect(),
        reports: set
            .entries
            .iter()
            .map(|e| e.analysis().sequentiality.clone())
            .collect(),
    }
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["Measure"];
        headers.extend(self.names.iter().map(String::as_str));
        headers.push("paper (a5/e3/c4)");
        let mut t = Table::new(
            "Table V. Data tends to be transferred sequentially",
            &headers,
        );
        let paper3 = |v: &[f64; 3]| format!("{:.0}/{:.0}/{:.0}%", v[0], v[1], v[2]);
        let mut row = |label: &str, get: &dyn Fn(&SequentialityReport) -> f64, p: String| {
            let mut r = vec![label.to_string()];
            r.extend(self.reports.iter().map(|rep| pct(get(rep))));
            r.push(p);
            t.row(r);
        };
        row(
            "Whole-file reads (% of read-only)",
            &|r| r.read_only.whole_file_fraction(),
            paper3(&paper::TABLE_V_WHOLE_READS_PCT),
        );
        row(
            "Whole-file writes (% of write-only)",
            &|r| r.write_only.whole_file_fraction(),
            paper3(&paper::TABLE_V_WHOLE_WRITES_PCT),
        );
        row(
            "Bytes in whole-file transfers",
            &|r| r.whole_file_bytes_fraction(),
            paper3(&paper::TABLE_V_WHOLE_BYTES_PCT),
        );
        row(
            "Sequential read-only accesses",
            &|r| r.read_only.sequential_fraction(),
            paper3(&paper::TABLE_V_SEQ_RO_PCT),
        );
        row(
            "Sequential write-only accesses",
            &|r| r.write_only.sequential_fraction(),
            paper3(&paper::TABLE_V_SEQ_WO_PCT),
        );
        row(
            "Sequential read-write accesses",
            &|r| r.read_write.sequential_fraction(),
            paper3(&paper::TABLE_V_SEQ_RW_PCT),
        );
        row(
            "Bytes transferred sequentially",
            &|r| r.sequential_bytes_fraction(),
            paper3(&paper::TABLE_V_SEQ_BYTES_PCT),
        );
        t.note("Only files opened for read-write access show significant");
        t.note("non-sequential use (editor temporaries, mailbox status rewrites).");
        write!(f, "{t}")
    }
}
