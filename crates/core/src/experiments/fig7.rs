//! Figure 7: miss ratios with program page-in approximated by a
//! whole-file read of each executed file.

use std::fmt;

use cachesim::{sweep, CacheConfig, WritePolicy};

use crate::chart::{render, Curve};
use crate::report::Table;
use crate::TraceSet;

/// Cache sizes swept, in megabytes.
pub const CACHE_MB: [u64; 5] = [1, 2, 4, 8, 16];

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Cache size (Mbytes).
    pub cache_mb: u64,
    /// Miss ratio ignoring paging.
    pub without_paging: f64,
    /// Miss ratio with simulated paging.
    pub with_paging: f64,
}

/// Measured Figure 7 curves.
pub struct Fig7 {
    /// Sweep points in cache-size order.
    pub points: Vec<Point>,
}

/// Runs the paging comparison on the A5 trace (delayed write, 4 KB).
///
/// Two expansion groups: all the paging-off points share one event
/// vector, all the paging-on points another.
pub fn run(set: &TraceSet) -> Fig7 {
    let trace = &set.a5().out.trace;
    let fidelity = set.fidelity;
    let configs: Vec<CacheConfig> = CACHE_MB
        .iter()
        .flat_map(|&mb| {
            [false, true].into_iter().map(move |paging| CacheConfig {
                cache_bytes: mb << 20,
                block_size: 4096,
                write_policy: WritePolicy::DelayedWrite,
                simulate_paging: paging,
                fidelity,
                ..CacheConfig::default()
            })
        })
        .collect();
    let results = sweep::run(trace, &configs);
    let points = results
        .chunks(2)
        .zip(CACHE_MB)
        .map(|(pair, mb)| Point {
            cache_mb: mb,
            without_paging: pair[0].1.miss_ratio(),
            with_paging: pair[1].1.miss_ratio(),
        })
        .collect();
    Fig7 { points }
}

impl Fig7 {
    /// `true` if paging hurts small caches but converges (or helps) for
    /// large ones — the paper's observation.
    pub fn has_crossover_shape(&self) -> bool {
        let first = &self.points[0];
        let last = self.points.last().expect("nonempty sweep");
        first.with_paging > first.without_paging
            && (last.with_paging - last.without_paging)
                < (first.with_paging - first.without_paging) / 2.0
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Figure 7. Miss ratio with and without simulated page-in (a5, delayed write, 4 KB)",
            &["Cache Size", "Page-in ignored", "Page-in simulated"],
        );
        for p in &self.points {
            t.row(vec![
                format!("{} MB", p.cache_mb),
                format!("{:.1}%", 100.0 * p.without_paging),
                format!("{:.1}%", 100.0 * p.with_paging),
            ]);
        }
        t.note("Paper: simulated paging degrades small caches (bigger working set)");
        t.note("but improves large ones — program accesses are at least as local");
        t.note("as file data, so the file-only miss ratios are upper bounds.");
        writeln!(f, "{t}")?;
        let curves = vec![
            Curve {
                label: "page-in ignored".into(),
                points: self
                    .points
                    .iter()
                    .map(|p| (p.cache_mb as f64, p.without_paging))
                    .collect(),
            },
            Curve {
                label: "page-in simulated".into(),
                points: self
                    .points
                    .iter()
                    .map(|p| (p.cache_mb as f64, p.with_paging))
                    .collect(),
            },
        ];
        write!(
            f,
            "{}",
            render(
                "  Figure 7: miss ratio vs cache size",
                "cache size",
                &curves,
                &|mb| format!("{}MB", mb as u64)
            )
        )
    }
}
