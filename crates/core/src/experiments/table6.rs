//! Table VI / Figure 5: cache miss ratio as a function of cache size
//! and write policy (A5 trace, 4096-byte blocks).

use std::fmt;

use cachesim::{sweep, CacheConfig, WritePolicy};

use crate::chart::{render, Curve};
use crate::paper;
use crate::report::Table;
use crate::TraceSet;

/// One sweep cell.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Cache size in kbytes.
    pub cache_kb: u64,
    /// Write policy.
    pub policy: WritePolicy,
    /// Measured miss ratio in `[0, 1]`.
    pub miss_ratio: f64,
}

/// Measured Table VI: `cells[row][col]` follows the paper's layout.
pub struct Table6 {
    /// Rows of cells: sizes × policies.
    pub cells: Vec<Vec<Cell>>,
}

/// Runs the 6 × 4 sweep on the A5 trace (one shared expansion, all
/// cells simulated in parallel).
pub fn run(set: &TraceSet) -> Table6 {
    let trace = &set.a5().out.trace;
    let fidelity = set.fidelity;
    let configs: Vec<CacheConfig> = paper::TABLE_VI_SIZES_KB
        .iter()
        .flat_map(|&size_kb| {
            WritePolicy::TABLE_VI
                .into_iter()
                .map(move |policy| CacheConfig {
                    cache_bytes: size_kb * 1024,
                    block_size: 4096,
                    write_policy: policy,
                    fidelity,
                    ..CacheConfig::default()
                })
        })
        .collect();
    let results = sweep::run(trace, &configs);
    let cells = results
        .chunks(WritePolicy::TABLE_VI.len())
        .map(|row| {
            row.iter()
                .map(|(cfg, m)| Cell {
                    cache_kb: cfg.cache_bytes / 1024,
                    policy: cfg.write_policy,
                    miss_ratio: m.miss_ratio(),
                })
                .collect()
        })
        .collect();
    Table6 { cells }
}

impl Table6 {
    /// Checks the paper's qualitative claims: monotone improvement with
    /// size and with policy laziness. Returns violations.
    pub fn shape_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for r in 1..self.cells.len() {
            for c in 0..self.cells[r].len() {
                if self.cells[r][c].miss_ratio > self.cells[r - 1][c].miss_ratio + 1e-9 {
                    v.push(format!("miss rose with cache size at row {r} col {c}"));
                }
            }
        }
        for row in &self.cells {
            for c in 1..row.len() {
                if row[c].miss_ratio > row[c - 1].miss_ratio + 1e-9 {
                    v.push(format!(
                        "miss rose with lazier policy at {} KB col {c}",
                        row[0].cache_kb
                    ));
                }
            }
        }
        v
    }
}

impl fmt::Display for Table6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Table VI / Figure 5. Miss ratio vs cache size and write policy (a5, 4 KB blocks)",
            &[
                "Cache Size",
                "Write-Through",
                "30 sec Flush",
                "5 min Flush",
                "Delayed Write",
                "paper (WT/30s/5m/DW)",
            ],
        );
        for (i, row) in self.cells.iter().enumerate() {
            let p = paper::TABLE_VI_MISS_PCT[i];
            let mut cells = vec![if row[0].cache_kb == 390 {
                "390 KB (UNIX)".to_string()
            } else if row[0].cache_kb >= 1024 {
                format!("{} MB", row[0].cache_kb / 1024)
            } else {
                format!("{} KB", row[0].cache_kb)
            }];
            cells.extend(row.iter().map(|c| format!("{:.1}%", 100.0 * c.miss_ratio)));
            cells.push(format!("{}/{}/{}/{}%", p[0], p[1], p[2], p[3]));
            t.row(cells);
        }
        t.note("Paper conclusions reproduced: moderate caches halve disk traffic;");
        t.note("multi-megabyte caches with delayed write eliminate 90%+; policies");
        t.note("order write-through > flush-back > delayed write at every size.");
        writeln!(f, "{t}")?;
        // Figure 5: plot 1 - miss ratio (the "hit" curve rises with
        // cache size, one curve per policy).
        let curves: Vec<Curve> = (0..4)
            .map(|c| Curve {
                label: self.cells[0][c].policy.name(),
                points: self
                    .cells
                    .iter()
                    .map(|row| (row[c].cache_kb as f64, row[c].miss_ratio))
                    .collect(),
            })
            .collect();
        write!(
            f,
            "{}",
            render(
                "  Figure 5: miss ratio vs cache size (lower is better)",
                "cache size",
                &curves,
                &|kb| if kb >= 1024.0 {
                    format!("{}MB", kb as u64 / 1024)
                } else {
                    format!("{}KB", kb as u64)
                }
            )
        )
    }
}
