//! The dedicated-file-server scenario (Section 6's motivation).
//!
//! "For a network filing system with dedicated file servers it seems
//! reasonable to use almost all of the server's memory for disk caches;
//! this could result in caches of eight megabytes or more with today's
//! memory technology, and perhaps 32 or 64 megabytes in a few years."
//!
//! We merge all three machines' traces — the load a shared server would
//! carry — and size its cache.

use std::fmt;
use std::path::Path;

use cachesim::{sweep, CacheConfig, Fidelity, WritePolicy};
use fstrace::{merged_records, Trace, TraceRecord};

use crate::archive;
use crate::chart::{render, Curve};
use crate::report::{pct, Table};
use crate::TraceSet;

/// Server cache sizes swept, in Mbytes (through the paper's "32 or 64
/// megabytes in a few years").
pub const CACHE_MB: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// One server sizing point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Cache size in Mbytes.
    pub cache_mb: u64,
    /// Miss ratio under delayed write.
    pub miss_ratio: f64,
    /// Miss ratio under a 30-second flush-back (the crash-safe choice).
    pub miss_ratio_flush: f64,
}

/// The consolidated-server experiment.
pub struct Server {
    /// Total client machines merged.
    pub clients: usize,
    /// Records in the merged trace.
    pub records: usize,
    /// Distinct users across all machines.
    pub users: u64,
    /// Sweep results.
    pub points: Vec<Point>,
}

/// Merges every generated trace and sweeps the server cache.
///
/// The merge streams: [`merged_records`] yields the k-way merged
/// sequence straight into the sweep, so the combined server trace is
/// never materialized.
pub fn run(set: &TraceSet) -> Server {
    let traces: Vec<&Trace> = set.entries.iter().map(|e| &e.out.trace).collect();
    let records: usize = traces.iter().map(|t| t.len()).sum();
    // The merge offsets each client's ids into a disjoint range, so
    // distinct users across the merged stream sum over the clients.
    let users: u64 = traces
        .iter()
        .map(|t| {
            let mut ids: Vec<u32> = t
                .records()
                .iter()
                .filter_map(|r| r.event.user_id())
                .map(|u| u.0)
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len() as u64
        })
        .sum();
    let configs = server_configs(set.fidelity);
    let results = sweep::run_source(
        || merged_records(&traces).map(|r| r.expect("in-memory merge cannot fail")),
        &configs,
        sweep::default_jobs(),
    );
    Server {
        clients: traces.len(),
        records,
        users,
        points: points_from(&results),
    }
}

/// Archive-backed variant of [`run`]: the merged server trace is
/// persisted to `path` on first use and replayed from it afterwards.
///
/// On a cache miss the streaming merge runs once to build the archive;
/// on a hit the merge is skipped entirely and the archive's chunks are
/// decoded in parallel with `jobs` workers. Either way the sweep sees
/// the identical record sequence, so the report matches [`run`]
/// exactly. A damaged archive is a miss: it is re-merged and
/// rewritten, never partially trusted.
pub fn run_archived(set: &TraceSet, path: &Path, jobs: usize) -> Server {
    let merged: Trace = match archive::load_trace(path, jobs) {
        Some(trace) => {
            eprintln!("  server: merged trace replayed from {}", path.display());
            trace
        }
        None => {
            let traces: Vec<&Trace> = set.entries.iter().map(|e| &e.out.trace).collect();
            let records: Vec<TraceRecord> = merged_records(&traces)
                .map(|r| r.expect("in-memory merge cannot fail"))
                .collect();
            let trace = Trace::from_records(records);
            archive::store_trace(path, "server-merged", &trace);
            eprintln!("  server: merged trace archived to {}", path.display());
            trace
        }
    };
    // Disjoint id remapping makes user ids unique across clients, so
    // counting them on the merged stream equals [`run`]'s per-client
    // sum.
    let mut users: Vec<u32> = merged
        .records()
        .iter()
        .filter_map(|r| r.event.user_id())
        .map(|u| u.0)
        .collect();
    users.sort_unstable();
    users.dedup();
    let configs = server_configs(set.fidelity);
    let results = sweep::run_source(|| merged.records(), &configs, jobs);
    Server {
        clients: set.entries.len(),
        records: merged.len(),
        users: users.len() as u64,
        points: points_from(&results),
    }
}

/// The cache-size × write-policy grid both entry points sweep.
fn server_configs(fidelity: Fidelity) -> Vec<CacheConfig> {
    CACHE_MB
        .iter()
        .flat_map(|&mb| {
            [
                WritePolicy::DelayedWrite,
                WritePolicy::FlushBack {
                    interval_ms: 30_000,
                },
            ]
            .into_iter()
            .map(move |policy| CacheConfig {
                cache_bytes: mb << 20,
                block_size: 4096,
                write_policy: policy,
                fidelity,
                ..CacheConfig::default()
            })
        })
        .collect()
}

fn points_from(results: &[(CacheConfig, cachesim::CacheMetrics)]) -> Vec<Point> {
    results
        .chunks(2)
        .zip(CACHE_MB)
        .map(|(pair, mb)| Point {
            cache_mb: mb,
            miss_ratio: pair[0].1.miss_ratio(),
            miss_ratio_flush: pair[1].1.miss_ratio(),
        })
        .collect()
}

impl Server {
    /// The smallest swept cache reaching a miss ratio at or below
    /// `target` under delayed write, if any.
    pub fn cache_for_miss(&self, target: f64) -> Option<u64> {
        self.points
            .iter()
            .find(|p| p.miss_ratio <= target)
            .map(|p| p.cache_mb)
    }
}

impl fmt::Display for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Dedicated file server: all three machines merged onto one cache",
            &["Server cache", "Delayed write", "30 sec flush"],
        );
        for p in &self.points {
            t.row(vec![
                format!("{} MB", p.cache_mb),
                pct(p.miss_ratio),
                pct(p.miss_ratio_flush),
            ]);
        }
        t.note(&format!(
            "{} client machines, {} users, {} merged records.",
            self.clients, self.users, self.records
        ));
        if let Some(mb) = self.cache_for_miss(0.10) {
            t.note(&format!(
                "A {mb} MB server cache absorbs 90%+ of the combined disk load —"
            ));
            t.note("the paper's 'whole role of magnetic disks comes into question'.");
        }
        writeln!(f, "{t}")?;
        let curves = vec![
            Curve {
                label: "delayed write".into(),
                points: self
                    .points
                    .iter()
                    .map(|p| (p.cache_mb as f64, p.miss_ratio))
                    .collect(),
            },
            Curve {
                label: "30 sec flush".into(),
                points: self
                    .points
                    .iter()
                    .map(|p| (p.cache_mb as f64, p.miss_ratio_flush))
                    .collect(),
            },
        ];
        write!(
            f,
            "{}",
            render(
                "  server miss ratio vs cache size",
                "server cache",
                &curves,
                &|mb| format!("{}MB", mb as u64)
            )
        )
    }
}
