//! Table I: the paper's selected headline results, recomputed.

use std::fmt;

use cachesim::{replay_events, CacheConfig, Simulator, WritePolicy};

use crate::report::Table;
use crate::TraceSet;

/// Headline numbers across the trace set (cache results from A5).
pub struct Table1 {
    /// Range of average bytes/second per active user (10-minute
    /// windows) across traces.
    pub throughput_per_user: (f64, f64),
    /// Fraction of accesses that are whole-file transfers (range).
    pub whole_file_accesses: (f64, f64),
    /// Fraction of bytes moved whole-file (range).
    pub whole_file_bytes: (f64, f64),
    /// Fraction of files open < 0.5 s and < 10 s (ranges collapsed to
    /// the A5 values for brevity).
    pub open_half_sec: f64,
    /// Fraction open under ten seconds.
    pub open_ten_sec: f64,
    /// Fraction of accesses to files under 10 kbytes (A5).
    pub small_file_accesses: f64,
    /// Fraction of new bytes dead within 30 s / 5 min (A5).
    pub bytes_dead_30s: f64,
    /// Fraction of new bytes dead within five minutes.
    pub bytes_dead_5min: f64,
    /// Disk-access elimination at a 4-Mbyte cache: (write-through,
    /// delayed-write), each as a fraction of accesses eliminated.
    pub four_mb_elimination: (f64, f64),
    /// Block size with fewest I/Os at 400 KB and at 4 MB (kbytes).
    pub best_block_kb: (u64, u64),
}

/// Recomputes every Table I line, reusing each entry's shared
/// single-pass analysis for the Section 5 rows.
pub fn run(set: &TraceSet) -> Table1 {
    let mut thpt = Vec::new();
    let mut whole_acc = Vec::new();
    let mut whole_bytes = Vec::new();
    for e in &set.entries {
        let suite = e.analysis();
        thpt.push(suite.activity.windows[0].avg_throughput());
        whole_acc.push(suite.sequentiality.whole_file_fraction());
        whole_bytes.push(suite.sequentiality.whole_file_bytes_fraction());
    }
    let minmax = |v: &[f64]| {
        (
            v.iter().cloned().fold(f64::INFINITY, f64::min),
            v.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        )
    };

    let a5 = &set.a5().out.trace;
    let a5_suite = set.a5().analysis();
    let mut ot = a5_suite.open_times.clone();
    let mut sizes = a5_suite.sizes.clone();
    let mut lt = a5_suite.lifetimes.clone();

    // Cache: 4 MB elimination range across policies.
    let base = CacheConfig {
        cache_bytes: 4 << 20,
        block_size: 4096,
        fidelity: set.fidelity,
        ..CacheConfig::default()
    };
    let events = replay_events(a5, &base);
    let wt = Simulator::run_events(
        &events,
        &CacheConfig {
            write_policy: WritePolicy::WriteThrough,
            ..base.clone()
        },
    )
    .miss_ratio();
    let dw = Simulator::run_events(
        &events,
        &CacheConfig {
            write_policy: WritePolicy::DelayedWrite,
            ..base.clone()
        },
    )
    .miss_ratio();

    // Best block size at 400 KB and 4 MB (delayed write).
    let best_block = |cache_bytes: u64| -> u64 {
        [1u64, 2, 4, 8, 16, 32]
            .into_iter()
            .min_by_key(|&bs| {
                let cfg = CacheConfig {
                    cache_bytes,
                    block_size: bs * 1024,
                    write_policy: WritePolicy::DelayedWrite,
                    fidelity: set.fidelity,
                    ..CacheConfig::default()
                };
                Simulator::run(a5, &cfg).disk_ios()
            })
            .unwrap_or(0)
    };

    Table1 {
        throughput_per_user: minmax(&thpt),
        whole_file_accesses: minmax(&whole_acc),
        whole_file_bytes: minmax(&whole_bytes),
        open_half_sec: ot.fraction_le_secs(0.5),
        open_ten_sec: ot.fraction_le_secs(10.0),
        small_file_accesses: sizes.fraction_of_accesses_le(10 * 1024),
        bytes_dead_30s: lt.fraction_of_bytes_le_secs(30.0),
        bytes_dead_5min: lt.fraction_of_bytes_le_secs(300.0),
        four_mb_elimination: (1.0 - wt, 1.0 - dw),
        best_block_kb: (best_block(400 * 1024), best_block(4 << 20)),
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Table I. Selected results (measured vs paper)",
            &["Result", "measured", "paper"],
        );
        t.row(vec![
            "Bytes/sec per active user (10 min)".into(),
            format!(
                "{:.0}-{:.0}",
                self.throughput_per_user.0, self.throughput_per_user.1
            ),
            "~300-600".into(),
        ]);
        t.row(vec![
            "Whole-file transfers (% of accesses)".into(),
            format!(
                "{:.0}-{:.0}%",
                100.0 * self.whole_file_accesses.0,
                100.0 * self.whole_file_accesses.1
            ),
            "~70%".into(),
        ]);
        t.row(vec![
            "Bytes moved whole-file".into(),
            format!(
                "{:.0}-{:.0}%",
                100.0 * self.whole_file_bytes.0,
                100.0 * self.whole_file_bytes.1
            ),
            "~50%".into(),
        ]);
        t.row(vec![
            "Files open < 0.5 s".into(),
            format!("{:.0}%", 100.0 * self.open_half_sec),
            "75%".into(),
        ]);
        t.row(vec![
            "Files open < 10 s".into(),
            format!("{:.0}%", 100.0 * self.open_ten_sec),
            "90%".into(),
        ]);
        t.row(vec![
            "Accesses to files < 10 KB".into(),
            format!("{:.0}%", 100.0 * self.small_file_accesses),
            "~80%".into(),
        ]);
        t.row(vec![
            "New bytes dead within 30 s".into(),
            format!("{:.0}%", 100.0 * self.bytes_dead_30s),
            "20-30%".into(),
        ]);
        t.row(vec![
            "New bytes dead within 5 min".into(),
            format!("{:.0}%", 100.0 * self.bytes_dead_5min),
            "~50%".into(),
        ]);
        t.row(vec![
            "4 MB cache: disk accesses eliminated".into(),
            format!(
                "{:.0}-{:.0}%",
                100.0 * self.four_mb_elimination.0,
                100.0 * self.four_mb_elimination.1
            ),
            "65-90%".into(),
        ]);
        t.row(vec![
            "Best block size (400 KB / 4 MB cache)".into(),
            format!("{} KB / {} KB", self.best_block_kb.0, self.best_block_kb.1),
            "8 KB / 16 KB".into(),
        ]);
        write!(f, "{t}")
    }
}
