//! Figure 3: distribution of times files were open.

use std::fmt;

use fsanalysis::OpenTimeAnalysis;

use crate::chart::{render, Curve};
use crate::report::{pct, Table};
use crate::TraceSet;

/// Seconds grid matching Figure 3's x-axis.
pub const GRID_SECS: [f64; 8] = [0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0];

/// Measured Figure 3 curves.
pub struct Fig3 {
    /// Trace names.
    pub names: Vec<String>,
    /// Open-time analyses per trace.
    pub analyses: Vec<OpenTimeAnalysis>,
}

/// Computes the curves from each entry's shared single-pass analysis.
pub fn run(set: &TraceSet) -> Fig3 {
    Fig3 {
        names: set.entries.iter().map(|e| e.name.clone()).collect(),
        analyses: set
            .entries
            .iter()
            .map(|e| e.analysis().open_times.clone())
            .collect(),
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["open time".to_string()];
        headers.extend(self.names.iter().cloned());
        let hrefs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new("Figure 3. Cumulative % of files vs open time", &hrefs);
        let mut analyses: Vec<OpenTimeAnalysis> = self.analyses.clone();
        for &g in &GRID_SECS {
            let mut row = vec![format!("{g} s")];
            for a in analyses.iter_mut() {
                row.push(pct(a.fraction_le_secs(g)));
            }
            t.row(row);
        }
        t.note("Paper: ~70-80% of files are open less than 0.5 second, ~90% less");
        t.note("than 10 seconds; editor temporaries form the long tail.");
        writeln!(f, "{t}")?;
        let curves: Vec<Curve> = self
            .names
            .iter()
            .zip(analyses.iter_mut())
            .map(|(name, a)| Curve {
                label: name.clone(),
                points: GRID_SECS
                    .iter()
                    .map(|&g| (g, a.fraction_le_secs(g)))
                    .collect(),
            })
            .collect();
        write!(
            f,
            "{}",
            render(
                "  cumulative % of files vs open time",
                "open time (s)",
                &curves,
                &|x| { format!("{x}s") }
            )
        )
    }
}
