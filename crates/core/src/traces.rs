//! Standard trace generation shared by every experiment.

use std::path::Path;
use std::sync::OnceLock;

use bsdfs::{Fs, FsResult};
use cachesim::Fidelity;
use fsanalysis::{run_analyzers, AnalysisSuite};
use workload::{generate, GeneratedTrace, MachineProfile, WorkloadConfig};

use crate::archive;

/// Reproduction parameters: how much simulated time to trace, and the
/// master seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReproConfig {
    /// Simulated hours per trace (the paper traced 2–3 days; one to a
    /// few simulated hours at peak-hour intensity gives stable shapes).
    pub hours: f64,
    /// Master random seed.
    pub seed: u64,
    /// Replay fidelity for the Section 6 cache simulations
    /// (`repro --fidelity`); block is the paper's simulator. Section 5
    /// analyses are fidelity-invariant and ignore this.
    pub fidelity: Fidelity,
}

impl Default for ReproConfig {
    fn default() -> Self {
        ReproConfig {
            hours: 1.0,
            seed: 1985,
            fidelity: Fidelity::Block,
        }
    }
}

/// One generated trace with its name ("a5", "e3", "c4").
pub struct TraceEntry {
    /// Trace name as used in the paper's tables.
    pub name: String,
    /// Machine name ("Ucbarpa" …).
    pub machine: String,
    /// The generated trace and file system.
    pub out: GeneratedTrace,
    analysis: OnceLock<AnalysisSuite>,
}

impl TraceEntry {
    /// Activity window lengths shared by every consumer: 600 s for the
    /// paper's ten-minute intervals, 10 s for bursts.
    pub const WINDOW_SECS: [u64; 2] = [600, 10];

    /// Every Section 5 analysis of this trace, computed together in one
    /// streaming pass the first time any experiment asks, then shared.
    pub fn analysis(&self) -> &AnalysisSuite {
        self.analysis
            .get_or_init(|| run_analyzers(self.out.trace.records(), &Self::WINDOW_SECS))
    }
}

/// The three traces of the paper, regenerated.
pub struct TraceSet {
    /// Entries in paper order: a5, e3, c4.
    pub entries: Vec<TraceEntry>,
    /// Replay fidelity the cache experiments should simulate at
    /// (carried from [`ReproConfig::fidelity`]).
    pub fidelity: Fidelity,
}

impl TraceSet {
    /// Generates all three traces.
    pub fn generate(config: &ReproConfig) -> FsResult<Self> {
        let mut entries = Vec::new();
        for profile in MachineProfile::all() {
            let name = profile.trace_name.to_string();
            let machine = profile.name.to_string();
            let out = generate(&WorkloadConfig {
                profile,
                seed: config.seed,
                duration_hours: config.hours,
                ..WorkloadConfig::default()
            })?;
            entries.push(TraceEntry {
                name,
                machine,
                out,
                analysis: OnceLock::new(),
            });
        }
        Ok(TraceSet {
            entries,
            fidelity: config.fidelity,
        })
    }

    /// Generates only the A5 trace (the Section 6 simulations use A5
    /// alone: "only the results from the A5 trace are reported").
    pub fn generate_a5(config: &ReproConfig) -> FsResult<Self> {
        let profile = MachineProfile::ucbarpa();
        let name = profile.trace_name.to_string();
        let machine = profile.name.to_string();
        let out = generate(&WorkloadConfig {
            profile,
            seed: config.seed,
            duration_hours: config.hours,
            ..WorkloadConfig::default()
        })?;
        Ok(TraceSet {
            entries: vec![TraceEntry {
                name,
                machine,
                out,
                analysis: OnceLock::new(),
            }],
            fidelity: config.fidelity,
        })
    }

    /// The A5 entry.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty (cannot happen for generated sets).
    pub fn a5(&self) -> &TraceEntry {
        &self.entries[0]
    }

    /// Like [`TraceSet::generate`], but backed by a `tracestore`
    /// archive cache under `dir`: a trace whose archive is present and
    /// intact is replayed (chunk-parallel) instead of regenerated, and
    /// fresh generations are archived for the next run.
    ///
    /// A replayed entry carries a pristine file system — the workload
    /// never ran, so there is no cache state to report. The `compare`
    /// experiment needs that state and must use [`TraceSet::generate`];
    /// `repro` enforces this.
    pub fn generate_cached(config: &ReproConfig, dir: &Path, jobs: usize) -> FsResult<Self> {
        let mut entries = Vec::new();
        for profile in MachineProfile::all() {
            entries.push(Self::entry_cached(profile, config, dir, jobs)?);
        }
        Ok(TraceSet {
            entries,
            fidelity: config.fidelity,
        })
    }

    /// Archive-cached counterpart of [`TraceSet::generate_a5`].
    pub fn generate_a5_cached(config: &ReproConfig, dir: &Path, jobs: usize) -> FsResult<Self> {
        Ok(TraceSet {
            entries: vec![Self::entry_cached(
                MachineProfile::ucbarpa(),
                config,
                dir,
                jobs,
            )?],
            fidelity: config.fidelity,
        })
    }

    fn entry_cached(
        profile: MachineProfile,
        config: &ReproConfig,
        dir: &Path,
        jobs: usize,
    ) -> FsResult<TraceEntry> {
        let name = profile.trace_name.to_string();
        let machine = profile.name.to_string();
        let path = archive::trace_path(dir, &name, config);
        let workload_config = WorkloadConfig {
            profile,
            seed: config.seed,
            duration_hours: config.hours,
            ..WorkloadConfig::default()
        };
        let out = match archive::load_trace(&path, jobs) {
            Some(trace) => {
                eprintln!("  {name}: replayed from {}", path.display());
                GeneratedTrace {
                    trace,
                    fs: Fs::new(workload_config.fs_params.clone())?,
                    errors: 0,
                }
            }
            None => {
                let out = generate(&workload_config)?;
                archive::store_trace(&path, &name, &out.trace);
                out
            }
        };
        Ok(TraceEntry {
            name,
            machine,
            out,
            analysis: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_three_named_traces() {
        let set = TraceSet::generate(&ReproConfig {
            hours: 0.05,
            seed: 1,
            ..ReproConfig::default()
        })
        .unwrap();
        let names: Vec<&str> = set.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a5", "e3", "c4"]);
        assert!(set.entries.iter().all(|e| !e.out.trace.is_empty()));
    }

    #[test]
    fn a5_only_generation() {
        let set = TraceSet::generate_a5(&ReproConfig {
            hours: 0.05,
            seed: 1,
            ..ReproConfig::default()
        })
        .unwrap();
        assert_eq!(set.entries.len(), 1);
        assert_eq!(set.a5().name, "a5");
        assert_eq!(set.a5().machine, "Ucbarpa");
    }
}
