//! ASCII rendering of cumulative-distribution figures.
//!
//! The paper's Figures 1–5 and 7 are cumulative curves; this module
//! draws them as fixed-width ASCII charts so `repro` output shows the
//! *shape*, not just the sampled grid.

use std::fmt::Write as _;

/// A named curve: (x, cumulative fraction in `[0, 1]`) points.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Legend label.
    pub label: String,
    /// Points in increasing-x order.
    pub points: Vec<(f64, f64)>,
}

/// Renders one or more cumulative curves into an ASCII chart.
///
/// The x-axis is plotted on the rank of the supplied grid points (the
/// paper's figures use mixed linear scales; rank spacing keeps every
/// gridline visible). The y-axis is percent.
///
/// # Examples
///
/// ```
/// use bsdtrace::chart::{render, Curve};
///
/// let c = Curve {
///     label: "a5".into(),
///     points: vec![(1.0, 0.1), (2.0, 0.6), (3.0, 0.9)],
/// };
/// let s = render("Demo", "seconds", &[c], &|x| format!("{x}"));
/// assert!(s.contains("Demo"));
/// assert!(s.contains("100%"));
/// ```
pub fn render(
    title: &str,
    x_name: &str,
    curves: &[Curve],
    fmt_x: &dyn Fn(f64) -> String,
) -> String {
    const HEIGHT: usize = 12; // Rows between 0% and 100%.
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if curves.is_empty() || curves[0].points.is_empty() {
        let _ = writeln!(out, "  (no data)");
        return out;
    }
    let n = curves[0].points.len();
    let width = n * 6;
    let marks = ['*', 'o', '+', 'x', '#'];
    // Grid of characters.
    let mut grid = vec![vec![' '; width]; HEIGHT + 1];
    for (ci, curve) in curves.iter().enumerate() {
        let mark = marks[ci % marks.len()];
        for (i, &(_, y)) in curve.points.iter().enumerate().take(n) {
            let col = i * 6 + 3;
            let row = ((1.0 - y.clamp(0.0, 1.0)) * HEIGHT as f64).round() as usize;
            let row = row.min(HEIGHT);
            if grid[row][col] == ' ' || grid[row][col] == mark {
                grid[row][col] = mark;
            } else {
                grid[row][col] = '@'; // Curves overlap here.
            }
        }
    }
    for (r, rowline) in grid.iter().enumerate() {
        let pct = 100.0 * (1.0 - r as f64 / HEIGHT as f64);
        let line: String = rowline.iter().collect();
        let _ = writeln!(out, "{pct:>4.0}% |{}", line.trim_end());
    }
    let _ = writeln!(out, "      +{}", "-".repeat(width));
    // X labels, one per grid point, staggered over two lines.
    let mut l1 = String::new();
    let mut l2 = String::new();
    for (i, &(x, _)) in curves[0].points.iter().enumerate().take(n) {
        let label = fmt_x(x);
        let target = if i % 2 == 0 { &mut l1 } else { &mut l2 };
        while target.len() < i * 6 {
            target.push(' ');
        }
        let _ = write!(target, "{label:<6}");
    }
    let _ = writeln!(out, "       {l1}");
    if !l2.trim().is_empty() {
        let _ = writeln!(out, "       {l2}");
    }
    let legend: Vec<String> = curves
        .iter()
        .enumerate()
        .map(|(i, c)| format!("{} = {}", marks[i % marks.len()], c.label))
        .collect();
    let _ = writeln!(
        out,
        "       {x_name}   [{}; @ = overlap]",
        legend.join(", ")
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(label: &str, ys: &[f64]) -> Curve {
        Curve {
            label: label.into(),
            points: ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect(),
        }
    }

    #[test]
    fn renders_monotone_curve() {
        let s = render(
            "T",
            "x",
            &[curve("a", &[0.0, 0.25, 0.5, 0.75, 1.0])],
            &|x| format!("{x:.0}"),
        );
        assert!(s.contains("100% |"));
        assert!(s.contains("   0% |"));
        assert!(s.contains("* = a"));
        // The 100% row carries the final point's mark.
        let top = s.lines().find(|l| l.starts_with(" 100%")).unwrap();
        assert!(top.contains('*'));
    }

    #[test]
    fn overlapping_curves_marked() {
        let a = curve("a", &[0.5, 0.5]);
        let b = curve("b", &[0.5, 1.0]);
        let s = render("T", "x", &[a, b], &|x| format!("{x:.0}"));
        assert!(s.contains('@'), "overlap marker missing:\n{s}");
        assert!(s.contains("o = b"));
    }

    #[test]
    fn empty_input_is_safe() {
        let s = render("T", "x", &[], &|x| format!("{x}"));
        assert!(s.contains("no data"));
    }
}
