//! `fleetbench`: measure the fleet generator's parallel speedup and
//! verify its schedule independence.
//!
//! ```text
//! fleetbench [--machines N] [--hours H] [--seed S] [--jobs N]
//!            [--user-scale F] [--epoch-ms MS] [--json]
//! ```
//!
//! Runs the same N-machine fleet twice — once with a single worker
//! thread, once with `--jobs` workers — and checks the two merged
//! traces are **byte-identical** (the fleet's load-bearing determinism
//! property) before reporting records/s for each and the speedup.
//! ci.sh gates on the artifact: identity always, and a core-count-
//! adaptive speedup floor (threads cannot beat physics on one core).

use std::time::Instant;

use fstrace::{RecordSink, TraceRecord, TraceWriter};
use workload::{generate_fleet_into, FleetConfig, FleetStats};

/// Materializes the merged stream and its canonical binary encoding,
/// so identity can be asserted at the byte level, not just record
/// equality.
struct ByteSink {
    records: Vec<TraceRecord>,
    writer: TraceWriter<Vec<u8>>,
}

impl ByteSink {
    fn new() -> Self {
        ByteSink {
            records: Vec::new(),
            writer: TraceWriter::new(Vec::new()).expect("vec write"),
        }
    }
}

impl RecordSink for ByteSink {
    fn write_record(&mut self, rec: &TraceRecord) -> std::io::Result<()> {
        self.records.push(*rec);
        self.writer.write_record(rec)
    }
}

fn run(config: &FleetConfig) -> (FleetStats, Vec<TraceRecord>, Vec<u8>, f64) {
    let mut sink = ByteSink::new();
    let started = Instant::now();
    let stats =
        generate_fleet_into(config, &mut sink).unwrap_or_else(|e| die(&format!("generate: {e}")));
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let bytes = sink.writer.into_inner().expect("vec flush");
    (stats, sink.records, bytes, wall_ms)
}

/// Peak resident set size in kbytes (`VmHWM` from `/proc/self/status`),
/// or 0 where unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let mut machines = 8usize;
    let mut hours = 0.1f64;
    let mut seed = 1985u64;
    let mut jobs = 0usize; // 0: pick from the core count.
    let mut user_scale = 0.5f64;
    let mut epoch_ms = 60_000u64;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--machines" => {
                machines = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--machines needs a positive integer"))
            }
            "--hours" => {
                hours = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--hours needs a number"))
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"))
            }
            "--jobs" | "-j" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--jobs needs a positive integer"))
            }
            "--user-scale" => {
                user_scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s: &f64| s > 0.0)
                    .unwrap_or_else(|| die("--user-scale needs a positive number"))
            }
            "--epoch-ms" => {
                epoch_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--epoch-ms needs a positive integer"))
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: fleetbench [--machines N] [--hours H] [--seed S] [--jobs N]\n\
                     \x20      [--user-scale F] [--epoch-ms MS] [--json]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if jobs == 0 {
        jobs = cores.clamp(1, machines);
    }

    let base = FleetConfig {
        machines,
        seed,
        duration_hours: hours,
        user_scale,
        epoch_ms,
        jobs: 1,
        ..FleetConfig::default()
    };
    let (stats1, recs1, bytes1, serial_ms) = run(&base);
    let par = FleetConfig { jobs, ..base };
    let (stats_n, recs_n, bytes_n, par_ms) = run(&par);

    let identical = recs1 == recs_n && bytes1 == bytes_n;
    let records = stats_n.records;
    let serial_rps = records as f64 / (serial_ms / 1e3);
    let par_rps = records as f64 / (par_ms / 1e3);
    let speedup = serial_ms / par_ms;
    let rss = peak_rss_kb();

    if json {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"machines\": {machines},\n"));
        out.push_str(&format!("  \"jobs\": {jobs},\n"));
        out.push_str(&format!("  \"cores\": {cores},\n"));
        out.push_str(&format!("  \"hours\": {hours},\n"));
        out.push_str(&format!("  \"seed\": {seed},\n"));
        out.push_str(&format!("  \"records\": {records},\n"));
        out.push_str(&format!("  \"identical\": {identical},\n"));
        out.push_str(&format!("  \"serial_wall_ms\": {serial_ms:.1},\n"));
        out.push_str(&format!("  \"parallel_wall_ms\": {par_ms:.1},\n"));
        out.push_str(&format!("  \"serial_records_s\": {serial_rps:.0},\n"));
        out.push_str(&format!("  \"parallel_records_s\": {par_rps:.0},\n"));
        out.push_str(&format!("  \"speedup\": {speedup:.2},\n"));
        out.push_str(&format!(
            "  \"merge_buffered_peak\": {},\n",
            stats_n.merge_buffered_peak
        ));
        out.push_str(&format!(
            "  \"ring_occupancy_peak\": {},\n",
            stats_n.ring_occupancy_peak
        ));
        out.push_str(&format!(
            "  \"merge_lag_ms_peak\": {},\n",
            stats_n.merge_lag_ms_peak
        ));
        out.push_str(&format!("  \"errors\": {},\n", stats_n.total_errors()));
        out.push_str(&format!("  \"peak_rss_kb\": {rss}\n"));
        out.push('}');
        println!("{out}");
    } else {
        println!(
            "fleet: {machines} machines x {hours} h (seed {seed}), {jobs} jobs on {cores} cores"
        );
        print!("{}", stats_n.render_table());
        println!("  identical: {identical}");
        println!("  serial:   {serial_ms:.1} ms ({serial_rps:.0} records/s)");
        println!("  parallel: {par_ms:.1} ms ({par_rps:.0} records/s)");
        println!("  speedup:  {speedup:.2}x");
        println!("  merge_buffered_peak: {}", stats_n.merge_buffered_peak);
        println!("  ring_occupancy_peak: {}", stats_n.ring_occupancy_peak);
        println!("  merge_lag_ms_peak: {}", stats_n.merge_lag_ms_peak);
        println!("  peak_rss_kb: {rss}");
    }
    let _ = stats1;
    if !identical {
        die("jobs=1 and jobs=N produced different traces");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("fleetbench: {msg}");
    std::process::exit(1);
}
