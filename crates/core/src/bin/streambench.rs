//! `streambench`: measure the memory and time footprint of the
//! materialized pipeline against the streaming one.
//!
//! ```text
//! streambench [--mode materialized|streaming] [--hours H] [--seed S] [--json]
//! ```
//!
//! Both modes run the identical workload (the a5 profile), compute
//! every Section 5 analysis, and replay the records against the default
//! cache configuration. The **materialized** mode is the classic
//! three-stage shape — generate the whole trace, then analyze it, then
//! replay it. The **streaming** mode pipes the generator's records
//! straight into the analyzers and the cache replayer
//! ([`workload::generate_into`]), so no stage ever holds the trace.
//!
//! Both modes print the same analysis/replay digests (they are
//! bit-identical by construction); the interesting outputs are
//! `peak_rss_kb` (VmHWM from `/proc/self/status`) and `wall_ms`. ci.sh
//! runs the streaming mode under a hard `ulimit -v` as the
//! bounded-memory regression check.

use std::io;
use std::time::Instant;

use cachesim::{CacheConfig, CacheMetrics, EventExpander, Replayer, Simulator};
use fsanalysis::{run_analyzers, AnalysisStream, AnalysisSuite};
use fstrace::{RecordSink, TraceRecord};
use workload::{generate, generate_into, MachineProfile, WorkloadConfig};

/// The shared activity windows (600 s / 10 s, as in the paper).
const WINDOWS: [u64; 2] = [600, 10];

struct BenchResult {
    records: u64,
    suite: AnalysisSuite,
    metrics: CacheMetrics,
}

/// Generator → analyzers → cache replay, record by record.
struct PipelineSink {
    records: u64,
    analysis: AnalysisStream,
    expander: EventExpander,
    replayer: Replayer,
}

impl RecordSink for PipelineSink {
    fn write_record(&mut self, rec: &TraceRecord) -> io::Result<()> {
        self.records += 1;
        self.analysis.observe(rec);
        let replayer = &mut self.replayer;
        self.expander.feed(rec, &mut |ev| replayer.step(&ev));
        Ok(())
    }
}

fn run_materialized(config: &WorkloadConfig, cache: &CacheConfig) -> BenchResult {
    let out = generate(config).unwrap_or_else(|e| die(&format!("generate: {e}")));
    let suite = run_analyzers(out.trace.records(), &WINDOWS);
    let metrics = Simulator::run(&out.trace, cache);
    BenchResult {
        records: out.trace.len() as u64,
        suite,
        metrics,
    }
}

fn run_streaming(config: &WorkloadConfig, cache: &CacheConfig) -> BenchResult {
    let mut sink = PipelineSink {
        records: 0,
        analysis: AnalysisStream::new(&WINDOWS),
        expander: EventExpander::new(cache),
        replayer: Replayer::new(cache),
    };
    generate_into(config, &mut sink).unwrap_or_else(|e| die(&format!("generate: {e}")));
    BenchResult {
        records: sink.records,
        suite: sink.analysis.finish(),
        metrics: sink.replayer.finish(),
    }
}

/// Peak resident set size in kbytes (`VmHWM` from `/proc/self/status`),
/// or 0 where unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let mut mode = "streaming".to_string();
    let mut hours = 1.0f64;
    let mut seed = 1985u64;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--mode" => {
                mode = args.next().unwrap_or_else(|| die("--mode needs a value"));
                if mode != "materialized" && mode != "streaming" {
                    die("--mode must be materialized or streaming");
                }
            }
            "--hours" => {
                hours = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--hours needs a number"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: streambench [--mode materialized|streaming] [--hours H] [--seed S] [--json]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }

    let config = WorkloadConfig {
        profile: MachineProfile::ucbarpa(),
        seed,
        duration_hours: hours,
        ..WorkloadConfig::default()
    };
    let cache = CacheConfig::default();
    let started = Instant::now();
    let result = if mode == "materialized" {
        run_materialized(&config, &cache)
    } else {
        run_streaming(&config, &cache)
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let rss = peak_rss_kb();
    let snap = obs::global().snapshot();
    let buffered_peak = snap
        .gauge("fstrace.pipeline.buffered_records_peak")
        .unwrap_or(0);
    let live_peak = snap.gauge("workload.live_sessions_peak").unwrap_or(0);

    let mut suite = result.suite;
    let digest = [
        ("records", result.records as f64),
        ("total_bytes", suite.activity.total_bytes as f64),
        (
            "whole_file_fraction",
            suite.sequentiality.whole_file_fraction(),
        ),
        ("open_le_10s", suite.open_times.fraction_le_secs(10.0)),
        ("miss_ratio", result.metrics.miss_ratio()),
        ("disk_reads", result.metrics.disk_reads as f64),
        ("disk_writes", result.metrics.disk_writes as f64),
    ];
    if json {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
        out.push_str(&format!("  \"hours\": {hours},\n"));
        out.push_str(&format!("  \"seed\": {seed},\n"));
        for (k, v) in digest {
            out.push_str(&format!("  \"{k}\": {v},\n"));
        }
        out.push_str(&format!("  \"buffered_records_peak\": {buffered_peak},\n"));
        out.push_str(&format!("  \"live_sessions_peak\": {live_peak},\n"));
        out.push_str(&format!("  \"wall_ms\": {wall_ms:.1},\n"));
        out.push_str(&format!("  \"peak_rss_kb\": {rss}\n"));
        out.push('}');
        println!("{out}");
    } else {
        println!("mode: {mode} ({hours} h, seed {seed})");
        for (k, v) in digest {
            println!("  {k}: {v}");
        }
        println!("  buffered_records_peak: {buffered_peak}");
        println!("  live_sessions_peak: {live_peak}");
        println!("  wall_ms: {wall_ms:.1}");
        println!("  peak_rss_kb: {rss}");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("streambench: {msg}");
    std::process::exit(1);
}
