//! `archivebench`: throughput, parallel-decode speedup, and recovery
//! checks for the `tracestore` archive layer.
//!
//! ```text
//! archivebench [--hours H] [--seed S] [--jobs N] [--chunk-kib K] [--json]
//! ```
//!
//! Generates one a5-profile trace, packs it into an in-memory archive,
//! and measures:
//!
//! * pack and unpack throughput (raw trace Mbytes per second) and the
//!   achieved compression ratio;
//! * single-threaded vs `--jobs`-way chunk-parallel decode time
//!   (best of five passes each after one untimed warm-up, so cold
//!   caches and scheduler noise cannot fake a regression) and the
//!   resulting speedup;
//! * scalar (record-at-a-time) vs columnar batched decode records/s
//!   over an uncompressed archive — the replay-hot-path comparison —
//!   plus end-to-end replay records/s through the batched pipeline;
//! * that a Table VI sweep over archive-decoded records is
//!   bit-identical to the same sweep over the in-memory trace;
//! * that flipping one byte in a mid-file chunk loses exactly that
//!   chunk: one chunk skipped, its record count lost, every other
//!   record recovered.
//!
//! ci.sh runs this as the archive smoke/perf gate (`BENCH_5.json`,
//! `BENCH_6.json`, `BENCH_archive_smoke.json`). The
//! `identical`/`recovery_ok` fields gate correctness on every machine;
//! the speedup fields are gated only where enough cores exist for the
//! timing to be stable (see the `cores` field and the ci.sh comments).

use std::time::Instant;

use cachesim::{sweep, CacheConfig, WritePolicy};
use tracestore::{Archive, ArchiveOptions, ArchiveWriter};
use workload::{generate, MachineProfile, WorkloadConfig};

/// Table VI cache sizes in kbytes (390 KB UNIX baseline to 16 MB).
const SIZES_KB: [u64; 6] = [390, 1024, 2048, 4096, 8192, 16_384];

fn grid() -> Vec<CacheConfig> {
    SIZES_KB
        .iter()
        .flat_map(|&size_kb| {
            WritePolicy::TABLE_VI
                .into_iter()
                .map(move |policy| CacheConfig {
                    cache_bytes: size_kb * 1024,
                    block_size: 4096,
                    write_policy: policy,
                    ..CacheConfig::default()
                })
        })
        .collect()
}

/// Untimed warm-up passes before each timed measurement, so cold
/// caches, lazy page faults, and first-touch allocation never count
/// against the first timed iteration. Reported as `warmup_runs` in
/// the JSON output so downstream gates know the policy.
const WARMUP_RUNS: usize = 1;

/// Best-of-`n` wall-clock time of `f` in milliseconds, after
/// [`WARMUP_RUNS`] untimed warm-up passes.
fn best_ms<T>(n: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    for _ in 0..WARMUP_RUNS {
        std::hint::black_box(f());
    }
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..n {
        let started = Instant::now();
        let v = f();
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (best, out.expect("n >= 1"))
}

fn main() {
    let mut hours = 0.25f64;
    let mut seed = 1985u64;
    let mut jobs = 4usize;
    let mut chunk_kib = 8usize;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--hours" => {
                hours = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--hours needs a number"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--jobs needs a positive integer"));
            }
            "--chunk-kib" => {
                chunk_kib = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&k| k >= 1)
                    .unwrap_or_else(|| die("--chunk-kib needs a positive integer"));
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: archivebench [--hours H] [--seed S] [--jobs N] [--chunk-kib K] [--json]");
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }

    let out = generate(&WorkloadConfig {
        profile: MachineProfile::ucbarpa(),
        seed,
        duration_hours: hours,
        ..WorkloadConfig::default()
    })
    .unwrap_or_else(|e| die(&format!("generate: {e}")));
    let trace = &out.trace;
    let raw_bytes = trace.to_binary().len() as u64;

    let opts = ArchiveOptions {
        chunk_target_bytes: chunk_kib << 10,
        compress: true,
        name: "a5".into(),
    };
    // Pack (best of 5): raw records -> framed, checksummed, compressed
    // archive bytes.
    let (pack_ms, bytes) = best_ms(5, || {
        let mut w = ArchiveWriter::new(Vec::new(), opts.clone())
            .unwrap_or_else(|e| die(&format!("archive header: {e}")));
        for rec in trace.records() {
            w.write(rec)
                .unwrap_or_else(|e| die(&format!("archive write: {e}")));
        }
        w.finish()
            .unwrap_or_else(|e| die(&format!("archive finish: {e}")))
            .0
    });
    let archive = Archive::from_bytes(bytes.clone())
        .unwrap_or_else(|e| die(&format!("reopen packed archive: {e}")));
    let chunks = archive.chunks().len();
    let stored: u64 = archive.chunks().iter().map(|c| c.stored_len as u64).sum();
    let raw_payload: u64 = archive.chunks().iter().map(|c| c.raw_len as u64).sum();
    let compression = obs::ratio(raw_payload, stored);

    // Decode: single-threaded vs chunk-parallel, best of 5 each.
    let (decode1_ms, (seq_records, seq_report)) = best_ms(5, || archive.read_all());
    let (decode_par_ms, (par_records, par_report)) = best_ms(5, || archive.decode_parallel(jobs));
    if !seq_report.is_clean() || !par_report.is_clean() {
        die("fresh archive failed verification");
    }
    if par_records != seq_records || seq_records.len() != trace.len() {
        die("archive decode diverged from the written trace");
    }
    let par_speedup = decode1_ms / decode_par_ms.max(1e-9);
    let mb = raw_bytes as f64 / (1 << 20) as f64;
    let pack_mb_s = mb / (pack_ms / 1e3).max(1e-9);
    let unpack_mb_s = mb / (decode1_ms / 1e3).max(1e-9);

    // Columnar decode: scalar record-at-a-time vs batched RecordBlock
    // decode, over an *uncompressed* archive so varint decode itself is
    // measured rather than LZ77. Best of five passes each.
    let plain_opts = ArchiveOptions {
        chunk_target_bytes: chunk_kib << 10,
        compress: false,
        name: "a5".into(),
    };
    let mut w = ArchiveWriter::new(Vec::new(), plain_opts)
        .unwrap_or_else(|e| die(&format!("plain archive header: {e}")));
    for rec in trace.records() {
        w.write(rec)
            .unwrap_or_else(|e| die(&format!("plain archive write: {e}")));
    }
    let plain_bytes = w
        .finish()
        .unwrap_or_else(|e| die(&format!("plain archive finish: {e}")))
        .0;
    let plain = Archive::from_bytes(plain_bytes)
        .unwrap_or_else(|e| die(&format!("reopen plain archive: {e}")));
    let (scalar_ms, scalar_count) = best_ms(5, || {
        let (records, report) = plain.read_all_scalar();
        if !report.is_clean() {
            die("plain archive failed scalar verification");
        }
        std::hint::black_box(records.len())
    });
    let (block_ms, block_count) = best_ms(5, || {
        // One block reused across every chunk: the steady-state batched
        // reader allocates nothing after the first chunk.
        let mut block = fstrace::RecordBlock::new();
        let mut n = 0usize;
        for i in 0..plain.chunks().len() {
            plain
                .decode_chunk_into(i, &mut block)
                .unwrap_or_else(|e| die(&format!("batched decode of chunk {i}: {e}")));
            n += std::hint::black_box(&block).len();
        }
        n
    });
    if scalar_count != trace.len() || block_count != trace.len() {
        die("columnar decode record counts diverged from the trace");
    }
    let decode_scalar_rps = trace.len() as f64 / (scalar_ms / 1e3).max(1e-9);
    let decode_block_rps = trace.len() as f64 / (block_ms / 1e3).max(1e-9);
    let decode_speedup = scalar_ms / block_ms.max(1e-9);

    // End-to-end replay throughput through the batched pipeline:
    // decode blocks and feed them straight to one Table VI cell.
    let replay_config = CacheConfig {
        cache_bytes: 2 << 20,
        block_size: 4096,
        write_policy: WritePolicy::DelayedWrite,
        ..CacheConfig::default()
    };
    let (replay_ms, _) = best_ms(5, || {
        cachesim::Simulator::run_blocks(
            plain
                .blocks(tracestore::Corruption::Fail)
                .map(|b| b.unwrap_or_else(|e| die(&format!("batched decode during replay: {e}")))),
            &replay_config,
        )
    });
    let replay_rps = trace.len() as f64 / (replay_ms / 1e3).max(1e-9);

    // Sweep identity: Table VI over the archive replay must equal the
    // in-memory sweep bit for bit.
    let configs = grid();
    let baseline = sweep::run_with_jobs(trace, &configs, jobs);
    let replayed = sweep::run_source(|| par_records.iter(), &configs, jobs);
    let identical = baseline == replayed;

    // Recovery: flip one byte in the middle of the middle chunk.
    let victim = chunks / 2;
    let info = archive.chunks()[victim];
    let mut damaged_bytes = bytes;
    let at =
        info.offset as usize + tracestore::format::CHUNK_HEADER_LEN + info.stored_len as usize / 2;
    damaged_bytes[at] ^= 0xFF;
    let damaged = Archive::from_bytes(damaged_bytes)
        .unwrap_or_else(|e| die(&format!("reopen damaged archive: {e}")));
    let (recovered, report) = damaged.read_all();
    let chunks_skipped = report.chunks_skipped();
    let records_lost = report.records_lost();
    let recovery_ok = chunks_skipped == 1
        && report.bad_chunks[0].index == victim as u64
        && records_lost == info.records as u64
        && recovered.len() == trace.len() - info.records as usize;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    if json {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"archive\",\n");
        s.push_str(&format!("  \"hours\": {hours},\n"));
        s.push_str(&format!("  \"seed\": {seed},\n"));
        s.push_str(&format!("  \"jobs\": {jobs},\n"));
        s.push_str(&format!("  \"cores\": {cores},\n"));
        s.push_str(&format!("  \"warmup_runs\": {WARMUP_RUNS},\n"));
        s.push_str(&format!("  \"records\": {},\n", trace.len()));
        s.push_str(&format!("  \"chunks\": {chunks},\n"));
        s.push_str(&format!("  \"raw_bytes\": {raw_bytes},\n"));
        s.push_str(&format!("  \"archive_bytes\": {},\n", archive.byte_len()));
        s.push_str(&format!("  \"compression_ratio\": {compression:.3},\n"));
        s.push_str(&format!("  \"pack_ms\": {pack_ms:.1},\n"));
        s.push_str(&format!("  \"pack_mb_s\": {pack_mb_s:.1},\n"));
        s.push_str(&format!("  \"unpack_mb_s\": {unpack_mb_s:.1},\n"));
        s.push_str(&format!("  \"decode1_ms\": {decode1_ms:.2},\n"));
        s.push_str(&format!("  \"decode_par_ms\": {decode_par_ms:.2},\n"));
        s.push_str(&format!("  \"par_speedup\": {par_speedup:.2},\n"));
        s.push_str(&format!(
            "  \"decode_scalar_records_s\": {decode_scalar_rps:.0},\n"
        ));
        s.push_str(&format!(
            "  \"decode_block_records_s\": {decode_block_rps:.0},\n"
        ));
        s.push_str(&format!("  \"decode_speedup\": {decode_speedup:.2},\n"));
        s.push_str(&format!("  \"replay_records_s\": {replay_rps:.0},\n"));
        s.push_str(&format!("  \"identical\": {identical},\n"));
        s.push_str(&format!(
            "  \"corrupt_chunks_skipped\": {chunks_skipped},\n"
        ));
        s.push_str(&format!("  \"corrupt_records_lost\": {records_lost},\n"));
        s.push_str(&format!("  \"records_recovered\": {},\n", recovered.len()));
        s.push_str(&format!("  \"recovery_ok\": {recovery_ok}\n"));
        s.push('}');
        println!("{s}");
    } else {
        println!("archive bench ({hours} h, seed {seed}, jobs {jobs}, {chunk_kib} KiB chunks)");
        println!("  records: {} in {chunks} chunks", trace.len());
        println!(
            "  raw trace: {raw_bytes} B, archive: {} B",
            archive.byte_len()
        );
        println!("  compression: {compression:.3}x");
        println!("  pack: {pack_ms:.1} ms ({pack_mb_s:.1} MB/s)");
        println!("  decode 1-way: {decode1_ms:.2} ms ({unpack_mb_s:.1} MB/s)");
        println!("  decode {jobs}-way: {decode_par_ms:.2} ms ({par_speedup:.2}x, {cores} cores)");
        println!(
            "  decode scalar: {decode_scalar_rps:.0} rec/s, batched: {decode_block_rps:.0} rec/s \
             ({decode_speedup:.2}x)"
        );
        println!("  replay (batched pipeline): {replay_rps:.0} rec/s");
        println!("  sweep identical: {identical}");
        println!(
            "  corruption drill: {chunks_skipped} chunk skipped, {records_lost} records lost, \
             {} recovered, ok={recovery_ok}",
            recovered.len()
        );
    }
    if !identical {
        die("archive-replayed sweep diverged from the in-memory sweep");
    }
    if !recovery_ok {
        die("corruption recovery did not isolate the damaged chunk");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("archivebench: {msg}");
    std::process::exit(1);
}
