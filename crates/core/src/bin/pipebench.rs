//! `pipebench`: overlapped decode→replay pipeline throughput.
//!
//! ```text
//! pipebench [--hours H] [--seed S] [--workers N] [--repeat N] [--json]
//! ```
//!
//! Generates one a5-profile trace, packs it into an in-memory
//! compressed archive, and measures end-to-end records/s through the
//! hot replay path at three depths:
//!
//! * **decode only** — drain every `RecordBlock` out of the archive,
//!   sequentially (`Archive::blocks`) and through the pipelined reader
//!   (`Archive::pipelined`), which overlaps chunk verify/decompress/
//!   decode on a worker pool with the consumer;
//! * **replay** — decode plus a full cache simulation of one
//!   representative Table VI cell (2 MB, delayed write, 4 KB blocks),
//!   again serial vs pipelined; the pipelined path runs through
//!   [`Simulator::run_fill`], so drained column buffers recycle back
//!   to the decode workers and the steady state allocates nothing;
//! * **full analysis** — decode plus the entire Section 5 analysis
//!   suite (`run_analyzers_blocks`) through the pipelined reader.
//!
//! Every timing is best-of-`--repeat` after one untimed warm-up pass
//! (`warmup_runs` in the JSON records the policy). The pipelined
//! results are asserted bit-identical to the serial ones — cache
//! metrics and record counts must match exactly — so the speedup
//! numbers can never come from dropped or reordered records.
//!
//! ci.sh runs this as the pipeline perf gate (`BENCH_9.json`): on
//! multi-core machines pipelined replay must be >= 1.5x serial
//! replay (>= 1.0x single-core floor), and pipelined decode must
//! clear an absolute records/s floor.

use std::sync::Arc;
use std::time::Instant;

use cachesim::{CacheConfig, Simulator, WritePolicy};
use fstrace::FillBlock;
use tracestore::{Archive, ArchiveOptions, ArchiveWriter, Corruption};
use workload::{generate, MachineProfile, WorkloadConfig};

/// The shared activity windows (600 s / 10 s, as in the paper).
const WINDOWS: [u64; 2] = [600, 10];

/// Untimed passes before each timed measurement; reported as
/// `warmup_runs` so downstream gates know the policy.
const WARMUP_RUNS: usize = 1;

/// Best-of-`n` wall-clock time of `f` in milliseconds, after
/// [`WARMUP_RUNS`] untimed warm-up passes.
fn best_ms<T>(n: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    for _ in 0..WARMUP_RUNS {
        std::hint::black_box(f());
    }
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..n {
        let started = Instant::now();
        let v = f();
        best = best.min(started.elapsed().as_secs_f64() * 1e3);
        out = Some(v);
    }
    (best, out.expect("n >= 1"))
}

fn main() {
    let mut hours = 0.25f64;
    let mut seed = 1985u64;
    let mut workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut repeat = 5usize;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--hours" => {
                hours = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--hours needs a number"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--workers needs a positive integer"));
            }
            "--repeat" => {
                repeat = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--repeat needs a positive integer"));
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: pipebench [--hours H] [--seed S] [--workers N] [--repeat N] [--json]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }

    let out = generate(&WorkloadConfig {
        profile: MachineProfile::ucbarpa(),
        seed,
        duration_hours: hours,
        ..WorkloadConfig::default()
    })
    .unwrap_or_else(|e| die(&format!("generate: {e}")));
    let trace = &out.trace;
    let records = trace.len();

    let mut w = ArchiveWriter::new(Vec::new(), ArchiveOptions::default())
        .unwrap_or_else(|e| die(&format!("archive header: {e}")));
    for rec in trace.records() {
        w.write(rec)
            .unwrap_or_else(|e| die(&format!("archive write: {e}")));
    }
    let bytes = w
        .finish()
        .unwrap_or_else(|e| die(&format!("archive finish: {e}")))
        .0;
    let archive = Arc::new(
        Archive::from_bytes(bytes).unwrap_or_else(|e| die(&format!("reopen archive: {e}"))),
    );

    // Decode only: drain every block, count records. The serial side
    // is the sequential chunk reader; the pipelined side consumes
    // through `fill_next`, so its drained buffers recycle.
    let (dec_serial_ms, dec_serial_n) = best_ms(repeat, || {
        let mut n = 0usize;
        for b in archive.blocks(Corruption::Fail) {
            n += b
                .unwrap_or_else(|e| die(&format!("serial decode: {e}")))
                .len();
        }
        n
    });
    let (dec_pipe_ms, dec_pipe_n) = best_ms(repeat, || {
        let mut src = Arc::clone(&archive).pipelined(Corruption::Fail, workers);
        let mut block = fstrace::RecordBlock::new();
        let mut n = 0usize;
        while src.fill_next(&mut block) {
            n += block.len();
        }
        if !src.report().is_clean() {
            die("pipelined decode hit corruption in a fresh archive");
        }
        n
    });
    if dec_serial_n != records || dec_pipe_n != records {
        die("decode record counts diverged from the generated trace");
    }

    // Replay: decode plus a full cache simulation of one Table VI
    // cell. Serial interleaves decode and replay on one thread;
    // pipelined overlaps them, recycling buffers via `run_fill`.
    let replay_config = CacheConfig {
        cache_bytes: 2 << 20,
        block_size: 4096,
        write_policy: WritePolicy::DelayedWrite,
        ..CacheConfig::default()
    };
    let (replay_serial_ms, serial_metrics) = best_ms(repeat, || {
        Simulator::run_blocks(
            archive
                .blocks(Corruption::Fail)
                .map(|b| b.unwrap_or_else(|e| die(&format!("serial replay decode: {e}")))),
            &replay_config,
        )
    });
    let (replay_pipe_ms, pipe_metrics) = best_ms(repeat, || {
        Simulator::run_fill(
            Arc::clone(&archive).pipelined(Corruption::Fail, workers),
            &replay_config,
        )
    });
    let identical = serial_metrics == pipe_metrics;

    // Full analysis: the entire Section 5 suite through the pipelined
    // reader, checked against the in-memory batch path.
    let (analysis_ms, pipe_suite) = best_ms(repeat, || {
        fsanalysis::run_analyzers_blocks(
            Arc::clone(&archive).pipelined(Corruption::Fail, workers),
            &WINDOWS,
        )
    });
    let serial_suite = fsanalysis::run_analyzers(trace.records(), &WINDOWS);
    let analysis_identical = format!("{pipe_suite:?}") == format!("{serial_suite:?}");

    let dec_serial_rps = records as f64 / (dec_serial_ms / 1e3).max(1e-9);
    let dec_pipe_rps = records as f64 / (dec_pipe_ms / 1e3).max(1e-9);
    let replay_serial_rps = records as f64 / (replay_serial_ms / 1e3).max(1e-9);
    let replay_pipe_rps = records as f64 / (replay_pipe_ms / 1e3).max(1e-9);
    let analysis_rps = records as f64 / (analysis_ms / 1e3).max(1e-9);
    let decode_speedup = dec_serial_ms / dec_pipe_ms.max(1e-9);
    let replay_speedup = replay_serial_ms / replay_pipe_ms.max(1e-9);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    if json {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"pipeline\",\n");
        s.push_str(&format!("  \"hours\": {hours},\n"));
        s.push_str(&format!("  \"seed\": {seed},\n"));
        s.push_str(&format!("  \"workers\": {workers},\n"));
        s.push_str(&format!("  \"repeat\": {repeat},\n"));
        s.push_str(&format!("  \"warmup_runs\": {WARMUP_RUNS},\n"));
        s.push_str(&format!("  \"cores\": {cores},\n"));
        s.push_str(&format!("  \"records\": {records},\n"));
        s.push_str(&format!(
            "  \"decode_serial_records_s\": {dec_serial_rps:.0},\n"
        ));
        s.push_str(&format!(
            "  \"decode_pipelined_records_s\": {dec_pipe_rps:.0},\n"
        ));
        s.push_str(&format!("  \"decode_speedup\": {decode_speedup:.2},\n"));
        s.push_str(&format!(
            "  \"replay_serial_records_s\": {replay_serial_rps:.0},\n"
        ));
        s.push_str(&format!(
            "  \"replay_pipelined_records_s\": {replay_pipe_rps:.0},\n"
        ));
        s.push_str(&format!("  \"replay_speedup\": {replay_speedup:.2},\n"));
        s.push_str(&format!("  \"analysis_records_s\": {analysis_rps:.0},\n"));
        s.push_str(&format!("  \"identical\": {identical},\n"));
        s.push_str(&format!("  \"analysis_identical\": {analysis_identical}\n"));
        s.push('}');
        println!("{s}");
    } else {
        println!(
            "pipeline bench ({hours} h, seed {seed}, {workers} workers, best of {repeat}, \
             {cores} cores)"
        );
        println!("  records: {records}");
        println!(
            "  decode  serial: {dec_serial_rps:.0} rec/s, pipelined: {dec_pipe_rps:.0} rec/s \
             ({decode_speedup:.2}x)"
        );
        println!(
            "  replay  serial: {replay_serial_rps:.0} rec/s, pipelined: {replay_pipe_rps:.0} \
             rec/s ({replay_speedup:.2}x)"
        );
        println!("  full analysis (pipelined): {analysis_rps:.0} rec/s");
        println!("  replay identical: {identical}, analysis identical: {analysis_identical}");
    }
    if !identical {
        die("pipelined replay metrics diverged from serial replay");
    }
    if !analysis_identical {
        die("pipelined analysis suite diverged from the in-memory suite");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("pipebench: {msg}");
    std::process::exit(1);
}
