//! `repro`: regenerate the paper's tables and figures.
//!
//! ```text
//! repro [EXPERIMENT] [--hours H] [--seed S] [--jobs N] [--metrics PATH]
//!       [--archive DIR] [--fidelity open|syscall|block]
//!
//! EXPERIMENT: all (default) | table1 | table3 | table4 | table5 |
//!             fig1 | fig2 | fig3 | fig4 | gaps | table6 | table7 |
//!             fig7 | residency | compare | fidelity
//!
//! --fidelity selects the replay fidelity for the Section 6 cache
//! simulations (default: block, the paper's simulator; see DESIGN.md
//! §15). Section 5 analyses are fidelity-invariant, the compare
//! experiment is pinned to block, and the `fidelity` experiment always
//! runs all three levels side by side.
//!
//! --jobs N caps the worker threads the cache-simulation sweeps use
//! (default: all available cores). Results are identical for any N.
//!
//! --metrics PATH writes an `obs/v1` JSON snapshot of every internal
//! metric (cache counters, codec throughput, workload generation,
//! sweep timing) to PATH at exit. Experiment output on stdout stays
//! bit-identical with or without the flag; wall-clock values live only
//! in the JSON and in per-phase timing lines on stderr.
//!
//! --archive DIR caches generated traces as `tracestore` archives
//! under DIR: the first run with a given --hours/--seed writes them,
//! later runs replay them (checksummed, chunk-parallel decode) instead
//! of regenerating. The server experiment also persists its merged
//! trace there. Experiment output is identical with or without the
//! cache. The `compare` experiment needs live file-system state that a
//! replay cannot reconstruct, so runs that include it bypass the cache
//! with a note.
//! ```

use std::path::PathBuf;
use std::time::Instant;

use bsdtrace::{experiments, ReproConfig, TraceSet};

fn main() {
    let mut which = "all".to_string();
    let mut config = ReproConfig::default();
    let mut metrics_path: Option<String> = None;
    let mut jobs_flag: Option<usize> = None;
    let mut archive_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--hours" => {
                config.hours = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--hours needs a number"));
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--jobs" => {
                let jobs: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--jobs needs a positive integer"));
                cachesim::sweep::set_default_jobs(jobs);
                jobs_flag = Some(jobs);
            }
            "--metrics" => {
                metrics_path = Some(args.next().unwrap_or_else(|| die("--metrics needs a path")));
            }
            "--archive" => {
                archive_dir = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--archive needs a directory")),
                ));
            }
            "--fidelity" => {
                config.fidelity = args
                    .next()
                    .and_then(|v| cachesim::Fidelity::parse(&v))
                    .unwrap_or_else(|| die("--fidelity needs one of: open, syscall, block"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [EXPERIMENT] [--hours H] [--seed S] [--jobs N] [--metrics PATH]\n\
                     \x20      [--archive DIR] [--fidelity open|syscall|block]\n\
                     experiments: all table1 table3 table4 table5 fig1 fig2 fig3 fig4\n\
                     \x20            gaps table6 table7 fig7 residency compare ablations\n\
                     \x20            server fidelity"
                );
                return;
            }
            other if !other.starts_with('-') => which = other.to_string(),
            other => die(&format!("unknown flag {other}")),
        }
    }

    let needs_all_traces = matches!(
        which.as_str(),
        "all"
            | "table1"
            | "table3"
            | "table4"
            | "table5"
            | "fig1"
            | "fig2"
            | "fig3"
            | "fig4"
            | "gaps"
            | "server"
    );
    eprintln!(
        "generating {} trace(s), {} simulated hour(s), seed {} ...",
        if needs_all_traces { 3 } else { 1 },
        config.hours,
        config.seed
    );
    // The compare experiment reads the simulated file system's cache
    // counters, which only exist after a live workload run — an
    // archive replay cannot reconstruct them, so runs including it
    // regenerate.
    let includes_compare = matches!(which.as_str(), "all" | "compare");
    if includes_compare && archive_dir.is_some() {
        eprintln!("note: archive cache bypassed ('{which}' includes compare, which needs live file-system state)");
    }
    let trace_cache = archive_dir.as_deref().filter(|_| !includes_compare);
    let jobs = jobs_flag.unwrap_or_else(cachesim::sweep::default_jobs);
    let gen_started = Instant::now();
    let set = {
        let _timing = obs::global().span("repro.generate_traces").start();
        match (needs_all_traces, trace_cache) {
            (true, None) => TraceSet::generate(&config),
            (true, Some(dir)) => TraceSet::generate_cached(&config, dir, jobs),
            (false, None) => TraceSet::generate_a5(&config),
            (false, Some(dir)) => TraceSet::generate_a5_cached(&config, dir, jobs),
        }
    }
    .unwrap_or_else(|e| die(&format!("trace generation failed: {e}")));
    for e in &set.entries {
        eprintln!(
            "  {}: {} records, {:.1} Mbytes transferred",
            e.name,
            e.out.trace.len(),
            e.out.trace.summary().total_mbytes_transferred()
        );
        // Export each file system's cache counters (buffer cache, name
        // cache, inode table) under its trace name.
        e.out
            .fs
            .register_obs(obs::global(), &format!("bsdfs.{}", e.name));
    }
    eprintln!("  [timing] generate_traces: {:.1} ms", ms(gen_started));
    eprintln!();

    let run_one = |name: &str| {
        let started = Instant::now();
        let _timing = obs::global().span(&format!("repro.{name}")).start();
        match name {
            "table1" => println!("{}\n", experiments::table1::run(&set)),
            "table3" => println!("{}\n", experiments::table3::run(&set)),
            "table4" => println!("{}\n", experiments::table4::run(&set)),
            "table5" => println!("{}\n", experiments::table5::run(&set)),
            "fig1" => println!("{}", experiments::fig1::run(&set)),
            "fig2" => println!("{}", experiments::fig2::run(&set)),
            "fig3" => println!("{}\n", experiments::fig3::run(&set)),
            "fig4" => println!("{}", experiments::fig4::run(&set)),
            "gaps" => println!("{}\n", experiments::gaps::run(&set)),
            "table6" => println!("{}\n", experiments::table6::run(&set)),
            "table7" => println!("{}\n", experiments::table7::run(&set)),
            "fig7" => println!("{}\n", experiments::fig7::run(&set)),
            "residency" => println!("{}\n", experiments::residency::run(&set)),
            "compare" => println!("{}\n", experiments::comparisons::run(&set)),
            "fidelity" => println!("{}\n", experiments::fidelity::run(&set)),
            "ablations" => println!("{}\n", experiments::ablations::run(&set)),
            "server" => match &archive_dir {
                Some(dir) => {
                    let path = bsdtrace::archive::trace_path(dir, "server-merged", &config);
                    println!("{}\n", experiments::server::run_archived(&set, &path, jobs));
                }
                None => println!("{}\n", experiments::server::run(&set)),
            },
            other => die(&format!("unknown experiment {other}")),
        }
        eprintln!("  [timing] {name}: {:.1} ms", ms(started));
    };

    if which == "all" {
        for name in [
            "table1",
            "table3",
            "table4",
            "table5",
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "gaps",
            "table6",
            "table7",
            "fig7",
            "residency",
            "compare",
            "fidelity",
            "ablations",
            "server",
        ] {
            run_one(name);
        }
    } else {
        run_one(&which);
    }

    if let Some(path) = metrics_path {
        let mut meta = vec![
            ("experiment", which.clone()),
            ("hours", format!("{}", config.hours)),
            ("seed", format!("{}", config.seed)),
            ("jobs", format!("{jobs}")),
        ];
        // ci.sh stamps artifacts with the commit they came from.
        if let Ok(sha) = std::env::var("BSDTRACE_GIT_SHA") {
            meta.push(("git_sha", sha));
        }
        let meta: Vec<(&str, String)> = meta;
        let json = obs::global().snapshot().to_json_with_meta(&meta);
        std::fs::write(&path, json + "\n")
            .unwrap_or_else(|e| die(&format!("cannot write metrics to {path}: {e}")));
        eprintln!("metrics written to {path}");
    }
}

fn ms(started: Instant) -> f64 {
    started.elapsed().as_secs_f64() * 1e3
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(1);
}
