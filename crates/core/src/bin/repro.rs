//! `repro`: regenerate the paper's tables and figures.
//!
//! ```text
//! repro [EXPERIMENT] [--hours H] [--seed S] [--jobs N]
//!
//! EXPERIMENT: all (default) | table1 | table3 | table4 | table5 |
//!             fig1 | fig2 | fig3 | fig4 | gaps | table6 | table7 |
//!             fig7 | residency | compare
//!
//! --jobs N caps the worker threads the cache-simulation sweeps use
//! (default: all available cores). Results are identical for any N.
//! ```

use bsdtrace::{experiments, ReproConfig, TraceSet};

fn main() {
    let mut which = "all".to_string();
    let mut config = ReproConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--hours" => {
                config.hours = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--hours needs a number"));
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--jobs" => {
                let jobs: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--jobs needs a positive integer"));
                cachesim::sweep::set_default_jobs(jobs);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [EXPERIMENT] [--hours H] [--seed S] [--jobs N]\n\
                     experiments: all table1 table3 table4 table5 fig1 fig2 fig3 fig4\n\
                     \x20            gaps table6 table7 fig7 residency compare ablations server"
                );
                return;
            }
            other if !other.starts_with('-') => which = other.to_string(),
            other => die(&format!("unknown flag {other}")),
        }
    }

    let needs_all_traces = matches!(
        which.as_str(),
        "all"
            | "table1"
            | "table3"
            | "table4"
            | "table5"
            | "fig1"
            | "fig2"
            | "fig3"
            | "fig4"
            | "gaps"
            | "server"
    );
    eprintln!(
        "generating {} trace(s), {} simulated hour(s), seed {} ...",
        if needs_all_traces { 3 } else { 1 },
        config.hours,
        config.seed
    );
    let set = if needs_all_traces {
        TraceSet::generate(&config)
    } else {
        TraceSet::generate_a5(&config)
    }
    .unwrap_or_else(|e| die(&format!("trace generation failed: {e}")));
    for e in &set.entries {
        eprintln!(
            "  {}: {} records, {:.1} Mbytes transferred",
            e.name,
            e.out.trace.len(),
            e.out.trace.summary().total_mbytes_transferred()
        );
    }
    eprintln!();

    let run_one = |name: &str| match name {
        "table1" => println!("{}\n", experiments::table1::run(&set)),
        "table3" => println!("{}\n", experiments::table3::run(&set)),
        "table4" => println!("{}\n", experiments::table4::run(&set)),
        "table5" => println!("{}\n", experiments::table5::run(&set)),
        "fig1" => println!("{}", experiments::fig1::run(&set)),
        "fig2" => println!("{}", experiments::fig2::run(&set)),
        "fig3" => println!("{}\n", experiments::fig3::run(&set)),
        "fig4" => println!("{}", experiments::fig4::run(&set)),
        "gaps" => println!("{}\n", experiments::gaps::run(&set)),
        "table6" => println!("{}\n", experiments::table6::run(&set)),
        "table7" => println!("{}\n", experiments::table7::run(&set)),
        "fig7" => println!("{}\n", experiments::fig7::run(&set)),
        "residency" => println!("{}\n", experiments::residency::run(&set)),
        "compare" => println!("{}\n", experiments::comparisons::run(&set)),
        "ablations" => println!("{}\n", experiments::ablations::run(&set)),
        "server" => println!("{}\n", experiments::server::run(&set)),
        other => die(&format!("unknown experiment {other}")),
    };

    if which == "all" {
        for name in [
            "table1",
            "table3",
            "table4",
            "table5",
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "gaps",
            "table6",
            "table7",
            "fig7",
            "residency",
            "compare",
            "ablations",
            "server",
        ] {
            run_one(name);
        }
    } else {
        run_one(&which);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(1);
}
