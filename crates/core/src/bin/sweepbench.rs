//! `sweepbench`: the stack-distance profiler against the direct sweep.
//!
//! ```text
//! sweepbench [--hours H] [--seed S] [--jobs N] [--json]
//! ```
//!
//! Generates one a5-profile trace, then runs the Table VI grid (6 cache
//! sizes × 4 write policies, all LRU) through `cachesim::sweep` twice:
//! once with stack-distance profiling disabled (24 direct replays of
//! the shared event stream) and once enabled (one profiled pass). Both
//! produce bit-identical metrics — the `identical` output field proves
//! it on every run — so the only difference is wall-clock time. ci.sh
//! runs this in quick mode and records the result as `BENCH_4.json`,
//! asserting the profiled sweep is at least 3× faster.

use std::time::Instant;

use cachesim::{stack, sweep, CacheConfig, CacheMetrics, WritePolicy};
use fstrace::Trace;
use workload::{generate, MachineProfile, WorkloadConfig};

/// Table VI cache sizes in kbytes (390 KB UNIX baseline to 16 MB).
const SIZES_KB: [u64; 6] = [390, 1024, 2048, 4096, 8192, 16_384];

fn grid() -> Vec<CacheConfig> {
    SIZES_KB
        .iter()
        .flat_map(|&size_kb| {
            WritePolicy::TABLE_VI
                .into_iter()
                .map(move |policy| CacheConfig {
                    cache_bytes: size_kb * 1024,
                    block_size: 4096,
                    write_policy: policy,
                    ..CacheConfig::default()
                })
        })
        .collect()
}

fn timed_sweep(
    trace: &Trace,
    configs: &[CacheConfig],
    jobs: usize,
    profiled: bool,
) -> (f64, Vec<(CacheConfig, CacheMetrics)>) {
    stack::set_enabled(profiled);
    let started = Instant::now();
    let results = sweep::run_with_jobs(trace, configs, jobs);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    stack::set_enabled(true);
    (wall_ms, results)
}

fn main() {
    let mut hours = 0.25f64;
    let mut seed = 1985u64;
    let mut jobs = 0usize;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--hours" => {
                hours = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--hours needs a number"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--jobs needs an integer"));
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: sweepbench [--hours H] [--seed S] [--jobs N] [--json]");
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    if jobs == 0 {
        jobs = sweep::default_jobs();
    }

    let config = WorkloadConfig {
        profile: MachineProfile::ucbarpa(),
        seed,
        duration_hours: hours,
        ..WorkloadConfig::default()
    };
    let out = generate(&config).unwrap_or_else(|e| die(&format!("generate: {e}")));
    let configs = grid();

    // Profiled first (cold caches), direct second: any warm-up effect
    // biases against the speedup being claimed.
    let (profiled_ms, profiled) = timed_sweep(&out.trace, &configs, jobs, true);
    let (direct_ms, direct) = timed_sweep(&out.trace, &configs, jobs, false);
    let identical = profiled == direct;
    let speedup = direct_ms / profiled_ms.max(1e-9);

    let snap = obs::global().snapshot();
    let distances = snap
        .counter("cachesim.stack.distances_recorded")
        .unwrap_or(0);
    let tree_peak = snap.gauge("cachesim.stack.tree_nodes_peak").unwrap_or(0);

    if json {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"stack_sweep\",\n");
        s.push_str(&format!("  \"hours\": {hours},\n"));
        s.push_str(&format!("  \"seed\": {seed},\n"));
        s.push_str(&format!("  \"jobs\": {jobs},\n"));
        s.push_str(&format!("  \"records\": {},\n", out.trace.len()));
        s.push_str(&format!("  \"cells\": {},\n", configs.len()));
        s.push_str(&format!("  \"direct_ms\": {direct_ms:.1},\n"));
        s.push_str(&format!("  \"profiled_ms\": {profiled_ms:.1},\n"));
        s.push_str(&format!("  \"speedup\": {speedup:.2},\n"));
        s.push_str(&format!("  \"distances_recorded\": {distances},\n"));
        s.push_str(&format!("  \"tree_nodes_peak\": {tree_peak},\n"));
        s.push_str(&format!("  \"identical\": {identical}\n"));
        s.push('}');
        println!("{s}");
    } else {
        println!("stack sweep bench ({hours} h, seed {seed}, jobs {jobs})");
        println!("  records: {}", out.trace.len());
        println!("  cells: {}", configs.len());
        println!("  direct_ms: {direct_ms:.1}");
        println!("  profiled_ms: {profiled_ms:.1}");
        println!("  speedup: {speedup:.2}x");
        println!("  distances_recorded: {distances}");
        println!("  tree_nodes_peak: {tree_peak}");
        println!("  identical: {identical}");
    }
    if !identical {
        die("profiled sweep diverged from direct simulation");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("sweepbench: {msg}");
    std::process::exit(1);
}
