//! `fidelitybench`: replay throughput at each fidelity level.
//!
//! ```text
//! fidelitybench [--hours H] [--seed S] [--repeat N] [--json]
//! ```
//!
//! Generates one a5-profile trace, then replays it through a single
//! representative cache configuration (2 MB, delayed write, 4 KB
//! blocks) at block, syscall, and open fidelity, timing the best of N
//! runs each after one untimed warm-up pass (the `warmup_runs` JSON
//! field records the policy). Coarser fidelities expand fewer replay
//! events and skip
//! per-block byte accounting, so they must not be slower than block
//! replay: ci.sh records the result as `BENCH_8.json` and gates on
//! `syscall_speedup`.

use std::time::Instant;

use cachesim::{CacheConfig, Fidelity, Simulator, WritePolicy};
use workload::{generate, MachineProfile, WorkloadConfig};

fn main() {
    let mut hours = 0.25f64;
    let mut seed = 1985u64;
    let mut repeat = 5usize;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--hours" => {
                hours = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--hours needs a number"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--repeat" => {
                repeat = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--repeat needs a positive integer"));
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: fidelitybench [--hours H] [--seed S] [--repeat N] [--json]");
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }

    let config = WorkloadConfig {
        profile: MachineProfile::ucbarpa(),
        seed,
        duration_hours: hours,
        ..WorkloadConfig::default()
    };
    let out = generate(&config).unwrap_or_else(|e| die(&format!("generate: {e}")));
    let records = out.trace.len() as f64;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // records/s of raw trace replayed per fidelity: one untimed
    // warm-up pass (cold caches and first-touch page faults stay out
    // of the measurement), then best of `repeat` timed runs.
    const WARMUP_RUNS: usize = 1;
    let mut rates = [0f64; 3];
    let mut misses = [0f64; 3];
    for (fi, fidelity) in Fidelity::ALL.into_iter().enumerate() {
        let cfg = CacheConfig {
            cache_bytes: 2 * 1024 * 1024,
            block_size: 4096,
            write_policy: WritePolicy::DelayedWrite,
            fidelity,
            ..CacheConfig::default()
        };
        for _ in 0..WARMUP_RUNS {
            std::hint::black_box(Simulator::run(&out.trace, &cfg));
        }
        let mut best_ms = f64::INFINITY;
        for _ in 0..repeat {
            let started = Instant::now();
            let m = Simulator::run(&out.trace, &cfg);
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            best_ms = best_ms.min(wall_ms);
            misses[fi] = m.miss_ratio();
        }
        rates[fi] = records / (best_ms / 1e3).max(1e-9);
    }
    let syscall_speedup = rates[1] / rates[0].max(1e-9);
    let open_speedup = rates[2] / rates[0].max(1e-9);

    if json {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"fidelity_replay\",\n");
        s.push_str(&format!("  \"hours\": {hours},\n"));
        s.push_str(&format!("  \"seed\": {seed},\n"));
        s.push_str(&format!("  \"repeat\": {repeat},\n"));
        s.push_str(&format!("  \"warmup_runs\": {WARMUP_RUNS},\n"));
        s.push_str(&format!("  \"cores\": {cores},\n"));
        s.push_str(&format!("  \"records\": {},\n", out.trace.len()));
        s.push_str(&format!("  \"block_records_per_s\": {:.0},\n", rates[0]));
        s.push_str(&format!("  \"syscall_records_per_s\": {:.0},\n", rates[1]));
        s.push_str(&format!("  \"open_records_per_s\": {:.0},\n", rates[2]));
        s.push_str(&format!("  \"syscall_speedup\": {syscall_speedup:.2},\n"));
        s.push_str(&format!("  \"open_speedup\": {open_speedup:.2}\n"));
        s.push('}');
        println!("{s}");
    } else {
        println!("fidelity replay bench ({hours} h, seed {seed}, best of {repeat})");
        println!("  records: {}", out.trace.len());
        for (fi, fidelity) in Fidelity::ALL.into_iter().enumerate() {
            println!(
                "  {:<8} {:>12.0} records/s  (miss {:.1}%)",
                fidelity.name(),
                rates[fi],
                100.0 * misses[fi]
            );
        }
        println!("  syscall_speedup: {syscall_speedup:.2}x");
        println!("  open_speedup: {open_speedup:.2}x");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("fidelitybench: {msg}");
    std::process::exit(1);
}
