//! `servebench`: measure `tracestored` ingest throughput and verify
//! the daemon's equivalence contracts end to end.
//!
//! ```text
//! servebench [--machines N] [--hours H] [--seed S] [--jobs N] [--json]
//! ```
//!
//! Generates an N-machine fleet's per-machine streams, spawns an
//! in-process daemon on a loopback port, and streams every machine in
//! from its own client thread. Afterwards it asserts the two contracts
//! ci.sh gates on:
//!
//! - **identical** — the daemon's shard directory is byte-identical to
//!   an offline [`FleetMerge`] of the same streams through an
//!   identically configured [`ShardSet`];
//! - **queries_match** — the served `summary` and `analyze` replies
//!   equal the same analyses computed locally over the merged trace.
//!
//! It reports concurrent ingest records/s (the gated throughput) and
//! the wall latency of a `range` and an `analyze` query against the
//! live daemon.

use std::path::{Path, PathBuf};
use std::time::Instant;

use fstrace::source::FleetMerge;
use fstrace::{IdOffsets, Trace, TraceRecord, TraceSummary};
use tracestored::{render_suite, Client, ServerConfig, ShardPolicy, ShardSet};
use workload::{FleetConfig, MachineSim};

/// Records per OP_RECORDS frame; matches the IngestSink batch size.
const BATCH: usize = 8192;

/// Analyzer activity windows; must match the server config below.
const WINDOWS: [u64; 2] = [600, 10];

/// Materializes one machine's full stream (the epoch loop the live
/// paths use, minus the network).
fn machine_stream(config: &FleetConfig, m: usize) -> Vec<TraceRecord> {
    let mut sim = MachineSim::new(&config.machine_config(m))
        .unwrap_or_else(|e| die(&format!("machine {m}: {e}")));
    let mut out: Vec<TraceRecord> = Vec::new();
    let mut t = config.epoch_ms;
    loop {
        sim.advance(t, &mut out)
            .unwrap_or_else(|e| die(&format!("machine {m}: {e}")));
        sim.flush_to(t, &mut out)
            .unwrap_or_else(|e| die(&format!("machine {m}: {e}")));
        if sim.idle() {
            sim.seal(&mut out)
                .unwrap_or_else(|e| die(&format!("machine {m}: {e}")));
            return out;
        }
        t += config.epoch_ms;
    }
}

/// The offline reference: FleetMerge with the fleet's real offsets,
/// released into both a record vector and an identically configured
/// shard set.
fn offline_reference(
    streams: &[Vec<TraceRecord>],
    offsets: &[IdOffsets],
    policy: ShardPolicy,
) -> Vec<TraceRecord> {
    let mut to_vec = FleetMerge::new(offsets.to_vec());
    let mut to_shards = FleetMerge::new(offsets.to_vec());
    for (i, stream) in streams.iter().enumerate() {
        for rec in stream {
            to_vec.push(i, rec);
            to_shards.push(i, rec);
        }
        for m in [&mut to_vec, &mut to_shards] {
            m.set_progress(i, u64::MAX);
            m.finish_input(i);
        }
    }
    let mut merged = Vec::new();
    to_vec
        .finish(&mut merged)
        .unwrap_or_else(|e| die(&format!("offline merge: {e}")));
    let mut shards =
        ShardSet::create(policy).unwrap_or_else(|e| die(&format!("offline shards: {e}")));
    to_shards
        .finish(&mut shards)
        .unwrap_or_else(|e| die(&format!("offline merge: {e}")));
    shards
        .finish()
        .unwrap_or_else(|e| die(&format!("offline seal: {e}")));
    merged
}

fn shard_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| die(&format!("read {}: {e}", dir.display())))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "tsa"))
        .collect();
    files.sort();
    files
}

fn dirs_byte_identical(a: &Path, b: &Path) -> bool {
    let (fa, fb) = (shard_files(a), shard_files(b));
    let name = |p: &PathBuf| p.file_name().map(|s| s.to_os_string());
    fa.len() == fb.len()
        && fa
            .iter()
            .zip(&fb)
            .all(|(x, y)| name(x) == name(y) && std::fs::read(x).ok() == std::fs::read(y).ok())
}

/// Peak resident set size in kbytes (`VmHWM` from `/proc/self/status`),
/// or 0 where unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let mut machines = 4usize;
    let mut hours = 0.1f64;
    let mut seed = 1985u64;
    let mut jobs = 0usize; // 0: pick from the core count.
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--machines" => {
                machines = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0 && n <= u16::MAX as usize)
                    .unwrap_or_else(|| die("--machines needs a positive integer"))
            }
            "--hours" => {
                hours = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--hours needs a number"))
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"))
            }
            "--jobs" | "-j" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--jobs needs a positive integer"))
            }
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: servebench [--machines N] [--hours H] [--seed S] [--jobs N] [--json]"
                );
                return;
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if jobs == 0 {
        jobs = cores.min(4);
    }

    let fleet = FleetConfig {
        machines,
        seed,
        duration_hours: hours,
        user_scale: 0.5,
        ..FleetConfig::default()
    };
    let streams: Vec<Vec<TraceRecord>> = (0..machines).map(|m| machine_stream(&fleet, m)).collect();
    let offsets: Vec<IdOffsets> = (0..machines).map(|m| fleet.machine_offsets(m)).collect();
    let records: u64 = streams.iter().map(|s| s.len() as u64).sum();

    let base = PathBuf::from("target/artifacts/servebench");
    let server_dir = base.join("server");
    let offline_dir = base.join("offline");
    for dir in [&server_dir, &offline_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }

    // Small enough shards that rotation actually happens at bench
    // scale; identical policy on both sides.
    let policy = ShardPolicy {
        dir: offline_dir.clone(),
        name: "served".into(),
        shard_target_bytes: 64 << 10,
        bucket_ms: 0,
        chunk_target_bytes: 64 << 10,
        compress: true,
    };
    let merged = offline_reference(&streams, &offsets, policy.clone());

    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        dir: server_dir.clone(),
        shard_target_bytes: policy.shard_target_bytes,
        bucket_ms: policy.bucket_ms,
        chunk_target_bytes: policy.chunk_target_bytes,
        compress: policy.compress,
        backpressure_records: 1 << 20,
        analysis_windows: WINDOWS.to_vec(),
        query_jobs: jobs,
    };
    let (addr, handle) = tracestored::spawn(config).unwrap_or_else(|e| die(&format!("spawn: {e}")));
    let addr = addr.to_string();

    // Concurrent ingest: one client thread per machine.
    let started = Instant::now();
    std::thread::scope(|scope| {
        for (m, stream) in streams.iter().enumerate() {
            let addr = addr.clone();
            let offsets = offsets[m];
            scope.spawn(move || {
                let mut client =
                    Client::connect(&addr).unwrap_or_else(|e| die(&format!("connect: {e}")));
                client
                    .hello(machines as u16, m as u16, offsets, &format!("bench-{m}"))
                    .unwrap_or_else(|e| die(&format!("hello {m}: {e}")));
                for chunk in stream.chunks(BATCH) {
                    client
                        .send_records(chunk)
                        .unwrap_or_else(|e| die(&format!("send {m}: {e}")));
                    client
                        .progress(chunk.last().expect("non-empty").time.as_ms())
                        .unwrap_or_else(|e| die(&format!("progress {m}: {e}")));
                }
                client.progress(u64::MAX).ok();
                let accepted = client
                    .fin()
                    .unwrap_or_else(|e| die(&format!("fin {m}: {e}")));
                if accepted != stream.len() as u64 {
                    die(&format!(
                        "machine {m}: server accepted {accepted}, sent {}",
                        stream.len()
                    ));
                }
            });
        }
    });
    let ingest_ms = started.elapsed().as_secs_f64() * 1e3;
    let ingest_rps = records as f64 / (ingest_ms / 1e3);

    // Query equivalence + latency against the live daemon.
    let mut q = Client::connect(&addr).unwrap_or_else(|e| die(&format!("query connect: {e}")));
    let summary_served = q
        .summary()
        .unwrap_or_else(|e| die(&format!("summary: {e}")));
    let summary_local = TraceSummary::compute(&Trace::from_records(merged.clone())).to_string();

    let started = Instant::now();
    let suite_served = q
        .analyze()
        .unwrap_or_else(|e| die(&format!("analyze: {e}")));
    let analyze_ms = started.elapsed().as_secs_f64() * 1e3;
    let suite_local = render_suite(&fsanalysis::run_analyzers(merged.iter(), &WINDOWS));

    let last_ms = merged.last().map_or(0, |r| r.time.as_ms());
    let (from, to) = (last_ms / 4, last_ms / 2);
    let started = Instant::now();
    let range_served = q
        .range(from, to)
        .unwrap_or_else(|e| die(&format!("range: {e}")));
    let range_ms = started.elapsed().as_secs_f64() * 1e3;
    let range_local: Vec<TraceRecord> = merged
        .iter()
        .filter(|r| r.time.as_ms() >= from && r.time.as_ms() < to)
        .copied()
        .collect();

    let queries_match = summary_served == summary_local
        && suite_served == suite_local
        && range_served == range_local;

    q.shutdown()
        .unwrap_or_else(|e| die(&format!("shutdown: {e}")));
    let stats = handle
        .join()
        .unwrap_or_else(|_| die("server thread panicked"))
        .unwrap_or_else(|e| die(&format!("server: {e}")));
    let identical = stats.records_merged == merged.len() as u64
        && dirs_byte_identical(&server_dir, &offline_dir);
    let rss = peak_rss_kb();

    if json {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"machines\": {machines},\n"));
        out.push_str(&format!("  \"cores\": {cores},\n"));
        out.push_str(&format!("  \"jobs\": {jobs},\n"));
        out.push_str(&format!("  \"hours\": {hours},\n"));
        out.push_str(&format!("  \"seed\": {seed},\n"));
        out.push_str(&format!("  \"records\": {records},\n"));
        out.push_str(&format!("  \"shards\": {},\n", stats.shards.len()));
        out.push_str(&format!("  \"identical\": {identical},\n"));
        out.push_str(&format!("  \"queries_match\": {queries_match},\n"));
        out.push_str(&format!("  \"ingest_wall_ms\": {ingest_ms:.1},\n"));
        out.push_str(&format!("  \"ingest_records_s\": {ingest_rps:.0},\n"));
        out.push_str(&format!("  \"analyze_ms\": {analyze_ms:.1},\n"));
        out.push_str(&format!("  \"range_ms\": {range_ms:.1},\n"));
        out.push_str(&format!("  \"range_records\": {},\n", range_served.len()));
        out.push_str(&format!("  \"peak_rss_kb\": {rss}\n"));
        out.push('}');
        println!("{out}");
    } else {
        println!(
            "serve: {machines} machines x {hours} h (seed {seed}), {jobs} query jobs on {cores} cores"
        );
        println!("  records: {records} into {} shard(s)", stats.shards.len());
        println!("  identical: {identical}");
        println!("  queries_match: {queries_match}");
        println!("  ingest: {ingest_ms:.1} ms ({ingest_rps:.0} records/s)");
        println!(
            "  analyze: {analyze_ms:.1} ms, range: {range_ms:.1} ms ({} records)",
            range_served.len()
        );
        println!("  peak_rss_kb: {rss}");
    }
    if !identical {
        die("server shards differ from the offline merge");
    }
    if !queries_match {
        die("served query replies differ from local computation");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("servebench: {msg}");
    std::process::exit(1);
}
