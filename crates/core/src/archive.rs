//! Archive-backed trace caching for the experiment drivers.
//!
//! Generating the three workload traces dominates short `repro` runs.
//! With `--archive DIR`, the first run writes each generated trace to
//! a `tracestore` archive under `DIR`, and later runs with the same
//! `--hours`/`--seed` replay the archives instead of regenerating —
//! decoding chunks in parallel, verifying every checksum on the way
//! in. Archive file names carry the generation parameters
//! (`a5-0.25h-s1985.tsa`), so a parameter change misses the cache
//! rather than replaying the wrong trace.
//!
//! A cache hit cannot reconstruct the simulated file system's internal
//! cache counters (those exist only while the workload runs), so the
//! `compare` experiment — the one consumer of that state — always
//! regenerates; `repro` handles that by bypassing the cache when the
//! requested experiments include it.
//!
//! Damaged archives are a cache miss, not an error: an archive that
//! fails verification (rebuilt footer, any bad chunk) is ignored and
//! rewritten from a fresh generation.

use std::fs;
use std::path::{Path, PathBuf};

use fstrace::Trace;
use tracestore::{Archive, ArchiveOptions, ArchiveWriter};

use crate::ReproConfig;

/// The archive file for one trace under one parameter set.
pub fn trace_path(dir: &Path, name: &str, config: &ReproConfig) -> PathBuf {
    dir.join(format!("{}-{}h-s{}.tsa", name, config.hours, config.seed))
}

/// Loads a trace from `path` if it is present and fully intact.
/// Anything less — missing file, rebuilt footer, a single bad chunk —
/// returns `None`: a cached replay must be exactly the trace that was
/// generated, or nothing.
pub fn load_trace(path: &Path, jobs: usize) -> Option<Trace> {
    if !path.exists() {
        return None;
    }
    let archive = match Archive::open(path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("  archive {}: {e}; regenerating", path.display());
            return None;
        }
    };
    if archive.footer_rebuilt() {
        eprintln!("  archive {}: footer damaged; regenerating", path.display());
        return None;
    }
    // Materialize through the overlapped decode pipeline: decode of
    // chunk i+1.. proceeds while chunk i's records append, and the
    // pipeline.* stage spans populate for `repro --metrics`.
    let total = archive.meta().total_records as usize;
    let archive = std::sync::Arc::new(archive);
    let mut blocks = std::sync::Arc::clone(&archive).pipelined(tracestore::Corruption::Skip, jobs);
    let mut records = Vec::with_capacity(total);
    for b in (&mut blocks).flatten() {
        b.append_to(&mut records);
    }
    let report = blocks.report().clone();
    if !report.is_clean() {
        eprintln!(
            "  archive {}: {} corrupt chunk(s), {} records lost; regenerating",
            path.display(),
            report.chunks_skipped(),
            report.records_lost()
        );
        return None;
    }
    Some(Trace::from_records(records))
}

/// Writes `trace` to `path` as an archive, atomically (write to a
/// sibling temp file, then rename). A failure only costs the cache —
/// it is reported, not fatal.
pub fn store_trace(path: &Path, name: &str, trace: &Trace) {
    let tmp = path.with_extension("tsa.tmp");
    let result = (|| -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = fs::File::create(&tmp)?;
        let mut w = ArchiveWriter::new(
            std::io::BufWriter::new(file),
            ArchiveOptions {
                name: name.to_string(),
                ..ArchiveOptions::default()
            },
        )?;
        for rec in trace.records() {
            w.write(rec)?;
        }
        w.finish()?;
        fs::rename(&tmp, path)
    })();
    if let Err(e) = result {
        let _ = fs::remove_file(&tmp);
        eprintln!("  archive {}: write failed: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstrace::{AccessMode, TraceBuilder};

    fn small_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        for i in 0..200u64 {
            let f = b.new_file_id();
            let o = b.open(i * 40, f, u, AccessMode::ReadOnly, 1024, false);
            b.close(i * 40 + 20, o, 1024);
        }
        b.finish()
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = std::env::temp_dir().join("bsdtrace-archive-test-roundtrip");
        let _ = fs::remove_dir_all(&dir);
        let config = ReproConfig {
            hours: 0.25,
            seed: 42,
            ..ReproConfig::default()
        };
        let path = trace_path(&dir, "a5", &config);
        assert_eq!(path.file_name().unwrap(), "a5-0.25h-s42.tsa");

        assert!(load_trace(&path, 2).is_none(), "cold cache misses");
        let trace = small_trace();
        store_trace(&path, "a5", &trace);
        let back = load_trace(&path, 2).expect("warm cache hits");
        assert_eq!(back.records(), trace.records());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_archive_is_a_cache_miss() {
        let dir = std::env::temp_dir().join("bsdtrace-archive-test-damage");
        let _ = fs::remove_dir_all(&dir);
        let config = ReproConfig::default();
        let path = trace_path(&dir, "e3", &config);
        store_trace(&path, "e3", &small_trace());
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, bytes).unwrap();
        assert!(load_trace(&path, 2).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
