//! Fixed-width ASCII table rendering for experiment reports.

use std::fmt;

/// A renderable table: title, column headers, rows, and footnotes.
///
/// # Examples
///
/// ```
/// use bsdtrace::report::Table;
///
/// let mut t = Table::new("Demo", &["x", "y"]);
/// t.row(vec!["1".into(), "2".into()]);
/// t.note("a footnote");
/// let s = t.to_string();
/// assert!(s.contains("Demo"));
/// assert!(s.contains("footnote"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Appends a footnote line.
    pub fn note(&mut self, note: &str) {
        self.notes.push(note.to_string());
    }

    fn widths(&self) -> Vec<usize> {
        let ncols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut w = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let total: usize = w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1);
        writeln!(f, "{}", self.title)?;
        writeln!(f, "{}", "=".repeat(self.title.len().max(total)))?;
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i == 0 {
                        format!("{:<width$}", c, width = w[i])
                    } else {
                        format!("{:>width$}", c, width = w[i])
                    }
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        if !self.headers.is_empty() {
            writeln!(f, "{}", line(&self.headers))?;
            writeln!(f, "{}", "-".repeat(total))?;
        }
        for row in &self.rows {
            let mut cells = row.clone();
            cells.resize(w.len(), String::new());
            writeln!(f, "{}", line(&cells))?;
        }
        for n in &self.notes {
            writeln!(f, "  {n}")?;
        }
        Ok(())
    }
}

/// Formats a ratio as a percentage with one decimal ("42.5%").
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a "mean (± σ)" pair, as the paper's Table IV does.
pub fn mean_sd(mean: f64, sd: f64) -> String {
    format!("{mean:.1} (±{sd:.1})")
}

/// Formats a byte count as megabytes with one decimal.
pub fn mbytes(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1e6)
}

/// Formats a count with thousands separators.
pub fn count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "10000".into()]);
        let s = t.to_string();
        assert!(s.contains("alpha"));
        // Right-aligned numeric column.
        assert!(s.contains("    1\n") || s.contains("    1"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new("T", &["a", "b", "c"]);
        t.row(vec!["x".into()]);
        let _ = t.to_string(); // Must not panic.
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.425), "42.5%");
        assert_eq!(f1(3.149), "3.1");
        assert_eq!(mean_sd(11.71, 5.83), "11.7 (±5.8)");
        assert_eq!(mbytes(1_500_000), "1.5");
        assert_eq!(count(1_234_567), "1,234,567");
        assert_eq!(count(123), "123");
        assert_eq!(count(1_000), "1,000");
    }
}
