//! `bsdtrace`: a full reproduction of *"A Trace-Driven Analysis of the
//! UNIX 4.2 BSD File System"* (Ousterhout et al., SOSP 1985).
//!
//! This crate is the publication harness: it ties the substrates
//! together and regenerates every table and figure of the paper —
//!
//! | Id | Content | Module |
//! |----|---------|--------|
//! | Table I | headline results | [`experiments::table1`] |
//! | Table III | overall trace statistics | [`experiments::table3`] |
//! | Table IV | system activity per user | [`experiments::table4`] |
//! | Table V | sequentiality | [`experiments::table5`] |
//! | Figure 1 | sequential run lengths | [`experiments::fig1`] |
//! | Figure 2 | dynamic file sizes | [`experiments::fig2`] |
//! | Figure 3 | open times | [`experiments::fig3`] |
//! | Figure 4 | file lifetimes | [`experiments::fig4`] |
//! | Figure 5 / Table VI | miss ratio vs cache size × write policy | [`experiments::table6`] |
//! | Figure 6 / Table VII | disk I/Os vs block size × cache size | [`experiments::table7`] |
//! | Figure 7 | paging approximation | [`experiments::fig7`] |
//! | §3.1 | event-gap bounds | [`experiments::gaps`] |
//! | §6.2 | dirty-block residency | [`experiments::residency`] |
//! | §6.4 | simulated vs measured cache (Leffler comparison) | [`experiments::comparisons`] |
//!
//! The pipeline: [`workload`] simulates the three traced Berkeley
//! machines against a [`bsdfs`] file system whose tracer emits
//! [`fstrace`] records; [`fsanalysis`] reproduces Section 5 and
//! [`cachesim`] reproduces Section 6. Published values from the paper
//! are embedded in [`paper`] so every report prints measured-vs-paper
//! side by side.
//!
//! # Examples
//!
//! ```no_run
//! use bsdtrace::{ReproConfig, TraceSet};
//!
//! let config = ReproConfig { hours: 1.0, ..ReproConfig::default() };
//! let traces = TraceSet::generate(&config).unwrap();
//! println!("{}", bsdtrace::experiments::table5::run(&traces));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod chart;
pub mod experiments;
pub mod paper;
pub mod report;
mod traces;

pub use traces::{ReproConfig, TraceEntry, TraceSet};
