//! Published values from the paper, for side-by-side comparison.
//!
//! Numbers are transcribed from the SOSP '85 text. The available scan
//! loses some digits (e.g. "37 (± 29)" for 370 (±290) bytes/second);
//! where a value had to be reconstructed from context it is noted. All
//! comparisons in the reports and tests are *shape* comparisons — who
//! wins, by roughly what factor, where optima fall — never exact-value
//! matches: our substrate is a synthetic workload, not the 1985 Berkeley
//! machines.

/// Event-mix percentages from Table III, rows in
/// create/open/close/seek/unlink/truncate/execve order; columns a5, e3,
/// c4.
pub const TABLE_III_EVENT_PCT: [[f64; 3]; 7] = [
    [3.8, 4.1, 4.1],    // create
    [31.9, 30.9, 28.2], // open
    [35.7, 35.0, 32.3], // close
    [18.5, 18.7, 26.2], // seek
    [3.8, 4.0, 3.9],    // unlink
    [0.1, 0.2, 0.1],    // truncate
    [6.1, 7.1, 5.2],    // execve
];

/// Table IV: average active users over 10-minute intervals (mean, σ),
/// per trace.
pub const TABLE_IV_ACTIVE_10MIN: [(f64, f64); 3] = [(11.7, 5.8), (18.7, 10.1), (7.4, 4.1)];

/// Table IV: average throughput per active user over 10-minute
/// intervals in bytes/second (mean, σ). Reconstructed: the scan prints
/// "37 (± 29)" etc. with trailing zeros lost.
pub const TABLE_IV_THROUGHPUT_10MIN: [(f64, f64); 3] =
    [(370.0, 290.0), (280.0, 190.0), (570.0, 760.0)];

/// Table IV: average active users over 10-second intervals (mean, σ).
pub const TABLE_IV_ACTIVE_10SEC: [(f64, f64); 3] = [(2.5, 1.5), (3.3, 2.0), (1.7, 1.1)];

/// Table IV: throughput per active user over 10-second intervals in
/// bytes/second (mean, σ); "a few kilobytes per second". Reconstructed
/// from "149 (± 1)" etc.
pub const TABLE_IV_THROUGHPUT_10SEC: [(f64, f64); 3] =
    [(1490.0, 1000.0), (1380.0, 410.0), (1790.0, 740.0)];

/// Table V: whole-file read transfers as % of read-only accesses.
pub const TABLE_V_WHOLE_READS_PCT: [f64; 3] = [69.0, 63.0, 70.0];

/// Table V: whole-file write transfers as % of write-only accesses.
pub const TABLE_V_WHOLE_WRITES_PCT: [f64; 3] = [82.0, 81.0, 85.0];

/// Table V: % of all bytes moved by whole-file transfers.
pub const TABLE_V_WHOLE_BYTES_PCT: [f64; 3] = [54.0, 49.0, 53.0];

/// Table V: sequential accesses as % of read-only accesses.
pub const TABLE_V_SEQ_RO_PCT: [f64; 3] = [92.0, 91.0, 93.0];

/// Table V: sequential accesses as % of write-only accesses.
pub const TABLE_V_SEQ_WO_PCT: [f64; 3] = [97.0, 96.0, 98.0];

/// Table V: sequential accesses as % of read-write accesses.
pub const TABLE_V_SEQ_RW_PCT: [f64; 3] = [19.0, 21.0, 35.0];

/// Table V: % of all bytes transferred sequentially.
pub const TABLE_V_SEQ_BYTES_PCT: [f64; 3] = [66.0, 67.0, 68.0];

/// Cache sizes of Table VI, in kbytes (390 kbytes is the "UNIX" row).
pub const TABLE_VI_SIZES_KB: [u64; 6] = [390, 1024, 2048, 4096, 8192, 16_384];

/// Table VI: miss ratio (%) for the A5 trace with 4096-byte blocks.
/// Rows follow [`TABLE_VI_SIZES_KB`]; columns are write-through,
/// 30-second flush, 5-minute flush, delayed-write.
pub const TABLE_VI_MISS_PCT: [[f64; 4]; 6] = [
    [57.6, 49.2, 45.0, 43.1],
    [45.1, 36.6, 30.1, 25.0],
    [39.7, 31.2, 24.3, 17.7],
    [36.5, 28.0, 21.2, 13.5],
    [34.7, 26.2, 19.3, 11.2],
    [33.5, 25.0, 18.1, 9.6],
];

/// Block sizes of Table VII, in kbytes.
pub const TABLE_VII_BLOCK_KB: [u64; 6] = [1, 2, 4, 8, 16, 32];

/// Cache sizes of Table VII's disk-I/O columns, in kbytes.
pub const TABLE_VII_CACHE_KB: [u64; 4] = [400, 2048, 4096, 8192];

/// Table VII: optimal block size (kbytes) per cache size, from the
/// paper's text: 8 kbytes for a 400-kbyte cache, 16 kbytes for 4-Mbyte
/// and larger caches.
pub const TABLE_VII_OPTIMAL_BLOCK_KB: [u64; 4] = [8, 16, 16, 16];

/// Section 3.1: fraction of event gaps under 0.5 s / 10 s / 30 s.
pub const EVENT_GAP_FRACTIONS: [(f64, f64); 3] = [(0.5, 0.75), (10.0, 0.90), (30.0, 0.99)];

/// Figure 3: 70–80% of files are open less than half a second.
pub const OPEN_UNDER_HALF_SECOND: (f64, f64) = (0.70, 0.80);

/// Figure 4: 30–40% of new files live 179–181 s (the daemon spike).
/// (The scan prints "3-4%"; the daemon arithmetic — ~20 files every
/// three minutes — and the figure's visible jump identify the intended
/// 30–40%.)
pub const LIFETIME_DAEMON_SPIKE: (f64, f64) = (0.30, 0.40);

/// Table I: a 4-Mbyte cache eliminates 65–90% of disk accesses for file
/// data, depending on write policy.
pub const FOUR_MB_ELIMINATION: (f64, f64) = (0.65, 0.90);

/// Section 6.2: under delayed-write, about 75% of newly written blocks
/// die in the cache and are never written to disk.
pub const NEVER_WRITTEN_FRACTION: f64 = 0.75;

/// Section 6.4: Leffler et al. measured ~15% miss ratio on real 4.2 BSD
/// caches (vs ~50% predicted from file data alone).
pub const LEFFLER_MEASURED_MISS: f64 = 0.15;

/// Leffler et al.: the 4.3 BSD directory name cache achieves an 85% hit
/// ratio.
pub const LEFFLER_NAME_CACHE_HIT: f64 = 0.85;

/// Figure 2: ~80% of accesses touch files under 10 kbytes, which carry
/// only ~30% of the bytes.
pub const SMALL_FILE_FRACTIONS: (f64, f64) = (0.80, 0.30);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_vi_is_monotone_in_both_axes() {
        // Larger caches and lazier policies never hurt, per the paper.
        for r in 1..TABLE_VI_MISS_PCT.len() {
            for (c, &v) in TABLE_VI_MISS_PCT[r].iter().enumerate() {
                assert!(v <= TABLE_VI_MISS_PCT[r - 1][c]);
            }
        }
        for row in TABLE_VI_MISS_PCT {
            for c in 1..4 {
                assert!(row[c] <= row[c - 1]);
            }
        }
    }

    #[test]
    fn event_percentages_are_near_100() {
        for col in 0..3 {
            let total: f64 = TABLE_III_EVENT_PCT.iter().map(|r| r[col]).sum();
            assert!((total - 100.0).abs() < 2.0, "column {col}: {total}");
        }
    }

    #[test]
    fn shapes_are_consistent() {
        assert!(TABLE_VII_OPTIMAL_BLOCK_KB[0] < TABLE_VII_OPTIMAL_BLOCK_KB[3] * 2);
        assert!(OPEN_UNDER_HALF_SECOND.0 < OPEN_UNDER_HALF_SECOND.1);
        assert!(LIFETIME_DAEMON_SPIKE.0 < LIFETIME_DAEMON_SPIKE.1);
    }
}
