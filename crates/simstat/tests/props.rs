//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use simstat::{Distribution, LinearHistogram, LogHistogram, OnlineStats, WindowedSums};

proptest! {
    /// Welford accumulation matches the naive two-pass formulas.
    #[test]
    fn online_stats_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.population_variance() - var).abs() < 1e-4 * (1.0 + var));
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    /// Merging any split of a sample equals accumulating it sequentially.
    #[test]
    fn online_stats_merge_any_split(
        xs in prop::collection::vec(-1e5f64..1e5, 1..100),
        split in 0usize..100,
    ) {
        let split = split % (xs.len() + 1);
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut whole = OnlineStats::new();
        for (i, &x) in xs.iter().enumerate() {
            if i < split { a.add(x) } else { b.add(x) }
            whole.add(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (a.population_variance() - whole.population_variance()).abs()
                < 1e-4 * (1.0 + whole.population_variance())
        );
    }

    /// A distribution's CDF is monotone, bounded by 1, and conserves weight.
    #[test]
    fn distribution_cdf_invariants(
        samples in prop::collection::vec((0u64..10_000, 1u64..100), 1..300),
    ) {
        let mut d = Distribution::new();
        let mut total = 0u64;
        for &(v, w) in &samples {
            d.add(v, w);
            total += w;
        }
        prop_assert_eq!(d.total_weight(), total);
        let cdf = d.cdf();
        let mut prev = 0.0;
        for p in &cdf {
            prop_assert!(p.cumulative >= prev - 1e-12);
            prop_assert!(p.cumulative <= 1.0 + 1e-12);
            prev = p.cumulative;
        }
        prop_assert!((cdf.last().unwrap().cumulative - 1.0).abs() < 1e-9);
    }

    /// `fraction_le` agrees with a brute-force scan of the raw samples.
    #[test]
    fn distribution_fraction_le_matches_bruteforce(
        samples in prop::collection::vec((0u64..1000, 1u64..10), 1..200),
        limit in 0u64..1200,
    ) {
        let mut d = Distribution::new();
        for &(v, w) in &samples {
            d.add(v, w);
        }
        let total: u64 = samples.iter().map(|&(_, w)| w).sum();
        let le: u64 = samples.iter().filter(|&&(v, _)| v <= limit).map(|&(_, w)| w).sum();
        let expect = le as f64 / total as f64;
        prop_assert!((d.fraction_le(limit) - expect).abs() < 1e-9);
    }

    /// The p-th percentile has at least fraction p of weight at or below it,
    /// and is an observed value.
    #[test]
    fn distribution_percentile_definition(
        samples in prop::collection::vec((0u64..1000, 1u64..10), 1..200),
        p in 0.0f64..1.0,
    ) {
        let mut d = Distribution::new();
        for &(v, w) in &samples {
            d.add(v, w);
        }
        let q = d.percentile(p).unwrap();
        prop_assert!(samples.iter().any(|&(v, _)| v == q));
        prop_assert!(d.fraction_le(q) >= p - 1e-9);
        if q > 0 {
            // No smaller observed value already satisfies the target
            // (except the degenerate p = 0 case, where any q works).
            let below = d.fraction_le(q - 1);
            prop_assert!(below < p + 1e-9 || below == 0.0);
        }
    }

    /// Histograms never lose weight.
    #[test]
    fn histograms_conserve_weight(
        samples in prop::collection::vec((0u64..100_000, 1u64..50), 0..200),
    ) {
        let mut lin = LinearHistogram::new(100, 64, 32);
        let mut log = LogHistogram::new();
        let mut total = 0u64;
        for &(v, w) in &samples {
            lin.add_weighted(v, w);
            log.add_weighted(v, w);
            total += w;
        }
        prop_assert_eq!(lin.total_weight(), total);
        prop_assert_eq!(log.total_weight(), total);
        let bucket_sum: u64 = log.buckets().iter().map(|b| b.weight).sum();
        prop_assert_eq!(bucket_sum, total);
    }

    /// Every value lands in a log bucket whose range contains it.
    #[test]
    fn log_histogram_bucket_contains_value(v in 0u64..u64::MAX / 2) {
        let mut h = LogHistogram::new();
        h.add(v);
        let b = h.buckets().into_iter().find(|b| b.weight == 1).unwrap();
        prop_assert!(b.lo <= v);
        prop_assert!(v < b.hi || (b.hi < b.lo)); // hi wraps only at u64 top, excluded here
    }

    /// Windowed totals equal the raw sum and active counts are bounded by
    /// the number of distinct keys.
    #[test]
    fn windowed_sums_invariants(
        window in 1u64..1000,
        events in prop::collection::vec((0u64..100_000, 0u64..8, 0u64..5000), 1..300),
    ) {
        let mut w = WindowedSums::new(window);
        let mut total = 0u64;
        for &(t, k, a) in &events {
            w.add(t, k, a);
            total += a;
        }
        prop_assert_eq!(w.total(), total);
        let s = w.stats();
        prop_assert!(s.max_active <= w.distinct_keys());
        prop_assert!(s.active_per_window.mean() <= s.max_active as f64 + 1e-9);
        prop_assert!(s.window_count >= 1);
        // Total weight is conserved through the per-active samples.
        prop_assert!((s.sum_per_active.sum() - total as f64).abs() < 1e-6 * (1.0 + total as f64));
    }
}
