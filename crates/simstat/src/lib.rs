//! Streaming statistics for trace-driven simulation.
//!
//! This crate is the numerical substrate shared by the trace analyzer and
//! the cache simulator. It provides:
//!
//! * [`OnlineStats`] — single-pass mean / standard deviation / extrema
//!   (Welford's algorithm), used for the "± σ" entries of Table IV.
//! * [`LinearHistogram`] and [`LogHistogram`] — fixed-memory bucketed
//!   counters with weighted insertion, used for coarse distribution views.
//! * [`Distribution`] — an exact empirical distribution over `u64` values
//!   with per-sample weights; produces the cumulative curves of
//!   Figures 1–4 of the paper.
//! * [`WindowedSums`] — per-key activity accumulated over fixed time
//!   windows, used for the active-user analysis of Table IV.
//!
//! All types are allocation-light, deterministic, and free of floating
//! point except where a final ratio is reported.
//!
//! # Examples
//!
//! ```
//! use simstat::Distribution;
//!
//! let mut d = Distribution::new();
//! for len in [100u64, 200, 300, 400] {
//!     d.add(len, 1);
//! }
//! assert_eq!(d.fraction_le(200), 0.5);
//! assert_eq!(d.percentile(1.0), Some(400));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distribution;
mod histogram;
mod online;
mod windows;

pub use distribution::{CdfPoint, Distribution};
pub use histogram::{Bucket, LinearHistogram, LogHistogram};
pub use online::OnlineStats;
pub use windows::{WindowStats, WindowedSums};
