//! Fixed-memory bucketed counters with weighted insertion.

/// One bucket of a histogram: a half-open value range and its total weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bucket {
    /// Inclusive lower bound of the bucket's value range.
    pub lo: u64,
    /// Exclusive upper bound of the bucket's value range.
    pub hi: u64,
    /// Total weight accumulated in the bucket.
    pub weight: u64,
}

/// A histogram with equal-width buckets over `[lo, lo + width * n)`.
///
/// Values below the range land in an underflow bucket and values at or
/// above it in an overflow bucket, so no observation is ever lost.
///
/// # Examples
///
/// ```
/// use simstat::LinearHistogram;
///
/// // Ten 1-kbyte buckets covering 0..10240 bytes.
/// let mut h = LinearHistogram::new(0, 1024, 10);
/// h.add(100);
/// h.add(100);
/// h.add(5000);
/// assert_eq!(h.buckets()[0].weight, 2);
/// assert_eq!(h.buckets()[4].weight, 1);
/// assert_eq!(h.total_weight(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearHistogram {
    lo: u64,
    width: u64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LinearHistogram {
    /// Creates a histogram of `n` buckets of `width` starting at `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `n` is zero.
    pub fn new(lo: u64, width: u64, n: usize) -> Self {
        assert!(width > 0, "bucket width must be positive");
        assert!(n > 0, "bucket count must be positive");
        Self {
            lo,
            width,
            counts: vec![0; n],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation of `value` with weight 1.
    pub fn add(&mut self, value: u64) {
        self.add_weighted(value, 1);
    }

    /// Records an observation of `value` carrying `weight`.
    ///
    /// Weighted insertion is how byte-weighted distributions (Figures 1b,
    /// 2b, 4b of the paper) are built: each file contributes its size in
    /// bytes rather than a count of one.
    pub fn add_weighted(&mut self, value: u64, weight: u64) {
        if value < self.lo {
            self.underflow += weight;
            return;
        }
        let idx = ((value - self.lo) / self.width) as usize;
        if idx >= self.counts.len() {
            self.overflow += weight;
        } else {
            self.counts[idx] += weight;
        }
    }

    /// Weight recorded below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Weight recorded at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total weight recorded, including under/overflow.
    pub fn total_weight(&self) -> u64 {
        self.underflow + self.overflow + self.counts.iter().sum::<u64>()
    }

    /// The in-range buckets, in increasing value order.
    pub fn buckets(&self) -> Vec<Bucket> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &weight)| Bucket {
                lo: self.lo + i as u64 * self.width,
                hi: self.lo + (i as u64 + 1) * self.width,
                weight,
            })
            .collect()
    }

    /// Fraction of total weight at values `< limit` (counting underflow,
    /// approximating partial buckets by their lower edge).
    ///
    /// Returns `0.0` when the histogram is empty.
    pub fn fraction_below(&self, limit: u64) -> f64 {
        let total = self.total_weight();
        if total == 0 {
            return 0.0;
        }
        let mut acc = self.underflow;
        for b in self.buckets() {
            if b.hi <= limit {
                acc += b.weight;
            }
        }
        acc as f64 / total as f64
    }
}

/// A histogram with power-of-two buckets: `{0}`, `[1,2)`, `[2,4)`, `[4,8)`, …
///
/// Log-spaced buckets match the wide dynamic range of file sizes and
/// durations in file system traces (bytes to megabytes, milliseconds to
/// hours) with a few dozen buckets.
///
/// # Examples
///
/// ```
/// use simstat::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// h.add(0);
/// h.add(1);
/// h.add(3);
/// h.add(1000);
/// assert_eq!(h.total_weight(), 4);
/// let buckets = h.buckets();
/// assert_eq!(buckets[0].lo, 0); // the {0} bucket
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// `counts[0]` holds value 0; `counts[k]` holds `[2^(k-1), 2^k)`.
    counts: Vec<u64>,
}

impl LogHistogram {
    /// Creates an empty log histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one observation of `value` with weight 1.
    pub fn add(&mut self, value: u64) {
        self.add_weighted(value, 1);
    }

    /// Records an observation of `value` carrying `weight`.
    pub fn add_weighted(&mut self, value: u64, weight: u64) {
        let idx = Self::bucket_index(value);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += weight;
    }

    /// Total weight recorded.
    pub fn total_weight(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The non-empty prefix of buckets, in increasing value order.
    pub fn buckets(&self) -> Vec<Bucket> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &weight)| {
                let (lo, hi) = if i == 0 {
                    (0, 1)
                } else {
                    (1u64 << (i - 1), 1u64 << i)
                };
                Bucket { lo, hi, weight }
            })
            .collect()
    }

    /// Fraction of total weight at values `<= limit`, counting whole
    /// buckets whose range lies at or below `limit`.
    ///
    /// Returns `0.0` when the histogram is empty.
    pub fn fraction_le(&self, limit: u64) -> f64 {
        let total = self.total_weight();
        if total == 0 {
            return 0.0;
        }
        let mut acc = 0u64;
        for b in self.buckets() {
            if b.hi - 1 <= limit {
                acc += b.weight;
            }
        }
        acc as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_places_values_in_correct_buckets() {
        let mut h = LinearHistogram::new(10, 5, 4); // [10,15) [15,20) [20,25) [25,30)
        h.add(10);
        h.add(14);
        h.add(15);
        h.add(29);
        let b = h.buckets();
        assert_eq!(b[0].weight, 2);
        assert_eq!(b[1].weight, 1);
        assert_eq!(b[2].weight, 0);
        assert_eq!(b[3].weight, 1);
    }

    #[test]
    fn linear_under_and_overflow() {
        let mut h = LinearHistogram::new(10, 5, 2);
        h.add(9);
        h.add(20); // Exactly at the top edge: overflow.
        h.add(100);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total_weight(), 3);
    }

    #[test]
    fn linear_weighted_insertion() {
        let mut h = LinearHistogram::new(0, 10, 2);
        h.add_weighted(5, 100);
        h.add_weighted(15, 50);
        assert_eq!(h.buckets()[0].weight, 100);
        assert_eq!(h.buckets()[1].weight, 50);
        assert_eq!(h.total_weight(), 150);
    }

    #[test]
    fn linear_fraction_below() {
        let mut h = LinearHistogram::new(0, 10, 4);
        for v in [1, 2, 3, 15, 25, 35] {
            h.add(v);
        }
        assert!((h.fraction_below(10) - 0.5).abs() < 1e-12);
        assert!((h.fraction_below(40) - 1.0).abs() < 1e-12);
        assert_eq!(h.fraction_below(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn linear_zero_width_panics() {
        let _ = LinearHistogram::new(0, 0, 4);
    }

    #[test]
    fn log_bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn log_add_and_ranges() {
        let mut h = LogHistogram::new();
        h.add(0);
        h.add(1);
        h.add(2);
        h.add(3);
        h.add(7);
        let b = h.buckets();
        assert_eq!(
            b[0],
            Bucket {
                lo: 0,
                hi: 1,
                weight: 1
            }
        );
        assert_eq!(
            b[1],
            Bucket {
                lo: 1,
                hi: 2,
                weight: 1
            }
        );
        assert_eq!(
            b[2],
            Bucket {
                lo: 2,
                hi: 4,
                weight: 2
            }
        );
        assert_eq!(
            b[3],
            Bucket {
                lo: 4,
                hi: 8,
                weight: 1
            }
        );
    }

    #[test]
    fn log_fraction_le() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 4, 8] {
            h.add(v);
        }
        // Buckets: [1,2) [2,4) [4,8) [8,16); each weight 1.
        assert!((h.fraction_le(1) - 0.25).abs() < 1e-12);
        assert!((h.fraction_le(3) - 0.5).abs() < 1e-12);
        assert!((h.fraction_le(7) - 0.75).abs() < 1e-12);
        assert!((h.fraction_le(15) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_empty_fraction_is_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.fraction_le(100), 0.0);
        assert_eq!(h.total_weight(), 0);
    }
}
