//! Exact empirical distributions with per-sample weights.

/// One point of a cumulative distribution curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfPoint {
    /// The observed value.
    pub value: u64,
    /// Fraction of total weight at values `<= value`, in `[0, 1]`.
    pub cumulative: f64,
}

/// An exact empirical distribution over `u64` values with `u64` weights.
///
/// Samples are buffered and sorted lazily on first query. This is the
/// workhorse behind the paper's cumulative-distribution figures: each
/// figure is a `Distribution` weighted either by count (Figures 1a, 2a,
/// 3, 4a) or by bytes transferred / written (Figures 1b, 2b, 4b).
///
/// # Examples
///
/// ```
/// use simstat::Distribution;
///
/// let mut d = Distribution::new();
/// d.add(10, 1);
/// d.add(20, 3);
/// assert_eq!(d.fraction_le(10), 0.25);
/// assert_eq!(d.percentile(0.5), Some(20));
/// assert_eq!(d.total_weight(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Distribution {
    /// (value, weight) pairs; sorted by value iff `sorted`.
    samples: Vec<(u64, u64)>,
    total_weight: u64,
    sorted: bool,
}

/// Equality compares the *multiset* of weighted observations: the order
/// of `add` calls and the coalescing state are irrelevant, so two runs
/// that record the same residencies through differently ordered code
/// paths (hash-map iteration, per-capacity derivation) compare equal.
impl PartialEq for Distribution {
    fn eq(&self, other: &Self) -> bool {
        if self.total_weight != other.total_weight {
            return false;
        }
        if self.sorted && other.sorted {
            return self.samples == other.samples;
        }
        self.canonical_samples() == other.canonical_samples()
    }
}

impl Eq for Distribution {}

impl Distribution {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation of `value` carrying `weight`.
    ///
    /// Zero-weight observations are ignored.
    pub fn add(&mut self, value: u64, weight: u64) {
        if weight == 0 {
            return;
        }
        self.samples.push((value, weight));
        self.total_weight += weight;
        self.sorted = false;
    }

    /// Number of distinct `add` calls retained.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Sum of all weights.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// Returns `true` if no weighted observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total_weight == 0
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            // Coalesce duplicate values so query scans stay short even for
            // multi-million-event traces with few distinct values.
            let mut out: Vec<(u64, u64)> = Vec::with_capacity(self.samples.len());
            for &(v, w) in &self.samples {
                match out.last_mut() {
                    Some((lv, lw)) if *lv == v => *lw += w,
                    _ => out.push((v, w)),
                }
            }
            self.samples = out;
            self.sorted = true;
        }
    }

    /// The sorted, coalesced form of the samples without mutating the
    /// buffer (the basis of order-insensitive equality).
    fn canonical_samples(&self) -> Vec<(u64, u64)> {
        let mut v = self.samples.clone();
        v.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(v.len());
        for (value, weight) in v {
            match out.last_mut() {
                Some((lv, lw)) if *lv == value => *lw += weight,
                _ => out.push((value, weight)),
            }
        }
        out
    }

    /// Sorts and coalesces the buffered samples now rather than at the
    /// first query.
    ///
    /// Useful before caching or cloning: a prepared distribution (and
    /// any clone of it) answers queries without re-sorting, and holds
    /// one entry per distinct value instead of one per `add` call.
    pub fn prepare(&mut self) {
        self.ensure_sorted();
    }

    /// Fraction of total weight at values `<= limit`, in `[0, 1]`.
    ///
    /// Returns `0.0` when empty.
    pub fn fraction_le(&mut self, limit: u64) -> f64 {
        if self.total_weight == 0 {
            return 0.0;
        }
        self.ensure_sorted();
        // Binary search for the first value > limit.
        let idx = self.samples.partition_point(|&(v, _)| v <= limit);
        let acc: u64 = self.samples[..idx].iter().map(|&(_, w)| w).sum();
        acc as f64 / self.total_weight as f64
    }

    /// Fraction of total weight at values strictly `< limit`.
    pub fn fraction_lt(&mut self, limit: u64) -> f64 {
        if limit == 0 {
            return 0.0;
        }
        self.fraction_le(limit - 1)
    }

    /// Smallest value `v` such that at least `p` of the weight is `<= v`.
    ///
    /// `p` is clamped to `[0, 1]`. Returns `None` when empty.
    pub fn percentile(&mut self, p: f64) -> Option<u64> {
        if self.total_weight == 0 {
            return None;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 1.0);
        let target = (p * self.total_weight as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for &(v, w) in &self.samples {
            acc += w;
            if acc >= target {
                return Some(v);
            }
        }
        self.samples.last().map(|&(v, _)| v)
    }

    /// Weighted arithmetic mean, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.total_weight == 0 {
            return 0.0;
        }
        let sum: f64 = self.samples.iter().map(|&(v, w)| v as f64 * w as f64).sum();
        sum / self.total_weight as f64
    }

    /// The full cumulative curve, one point per distinct value.
    ///
    /// Suitable for plotting: `cumulative` is nondecreasing and ends at 1.
    pub fn cdf(&mut self) -> Vec<CdfPoint> {
        self.ensure_sorted();
        let total = self.total_weight as f64;
        let mut acc = 0u64;
        self.samples
            .iter()
            .map(|&(v, w)| {
                acc += w;
                CdfPoint {
                    value: v,
                    cumulative: acc as f64 / total,
                }
            })
            .collect()
    }

    /// Samples the cumulative curve at the given values.
    ///
    /// This is how the paper's figures are tabulated: a fixed grid on the
    /// x-axis (e.g. seconds, kilobytes) and the cumulative fraction at
    /// each grid point.
    pub fn cdf_at(&mut self, grid: &[u64]) -> Vec<CdfPoint> {
        grid.iter()
            .map(|&g| CdfPoint {
                value: g,
                cumulative: self.fraction_le(g),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_distribution() {
        let mut d = Distribution::new();
        assert!(d.is_empty());
        assert_eq!(d.fraction_le(100), 0.0);
        assert_eq!(d.percentile(0.5), None);
        assert_eq!(d.mean(), 0.0);
        assert!(d.cdf().is_empty());
    }

    #[test]
    fn equality_ignores_add_order_and_coalescing() {
        let mut a = Distribution::new();
        a.add(20, 3);
        a.add(10, 1);
        a.add(10, 1);
        let mut b = Distribution::new();
        b.add(10, 2);
        b.add(20, 3);
        assert_eq!(a, b);
        // Querying one side (which sorts and coalesces it) must not
        // break equality with the unsorted side.
        assert_eq!(a.percentile(0.5), Some(20));
        assert_eq!(a, b);
        b.add(10, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_weight_ignored() {
        let mut d = Distribution::new();
        d.add(5, 0);
        assert!(d.is_empty());
        assert_eq!(d.sample_count(), 0);
    }

    #[test]
    fn fraction_le_basic() {
        let mut d = Distribution::new();
        d.add(1, 1);
        d.add(2, 1);
        d.add(3, 1);
        d.add(4, 1);
        assert_eq!(d.fraction_le(0), 0.0);
        assert_eq!(d.fraction_le(2), 0.5);
        assert_eq!(d.fraction_le(4), 1.0);
        assert_eq!(d.fraction_le(u64::MAX), 1.0);
        assert_eq!(d.fraction_lt(1), 0.0);
        assert_eq!(d.fraction_lt(3), 0.5);
    }

    #[test]
    fn weights_shift_percentiles() {
        let mut d = Distribution::new();
        d.add(10, 9);
        d.add(1000, 1);
        assert_eq!(d.percentile(0.5), Some(10));
        assert_eq!(d.percentile(0.9), Some(10));
        assert_eq!(d.percentile(0.95), Some(1000));
        assert_eq!(d.percentile(1.0), Some(1000));
    }

    #[test]
    fn percentile_clamps() {
        let mut d = Distribution::new();
        d.add(7, 1);
        assert_eq!(d.percentile(-3.0), Some(7));
        assert_eq!(d.percentile(42.0), Some(7));
    }

    #[test]
    fn duplicate_values_coalesce() {
        let mut d = Distribution::new();
        for _ in 0..1000 {
            d.add(5, 1);
        }
        d.add(6, 1);
        assert_eq!(d.fraction_le(5), 1000.0 / 1001.0);
        d.ensure_sorted();
        assert_eq!(d.samples.len(), 2);
    }

    #[test]
    fn mean_weighted() {
        let mut d = Distribution::new();
        d.add(10, 1);
        d.add(20, 3);
        assert!((d.mean() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut d = Distribution::new();
        for (v, w) in [(3, 2), (1, 5), (9, 1), (3, 1)] {
            d.add(v, w);
        }
        let cdf = d.cdf();
        assert_eq!(cdf.len(), 3); // Values 1, 3, 9.
        for pair in cdf.windows(2) {
            assert!(pair[0].value < pair[1].value);
            assert!(pair[0].cumulative <= pair[1].cumulative);
        }
        assert!((cdf.last().unwrap().cumulative - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_at_grid() {
        let mut d = Distribution::new();
        d.add(5, 1);
        d.add(15, 1);
        let pts = d.cdf_at(&[0, 10, 20]);
        assert_eq!(pts[0].cumulative, 0.0);
        assert_eq!(pts[1].cumulative, 0.5);
        assert_eq!(pts[2].cumulative, 1.0);
    }

    #[test]
    fn interleaved_add_and_query() {
        let mut d = Distribution::new();
        d.add(1, 1);
        assert_eq!(d.fraction_le(1), 1.0);
        d.add(2, 1);
        assert_eq!(d.fraction_le(1), 0.5);
        d.add(0, 2);
        assert_eq!(d.fraction_le(0), 0.5);
    }
}
