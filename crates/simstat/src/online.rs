//! Single-pass moment accumulation (Welford's algorithm).

/// Streaming mean, variance, and extrema over a sequence of observations.
///
/// Uses Welford's numerically stable single-pass update. The paper reports
/// several quantities as `mean (± standard deviation)` (Table IV); this
/// type produces exactly those two numbers without buffering samples.
///
/// # Examples
///
/// ```
/// use simstat::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.add(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_stddev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (parallel-combine rule).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Population variance (divides by `n`), or `0.0` for fewer than one
    /// observation.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`), or `0.0` for fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.add(42.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs = [1.5, -2.0, 3.25, 10.0, 0.0, 7.5, -1.25];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.population_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        let ys = [9.0, 2.0, 6.0];
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        let mut all = OnlineStats::new();
        for &x in &xs {
            a.add(x);
            all.add(x);
        }
        for &y in &ys {
            b.add(y);
            all.add(y);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.add(1.0);
        a.add(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn sum_is_mean_times_count() {
        let mut s = OnlineStats::new();
        s.add(1.0);
        s.add(2.0);
        s.add(3.0);
        assert!((s.sum() - 6.0).abs() < 1e-12);
    }
}
