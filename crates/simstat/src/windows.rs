//! Per-key activity accumulated over fixed time windows.

use std::collections::{BTreeMap, HashMap};

use crate::OnlineStats;

/// Summary statistics over the windows of a [`WindowedSums`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Number of windows spanned by the observations (including empty ones).
    pub window_count: u64,
    /// Greatest number of distinct active keys in any single window.
    pub max_active: u64,
    /// Active-key count per window (empty windows count as zero).
    pub active_per_window: OnlineStats,
    /// Per-(window, key) sums — e.g. bytes transferred by one user in one
    /// window. Only windows/keys with activity contribute samples.
    pub sum_per_active: OnlineStats,
}

/// Accumulates per-key amounts into fixed-length time windows.
///
/// This models the paper's Table IV analysis: a *user* (key) is *active*
/// in a window if any trace event for that user falls inside it, and the
/// per-active-user throughput is the bytes transferred by that user in
/// that window divided by the window length.
///
/// Times and window lengths are in arbitrary integer ticks (the trace
/// uses milliseconds).
///
/// # Examples
///
/// ```
/// use simstat::WindowedSums;
///
/// let mut w = WindowedSums::new(10_000); // 10-second windows
/// w.add(500, 1, 4096);   // user 1, 4 kbytes, first window
/// w.add(900, 1, 4096);
/// w.add(12_000, 2, 100); // user 2, second window
/// let stats = w.stats();
/// assert_eq!(stats.window_count, 2);
/// assert_eq!(stats.max_active, 1);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedSums {
    window_len: u64,
    /// (window index, key) → summed amount. Ordered so that [`stats`]
    /// feeds its running moments in a deterministic order — repeated
    /// analyses of the same observations are bit-identical, which the
    /// streaming-vs-materialized pipeline equivalence tests rely on.
    ///
    /// [`stats`]: WindowedSums::stats
    sums: BTreeMap<(u64, u64), u64>,
    first_window: Option<u64>,
    last_window: u64,
}

impl WindowedSums {
    /// Creates an accumulator with the given window length in ticks.
    ///
    /// # Panics
    ///
    /// Panics if `window_len` is zero.
    pub fn new(window_len: u64) -> Self {
        assert!(window_len > 0, "window length must be positive");
        Self {
            window_len,
            sums: BTreeMap::new(),
            first_window: None,
            last_window: 0,
        }
    }

    /// Window length in ticks.
    pub fn window_len(&self) -> u64 {
        self.window_len
    }

    /// Records `amount` for `key` at time `time`.
    ///
    /// An `amount` of zero still marks the key active in its window —
    /// the paper counts a user active on *any* trace event, including
    /// ones that transfer no data (e.g. `unlink`).
    pub fn add(&mut self, time: u64, key: u64, amount: u64) {
        let w = time / self.window_len;
        *self.sums.entry((w, key)).or_insert(0) += amount;
        self.first_window = Some(self.first_window.map_or(w, |f| f.min(w)));
        self.last_window = self.last_window.max(w);
    }

    /// Total amount recorded across all windows and keys.
    pub fn total(&self) -> u64 {
        self.sums.values().sum()
    }

    /// Number of distinct keys seen.
    pub fn distinct_keys(&self) -> u64 {
        let mut keys: Vec<u64> = self.sums.keys().map(|&(_, k)| k).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len() as u64
    }

    /// Computes summary statistics over the spanned windows.
    ///
    /// Windows between the first and last observation that saw no
    /// activity contribute zero to `active_per_window` but produce no
    /// `sum_per_active` samples, matching the paper's averaging.
    pub fn stats(&self) -> WindowStats {
        let Some(first) = self.first_window else {
            return WindowStats {
                window_count: 0,
                max_active: 0,
                active_per_window: OnlineStats::new(),
                sum_per_active: OnlineStats::new(),
            };
        };
        let window_count = self.last_window - first + 1;
        let mut active: HashMap<u64, u64> = HashMap::new();
        let mut sum_per_active = OnlineStats::new();
        for (&(w, _), &amount) in &self.sums {
            *active.entry(w).or_insert(0) += 1;
            sum_per_active.add(amount as f64);
        }
        let mut active_per_window = OnlineStats::new();
        let mut max_active = 0u64;
        for w in first..=self.last_window {
            let a = active.get(&w).copied().unwrap_or(0);
            active_per_window.add(a as f64);
            max_active = max_active.max(a);
        }
        WindowStats {
            window_count,
            max_active,
            active_per_window,
            sum_per_active,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let w = WindowedSums::new(100);
        let s = w.stats();
        assert_eq!(s.window_count, 0);
        assert_eq!(s.max_active, 0);
        assert_eq!(s.active_per_window.count(), 0);
    }

    #[test]
    fn single_window_single_key() {
        let mut w = WindowedSums::new(100);
        w.add(10, 7, 50);
        w.add(20, 7, 25);
        let s = w.stats();
        assert_eq!(s.window_count, 1);
        assert_eq!(s.max_active, 1);
        assert_eq!(s.active_per_window.mean(), 1.0);
        assert_eq!(s.sum_per_active.mean(), 75.0);
        assert_eq!(w.total(), 75);
        assert_eq!(w.distinct_keys(), 1);
    }

    #[test]
    fn empty_middle_window_counts_as_zero_active() {
        let mut w = WindowedSums::new(100);
        w.add(0, 1, 10);
        w.add(250, 1, 10); // Window 2; window 1 is empty.
        let s = w.stats();
        assert_eq!(s.window_count, 3);
        assert!((s.active_per_window.mean() - 2.0 / 3.0).abs() < 1e-12);
        // Only two (window,key) samples feed the per-active stats.
        assert_eq!(s.sum_per_active.count(), 2);
    }

    #[test]
    fn zero_amount_marks_active() {
        let mut w = WindowedSums::new(100);
        w.add(10, 3, 0);
        let s = w.stats();
        assert_eq!(s.max_active, 1);
        assert_eq!(s.sum_per_active.mean(), 0.0);
    }

    #[test]
    fn multiple_keys_in_one_window() {
        let mut w = WindowedSums::new(1000);
        w.add(1, 1, 5);
        w.add(2, 2, 10);
        w.add(3, 3, 15);
        let s = w.stats();
        assert_eq!(s.max_active, 3);
        assert_eq!(s.active_per_window.mean(), 3.0);
        assert_eq!(s.sum_per_active.mean(), 10.0);
        assert_eq!(w.distinct_keys(), 3);
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn zero_window_panics() {
        let _ = WindowedSums::new(0);
    }

    #[test]
    fn window_boundary_assignment() {
        let mut w = WindowedSums::new(100);
        w.add(99, 1, 1); // Window 0.
        w.add(100, 1, 1); // Window 1.
        let s = w.stats();
        assert_eq!(s.window_count, 2);
        assert_eq!(s.sum_per_active.count(), 2);
    }
}
