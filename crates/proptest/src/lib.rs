//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real crates-io
//! `proptest` cannot be fetched. This crate implements the API subset
//! the workspace's property tests use: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, range/tuple/`Just`/
//! [`prop_oneof!`]/`prop::collection::vec`/[`any`] strategies,
//! `prop_map`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its generated inputs
//!   (via the panic message of the failed assertion plus the case
//!   seed) but is not minimized;
//! * **derived seeding** — each test's random stream is seeded from
//!   the test's module path and case index, so runs are fully
//!   deterministic and identical across machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Configuration and the per-case random source.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// The random source handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Deterministic stream for one (test, case) pair.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case))),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            use rand::Rng;
            self.inner.gen::<f64>()
        }

        /// Uniform integer in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            use rand::Rng;
            assert!(n > 0);
            self.inner.gen_range(0..n)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use core::marker::PhantomData;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of value generated.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    let wide = (rng.next_u64() as u128).wrapping_mul(span);
                    self.start + (wide >> 64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    let wide = (rng.next_u64() as u128).wrapping_mul(span);
                    lo + (wide >> 64) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// A boxed `prop_oneof!` arm: draws one value from the rng.
    pub type OneOfArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct OneOf<T> {
        arms: Vec<OneOfArm<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds from the macro-collected arms.
        pub fn new(arms: Vec<OneOfArm<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }

    /// Strategy for any value of a primitive type ([`crate::arbitrary::any`]).
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(pub(crate) PhantomData<T>);
}

pub mod arbitrary {
    //! The `any::<T>()` entry point for primitive types.

    use super::strategy::{Any, Strategy};
    use super::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// Output of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prop {
    //! Namespace mirror so `prop::collection::vec` resolves.

    pub use super::collection;
}

pub mod prelude {
    //! Everything a property test file needs.

    pub use super::arbitrary::any;
    pub use super::prop;
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure; no
/// shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        $crate::strategy::OneOf::new(vec![
            $({
                let s = $strat;
                Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }) as Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    }};
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// item runs its body over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&{ $strat }, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("t", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u64..10), &mut rng);
            assert!((5..10).contains(&v));
            let w = Strategy::generate(&(1u32..=4), &mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("t2", 0);
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(0u64..4, 1..7), &mut rng);
            assert!((1..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::test_runner::TestRng::for_case("t3", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself works end to end.
        #[test]
        fn macro_roundtrip(x in 0u64..100, v in prop::collection::vec(any::<bool>(), 0..10)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 10);
        }

        #[test]
        fn mapped_strategy(y in (0u64..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(y % 2, 0);
            prop_assert!(y < 20);
        }
    }
}
