//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real crates-io
//! `criterion` cannot be fetched. This crate keeps the workspace's
//! benchmark sources compiling and running: groups, `bench_function`,
//! `Throughput`, `sample_size`, [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is simple wall-clock sampling — warm up once, size the
//! iteration count to a fixed per-sample budget, take `sample_size`
//! samples, and report min/mean/max (plus derived throughput). There
//! is no outlier rejection, plotting, or saved baselines; the numbers
//! are honest but the statistics are minimal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting
/// benchmarked work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units for derived per-second rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured routine processes this many bytes per iteration.
    Bytes(u64),
    /// The measured routine processes this many elements per iteration.
    Elements(u64),
}

/// Top-level benchmark context (one per binary run).
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 30,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
    }
}

/// A named set of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration work for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let full = if self.name.is_empty() {
            name
        } else {
            format!("{}/{}", self.name, name)
        };

        // Warm-up and calibration: one iteration, timed.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));

        // Budget ~20 ms per sample (or one iteration if slower).
        let budget = Duration::from_millis(20);
        let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;

        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12}/s", human_bytes((n as f64 / mean) as u64))
            }
            Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / mean),
            None => String::new(),
        };
        println!(
            "{full:<44} [{} {} {}]{rate}",
            human_time(min),
            human_time(mean),
            human_time(max),
        );
        self
    }

    /// Ends the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn human_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2} KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

/// Timing handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the harness-chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut count = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                black_box(count)
            })
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn human_units() {
        assert!(human_time(2e-9).contains("ns"));
        assert!(human_time(2e-6).contains("µs"));
        assert!(human_time(2e-3).contains("ms"));
        assert!(human_time(2.0).contains("s"));
        assert_eq!(human_bytes(512), "512 B");
        assert!(human_bytes(5 << 20).contains("MiB"));
    }
}
