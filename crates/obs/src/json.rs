//! Minimal JSON emission for metric snapshots.
//!
//! The build environment is offline, so `serde_json` cannot be added;
//! this module implements the small subset needed to serialize a
//! [`crate::Snapshot`]: object/array nesting, string escaping per RFC
//! 8259, and integer/float numbers. Emission order is caller-controlled
//! (snapshots iterate sorted maps), so output is deterministic.

use std::fmt::Write as _;

/// Escapes `s` as the *contents* of a JSON string (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An indentation-aware JSON writer.
///
/// # Examples
///
/// ```
/// use obs::json::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("answer");
/// w.number(42);
/// w.end_object();
/// assert_eq!(w.finish(), "{\n  \"answer\": 42\n}");
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    depth: usize,
    /// Whether the current container already holds a value (so the next
    /// entry needs a comma).
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn pad(&mut self) {
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
    }

    /// Separates from the previous sibling and indents, if inside a
    /// container and not immediately after a key.
    fn prepare_value(&mut self) {
        if self.out.ends_with(": ") {
            return; // Value follows its key on the same line.
        }
        if let Some(needs) = self.needs_comma.last_mut() {
            if *needs {
                self.out.push(',');
            }
            *needs = true;
            self.out.push('\n');
            self.pad();
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.prepare_value();
        self.out.push('{');
        self.depth += 1;
        self.needs_comma.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        let had_values = self.needs_comma.pop().unwrap_or(false);
        self.depth -= 1;
        if had_values {
            self.out.push('\n');
            self.pad();
        }
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.prepare_value();
        self.out.push('[');
        self.depth += 1;
        self.needs_comma.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        let had_values = self.needs_comma.pop().unwrap_or(false);
        self.depth -= 1;
        if had_values {
            self.out.push('\n');
            self.pad();
        }
        self.out.push(']');
    }

    /// Writes an object key; the next value lands on the same line.
    pub fn key(&mut self, name: &str) {
        self.prepare_value();
        let _ = write!(self.out, "\"{}\": ", escape(name));
        // The key itself must not trigger a comma for its value.
    }

    /// Writes an unsigned integer value.
    pub fn number(&mut self, v: u64) {
        self.prepare_value();
        let _ = write!(self.out, "{v}");
    }

    /// Writes a string value.
    pub fn string(&mut self, v: &str) {
        self.prepare_value();
        let _ = write!(self.out, "\"{}\"", escape(v));
    }

    /// Returns the accumulated JSON text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn nested_structure_renders() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("counters");
        w.begin_object();
        w.key("a");
        w.number(1);
        w.key("b");
        w.number(2);
        w.end_object();
        w.key("list");
        w.begin_array();
        w.number(3);
        w.number(4);
        w.end_array();
        w.key("name");
        w.string("x\"y");
        w.end_object();
        let s = w.finish();
        assert_eq!(
            s,
            "{\n  \"counters\": {\n    \"a\": 1,\n    \"b\": 2\n  },\n  \
             \"list\": [\n    3,\n    4\n  ],\n  \"name\": \"x\\\"y\"\n}"
        );
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("empty_obj");
        w.begin_object();
        w.end_object();
        w.key("empty_arr");
        w.begin_array();
        w.end_array();
        w.end_object();
        assert_eq!(
            w.finish(),
            "{\n  \"empty_obj\": {},\n  \"empty_arr\": []\n}"
        );
    }
}
