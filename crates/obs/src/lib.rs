//! Unified observability for the trace-driven pipeline.
//!
//! The paper's entire method is measurement, yet until this crate the
//! pipeline's own behavior — buffer/name/inode cache hit rates in
//! `bsdfs`, codec throughput in `fstrace`, event generation in
//! `workload`, per-cell simulation cost in `cachesim::sweep` — was
//! scattered across bespoke stat structs with no common export. `obs`
//! provides the one mechanism they all share:
//!
//! * [`Counter`] — a lock-free atomic counter. Handles are cheap
//!   [`Clone`]s of one shared cell, so a subsystem can keep its handle
//!   in a hot path while the same cell is registered for export.
//! * [`Gauge`] — a lock-free high-water-mark gauge (`fetch_max`), for
//!   peak-occupancy claims such as the streaming pipeline's
//!   `buffered_records_peak`.
//! * [`Histogram`] — a [`simstat::LogHistogram`]-backed value recorder
//!   (power-of-two buckets) with count/sum/min/max, for latencies and
//!   sizes.
//! * [`Span`] — wall-clock timing of named scopes: total nanoseconds
//!   and entry count, recorded via RAII guards or explicit
//!   [`Span::record_ns`].
//! * [`Registry`] — a name → metric map with get-or-register semantics
//!   and [`Registry::snapshot`], which freezes every metric into a
//!   [`Snapshot`] that serializes to a stable JSON schema
//!   (see [`Snapshot::to_json`]). A process-wide registry is available
//!   via [`global`]; per-instance metrics (one per file system, say)
//!   attach existing handles under a caller-chosen prefix.
//!
//! The JSON encoder is built in ([`json`]): the build environment is
//! offline, so `serde`/`serde_json` cannot be fetched, and the schema
//! is small enough that a hand-rolled writer keeps the crate
//! dependency-free. The schema is versioned (`"obs/v1"`) and its field
//! order is deterministic (B-tree iteration, sorted names), so two
//! identical runs produce byte-identical snapshots up to wall-clock
//! timing values.
//!
//! # Zero-division convention
//!
//! Every derived ratio in the workspace (miss ratios, hit ratios,
//! never-written fractions) goes through [`ratio`]: an empty
//! denominator yields `0.0`, never `NaN` — "no traffic" reads as "no
//! misses", and reports render `0.0%` instead of `NaN%`.
//!
//! # Examples
//!
//! ```
//! use obs::Registry;
//!
//! let reg = Registry::new();
//! let hits = reg.counter("cache.hits");
//! hits.add(3);
//! reg.counter("cache.hits").inc(); // Same cell: get-or-register.
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("cache.hits"), Some(4));
//! assert!(snap.to_json().contains("\"cache.hits\": 4"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod metric;
mod registry;

pub use metric::{Counter, Gauge, HistSnapshot, Histogram, Span, SpanGuard, SpanSnapshot};
pub use registry::{Registry, Snapshot};

/// The process-wide registry.
///
/// Subsystems that meter process-global activity (codec throughput,
/// sweep expansions) register here; `repro --metrics` snapshots it at
/// the end of a run.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

/// The workspace-wide zero-division convention for derived ratios.
///
/// Returns `numerator / denominator`, or `0.0` when `denominator` is
/// zero. Every hit/miss/elimination ratio in `bsdfs` and `cachesim`
/// routes through this function so that an idle cache uniformly reports
/// a ratio of zero (not `NaN`, not `Inf`), and the choice is made in
/// exactly one documented place.
pub fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_normal_division() {
        assert!((ratio(1, 4) - 0.25).abs() < 1e-12);
        assert!((ratio(3, 3) - 1.0).abs() < 1e-12);
        assert_eq!(ratio(0, 5), 0.0);
    }

    #[test]
    fn ratio_zero_denominator_is_zero_not_nan() {
        assert_eq!(ratio(0, 0), 0.0);
        assert_eq!(ratio(17, 0), 0.0);
        assert!(!ratio(u64::MAX, 0).is_nan());
    }

    #[test]
    fn ratio_large_values_stay_finite() {
        assert!(ratio(u64::MAX, 1).is_finite());
        assert!(ratio(1, u64::MAX) > 0.0);
    }

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("obs.test.shared");
        let before = c.get();
        global().counter("obs.test.shared").add(2);
        assert_eq!(c.get(), before + 2);
    }
}
