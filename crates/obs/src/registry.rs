//! Name → metric registry and frozen snapshots.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

use crate::json::JsonWriter;
use crate::metric::{Counter, Gauge, HistSnapshot, Histogram, Span, SpanSnapshot};

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Span(Span),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Span(_) => "span",
        }
    }
}

/// A named collection of metrics.
///
/// Names are dotted paths (`"bsdfs.a5.bufcache.read_hits"`); the first
/// component is the subsystem. Lookup methods get-or-register: asking
/// twice for the same name returns handles to the same cell, and
/// asking for an existing name as a *different* metric kind panics —
/// that is always a naming bug.
///
/// `Registry::new` is `const`, so a registry can live in a `static`
/// ([`crate::global`]) without lazy-init machinery.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub const fn new() -> Self {
        Registry {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.metrics.lock().expect("registry lock");
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Returns the counter registered under `name`, creating it if new.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge registered under `name`, creating it if new.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram registered under `name`, creating it if new.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Returns the span registered under `name`, creating it if new.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a different metric kind.
    pub fn span(&self, name: &str) -> Span {
        match self.get_or_insert(name, || Metric::Span(Span::new())) {
            Metric::Span(s) => s,
            other => panic!("metric {name:?} is a {}, not a span", other.kind()),
        }
    }

    /// Registers an *existing* counter handle under `name`, replacing
    /// any previous registration.
    ///
    /// This is how per-instance subsystems (each [`bsdfs`-style] file
    /// system owns its own cache counters) attach to a shared registry:
    /// the instance keeps its handle, the registry exports the same
    /// cell.
    ///
    /// [`bsdfs`-style]: crate
    pub fn attach_counter(&self, name: &str, counter: &Counter) {
        let mut map = self.metrics.lock().expect("registry lock");
        map.insert(name.to_string(), Metric::Counter(counter.clone()));
    }

    /// Registers an existing histogram handle under `name`, replacing
    /// any previous registration.
    pub fn attach_histogram(&self, name: &str, histogram: &Histogram) {
        let mut map = self.metrics.lock().expect("registry lock");
        map.insert(name.to_string(), Metric::Histogram(histogram.clone()));
    }

    /// Registers an existing gauge handle under `name`, replacing any
    /// previous registration.
    pub fn attach_gauge(&self, name: &str, gauge: &Gauge) {
        let mut map = self.metrics.lock().expect("registry lock");
        map.insert(name.to_string(), Metric::Gauge(gauge.clone()));
    }

    /// Freezes every registered metric into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.lock().expect("registry lock");
        let mut snap = Snapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
                Metric::Span(s) => {
                    snap.spans.insert(name.clone(), s.snapshot());
                }
            }
        }
        snap
    }
}

/// Frozen registry contents, ready for assertions or serialization.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge high-water marks by name.
    pub gauges: BTreeMap<String, u64>,
    /// Span values by name.
    pub spans: BTreeMap<String, SpanSnapshot>,
    /// Histogram values by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// The counter value under `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The gauge high-water mark under `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The span values under `name`, if registered.
    pub fn span(&self, name: &str) -> Option<SpanSnapshot> {
        self.spans.get(name).copied()
    }

    /// The histogram values under `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms.get(name)
    }

    /// The distinct subsystems present: the first dotted component of
    /// every metric name.
    pub fn subsystems(&self) -> BTreeSet<String> {
        self.counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.spans.keys())
            .chain(self.histograms.keys())
            .map(|name| name.split('.').next().unwrap_or(name.as_str()).to_string())
            .collect()
    }

    /// Serializes to the stable `obs/v1` JSON schema with no metadata.
    pub fn to_json(&self) -> String {
        self.to_json_with_meta(&[])
    }

    /// Serializes to the stable `obs/v1` JSON schema.
    ///
    /// ```json
    /// {
    ///   "schema": "obs/v1",
    ///   "meta": {"git_sha": "…"},
    ///   "counters": {"name": 3},
    ///   "gauges": {"name": 7},
    ///   "spans": {"name": {"count": 1, "total_ns": 42}},
    ///   "histograms": {
    ///     "name": {"count": 2, "sum": 10, "min": 4, "max": 6,
    ///              "buckets": [[4, 8, 2]]}
    ///   }
    /// }
    /// ```
    ///
    /// Histogram buckets are `[lo, hi, weight]` triples over the
    /// half-open value range `[lo, hi)`; empty buckets are omitted. Map
    /// iteration is sorted, so the layout is deterministic.
    pub fn to_json_with_meta(&self, meta: &[(&str, String)]) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.string("obs/v1");
        w.key("meta");
        w.begin_object();
        for (k, v) in meta {
            w.key(k);
            w.string(v);
        }
        w.end_object();
        w.key("counters");
        w.begin_object();
        for (name, value) in &self.counters {
            w.key(name);
            w.number(*value);
        }
        w.end_object();
        w.key("gauges");
        w.begin_object();
        for (name, value) in &self.gauges {
            w.key(name);
            w.number(*value);
        }
        w.end_object();
        w.key("spans");
        w.begin_object();
        for (name, s) in &self.spans {
            w.key(name);
            w.begin_object();
            w.key("count");
            w.number(s.count);
            w.key("total_ns");
            w.number(s.total_ns);
            w.end_object();
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for (name, h) in &self.histograms {
            w.key(name);
            w.begin_object();
            w.key("count");
            w.number(h.count);
            w.key("sum");
            w.number(h.sum);
            w.key("min");
            w.number(h.min);
            w.key("max");
            w.number(h.max);
            w.key("buckets");
            w.begin_array();
            for b in &h.buckets {
                w.begin_array();
                w.number(b.lo);
                w.number(b.hi);
                w.number(b.weight);
                w.end_array();
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_same_cell() {
        let reg = Registry::new();
        reg.counter("a.x").add(2);
        reg.counter("a.x").add(3);
        assert_eq!(reg.snapshot().counter("a.x"), Some(5));
    }

    #[test]
    #[should_panic(expected = "not a histogram")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("a.x");
        let _ = reg.histogram("a.x");
    }

    #[test]
    fn gauge_keeps_high_water_mark() {
        let reg = Registry::new();
        reg.gauge("pipe.peak").record(9);
        reg.gauge("pipe.peak").record(4);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("pipe.peak"), Some(9));
        assert!(snap.to_json().contains("\"gauges\""));
        assert!(snap.to_json().contains("\"pipe.peak\": 9"));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn gauge_kind_mismatch_panics() {
        let reg = Registry::new();
        let _ = reg.counter("a.y");
        let _ = reg.gauge("a.y");
    }

    #[test]
    fn attach_gauge_exports_live_handle() {
        let reg = Registry::new();
        let g = Gauge::new();
        reg.attach_gauge("fs.live_peak", &g);
        g.record(11);
        assert_eq!(reg.snapshot().gauge("fs.live_peak"), Some(11));
    }

    #[test]
    fn attach_exports_live_instance_handles() {
        let reg = Registry::new();
        let c = Counter::new();
        reg.attach_counter("fs.hits", &c);
        c.add(7); // Mutation *after* attach is visible in snapshots.
        assert_eq!(reg.snapshot().counter("fs.hits"), Some(7));
    }

    #[test]
    fn subsystems_are_first_dotted_components() {
        let reg = Registry::new();
        reg.counter("bsdfs.cache.hits").inc();
        reg.counter("fstrace.codec.records").inc();
        let _ = reg.span("cachesim.sweep.cell");
        let _ = reg.histogram("workload.sizes");
        let subs: Vec<String> = reg.snapshot().subsystems().into_iter().collect();
        assert_eq!(subs, vec!["bsdfs", "cachesim", "fstrace", "workload"]);
    }

    #[test]
    fn json_schema_is_stable_and_sorted() {
        let reg = Registry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").add(1);
        reg.histogram("h.sizes").record(5);
        reg.span("s.phase").record_ns(9);
        let json = reg
            .snapshot()
            .to_json_with_meta(&[("git_sha", "abc123".to_string())]);
        assert!(json.starts_with("{\n  \"schema\": \"obs/v1\""));
        assert!(json.contains("\"git_sha\": \"abc123\""));
        // Sorted counter order.
        let a = json.find("\"a.first\": 1").expect("a.first");
        let b = json.find("\"b.second\": 2").expect("b.second");
        assert!(a < b);
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"total_ns\": 9"));
        assert!(json.contains("[\n          4,\n          8,\n          1\n        ]"));
    }

    #[test]
    fn snapshot_accessors() {
        let reg = Registry::new();
        reg.span("x.t").record_ns(5);
        reg.histogram("x.h").record(3);
        let snap = reg.snapshot();
        assert_eq!(snap.span("x.t").expect("span").total_ns, 5);
        assert_eq!(snap.histogram("x.h").expect("hist").count, 1);
        assert_eq!(snap.counter("missing"), None);
    }
}
