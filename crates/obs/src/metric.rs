//! The three metric kinds: counters, histograms, and spans.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use simstat::{Bucket, LogHistogram};

/// A lock-free monotonic counter.
///
/// Cloning a `Counter` clones the *handle*; all clones share one atomic
/// cell, which is what lets a cache keep its handle on the hot path
/// while a [`crate::Registry`] exports the same cell by name.
///
/// # Examples
///
/// ```
/// use obs::Counter;
///
/// let c = Counter::new();
/// let handle = c.clone();
/// c.add(2);
/// handle.inc();
/// assert_eq!(c.get(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free high-water-mark gauge.
///
/// [`Gauge::record`] keeps the *maximum* value ever observed, which is
/// the right shape for bounded-memory claims: a streaming stage records
/// its current buffer occupancy on every push, and the snapshot reports
/// the peak — `fstrace.pipeline.buffered_records_peak` staying flat
/// while trace length grows is the observable form of "memory is
/// O(live sessions), not O(records)". Clones share one atomic cell,
/// like [`Counter`].
///
/// # Examples
///
/// ```
/// use obs::Gauge;
///
/// let g = Gauge::new();
/// g.record(7);
/// g.record(3); // Lower values never shrink the high-water mark.
/// assert_eq!(g.get(), 7);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Records an observation, keeping the maximum seen so far.
    pub fn record(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current high-water mark.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Accumulated wall-clock time for one named scope.
///
/// A span records how many times the scope was entered and the total
/// nanoseconds spent inside it. Like [`Counter`], clones share one pair
/// of atomic cells, so worker threads can record into the same span
/// without locks.
///
/// # Examples
///
/// ```
/// use obs::Span;
///
/// let span = Span::new();
/// {
///     let _guard = span.start(); // Records on drop.
/// }
/// span.record_ns(1_000);
/// assert_eq!(span.count(), 2);
/// assert!(span.total_ns() >= 1_000);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Span(Arc<SpanCells>);

#[derive(Debug, Default)]
struct SpanCells {
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl Span {
    /// Creates an empty span.
    pub fn new() -> Self {
        Span::default()
    }

    /// Enters the scope; the returned guard records elapsed wall-clock
    /// time when dropped.
    pub fn start(&self) -> SpanGuard {
        SpanGuard {
            span: self.clone(),
            started: Instant::now(),
        }
    }

    /// Records one entry of `ns` nanoseconds directly (for callers that
    /// measure time themselves).
    pub fn record_ns(&self, ns: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded entries.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Total recorded nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.0.total_ns.load(Ordering::Relaxed)
    }

    /// Freezes the span into a value snapshot.
    pub fn snapshot(&self) -> SpanSnapshot {
        SpanSnapshot {
            count: self.count(),
            total_ns: self.total_ns(),
        }
    }
}

/// RAII guard produced by [`Span::start`].
#[derive(Debug)]
pub struct SpanGuard {
    span: Span,
    started: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.span.record_ns(ns);
    }
}

/// Frozen [`Span`] values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Number of recorded entries.
    pub count: u64,
    /// Total recorded nanoseconds.
    pub total_ns: u64,
}

/// A value recorder over power-of-two buckets, for latencies and sizes.
///
/// Backed by [`simstat::LogHistogram`] — the same fixed-memory bucketing
/// the paper-facing analyses use — plus exact count, sum, min, and max.
/// The mutex is uncontended in practice (recording sites are either
/// single-threaded or coarse-grained); the atomic counters stay on the
/// hottest paths.
///
/// # Examples
///
/// ```
/// use obs::Histogram;
///
/// let h = Histogram::new();
/// h.record(100);
/// h.record(300);
/// let s = h.snapshot();
/// assert_eq!(s.count, 2);
/// assert_eq!(s.sum, 400);
/// assert_eq!((s.min, s.max), (100, 300));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<Mutex<HistCells>>);

#[derive(Debug, Default)]
struct HistCells {
    hist: LogHistogram,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let mut cells = self.0.lock().expect("histogram lock");
        cells.hist.add(value);
        if cells.count == 0 {
            cells.min = value;
            cells.max = value;
        } else {
            cells.min = cells.min.min(value);
            cells.max = cells.max.max(value);
        }
        cells.count += 1;
        cells.sum = cells.sum.saturating_add(value);
    }

    /// Freezes the histogram into a value snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let cells = self.0.lock().expect("histogram lock");
        HistSnapshot {
            count: cells.count,
            sum: cells.sum,
            min: cells.min,
            max: cells.max,
            buckets: cells
                .hist
                .buckets()
                .into_iter()
                .filter(|b| b.weight > 0)
                .collect(),
        }
    }
}

/// Frozen [`Histogram`] values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty power-of-two buckets, in increasing value order.
    pub buckets: Vec<Bucket>,
}

impl HistSnapshot {
    /// Mean observed value under the workspace zero-division convention
    /// (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        crate::ratio(self.sum, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_one_cell() {
        let a = Counter::new();
        let b = a.clone();
        a.add(5);
        b.inc();
        assert_eq!(a.get(), 6);
        assert_eq!(b.get(), 6);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let s = Span::new();
        {
            let _g = s.start();
            std::hint::black_box(0u64);
        }
        assert_eq!(s.count(), 1);
        // Wall-clock may legitimately read 0 ns on coarse clocks, so
        // only the entry count is asserted exactly.
        let snap = s.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.total_ns, s.total_ns());
    }

    #[test]
    fn span_record_ns_accumulates() {
        let s = Span::new();
        s.record_ns(10);
        s.record_ns(32);
        assert_eq!(s.count(), 2);
        assert_eq!(s.total_ns(), 42);
    }

    #[test]
    fn histogram_tracks_extremes_and_buckets() {
        let h = Histogram::new();
        for v in [4u64, 1, 9, 1] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 15);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
        assert!((s.mean() - 3.75).abs() < 1e-12);
        // [1,2) holds two, [4,8) one, [8,16) one; empty buckets dropped.
        let weights: Vec<u64> = s.buckets.iter().map(|b| b.weight).collect();
        assert_eq!(weights, vec![2, 1, 1]);
    }

    #[test]
    fn empty_histogram_snapshot() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn concurrent_counting_loses_nothing() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
