//! Substrate throughput benchmarks: codecs, file system operations,
//! cache engine, analyzer, and workload generation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use bsdfs::{Fs, FsParams, OpenFlags};
use cachesim::{BlockCache, BlockId, CacheConfig, WritePolicy};
use fstrace::{FileId, Trace};
use simstat::{Distribution, LogHistogram};
use workload::{generate, MachineProfile, WorkloadConfig};

fn small_trace() -> Trace {
    generate(&WorkloadConfig {
        profile: MachineProfile::ucbarpa(),
        seed: 11,
        duration_hours: 0.1,
        ..WorkloadConfig::default()
    })
    .expect("generation")
    .trace
}

fn bench_codec(c: &mut Criterion) {
    let trace = small_trace();
    let bytes = trace.to_binary();
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode_binary", |b| b.iter(|| trace.to_binary()));
    g.bench_function("decode_binary", |b| {
        b.iter(|| Trace::from_binary(&bytes).unwrap())
    });
    let mut text = Vec::new();
    trace.write_text(&mut text).unwrap();
    let text = String::from_utf8(text).unwrap();
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("decode_text", |b| {
        b.iter(|| Trace::from_text(&text).unwrap())
    });
    g.finish();
}

fn bench_bsdfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("bsdfs");
    g.bench_function("create_write_close_unlink_8k", |b| {
        let mut fs = Fs::new(FsParams::bsd42()).unwrap();
        fs.set_trace_enabled(false);
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            let fd = fs.open("/bench", OpenFlags::create_write(), 0, t).unwrap();
            fs.write(fd, 8192, t).unwrap();
            fs.close(fd, t).unwrap();
            fs.unlink("/bench", 0, t).unwrap();
        });
    });
    g.bench_function("path_lookup_cached", |b| {
        let mut fs = Fs::new(FsParams::bsd42()).unwrap();
        fs.set_trace_enabled(false);
        fs.mkdir("/a", 0, 0).unwrap();
        fs.mkdir("/a/b", 0, 0).unwrap();
        let fd = fs
            .open("/a/b/target", OpenFlags::create_write(), 0, 0)
            .unwrap();
        fs.close(fd, 0).unwrap();
        b.iter(|| fs.stat("/a/b/target", 1).unwrap());
    });
    g.finish();
}

fn bench_cache_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_engine");
    let cfg = CacheConfig {
        cache_bytes: 4 << 20,
        block_size: 4096,
        write_policy: WritePolicy::DelayedWrite,
        ..CacheConfig::default()
    };
    g.bench_function("lru_access_hot", |b| {
        let mut cache = BlockCache::new(&cfg);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cache.read(
                BlockId {
                    file: FileId(i % 8),
                    block: i % 64,
                },
                i,
            );
        });
    });
    g.bench_function("lru_access_streaming", |b| {
        let mut cache = BlockCache::new(&cfg);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cache.read(
                BlockId {
                    file: FileId(1),
                    block: i, // Never reused: constant eviction.
                },
                i,
            );
        });
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let trace = small_trace();
    let cfg = CacheConfig::default();
    let events = cachesim::replay_events(&trace, &cfg);
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(events.len() as u64));
    g.bench_function("replay_events_expand", |b| {
        b.iter(|| cachesim::replay_events(&trace, &cfg))
    });
    g.bench_function("simulate_400k", |b| {
        b.iter(|| cachesim::Simulator::run_events(&events, &cfg))
    });
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let trace = small_trace();
    let mut g = c.benchmark_group("analysis");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("session_reconstruction", |b| b.iter(|| trace.sessions()));
    let sessions = trace.sessions();
    g.bench_function("sequentiality", |b| {
        b.iter(|| fsanalysis::SequentialityReport::analyze(&sessions))
    });
    g.bench_function("lifetimes", |b| {
        b.iter(|| fsanalysis::LifetimeAnalysis::analyze(&trace))
    });
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload");
    g.sample_size(10);
    g.bench_function("generate_0.05h_a5", |b| {
        b.iter(|| {
            generate(&WorkloadConfig {
                profile: MachineProfile::ucbarpa(),
                seed: 3,
                duration_hours: 0.05,
                ..WorkloadConfig::default()
            })
            .unwrap()
        })
    });
    g.finish();
}

fn bench_simstat(c: &mut Criterion) {
    let mut g = c.benchmark_group("simstat");
    g.bench_function("log_histogram_insert", |b| {
        let mut h = LogHistogram::new();
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.add(i >> 33);
        });
    });
    g.bench_function("distribution_query", |b| {
        let mut d = Distribution::new();
        for i in 0..100_000u64 {
            d.add(i * 37 % 10_000, 1);
        }
        b.iter(|| d.fraction_le(5_000));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_bsdfs,
    bench_cache_engine,
    bench_simulator,
    bench_analysis,
    bench_workload,
    bench_simstat
);
criterion_main!(benches);
