//! Sweep-engine scaling benchmark: the Table VI 6 x 4 grid simulated
//! on one worker thread versus all available cores, plus the shared
//! expansion itself. The two grid timings show the multi-core speedup
//! (results are bit-identical either way), and the profiled/direct
//! pair shows the single-pass stack-distance engine against 24
//! independent replays of the same event stream.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use cachesim::{replay_events, stack, sweep, CacheConfig, WritePolicy};
use fstrace::Trace;
use workload::{generate, MachineProfile, WorkloadConfig};

fn a5_trace() -> Trace {
    generate(&WorkloadConfig {
        profile: MachineProfile::ucbarpa(),
        seed: 1985,
        duration_hours: 0.2,
        ..WorkloadConfig::default()
    })
    .expect("workload")
    .trace
}

fn table_vi_grid() -> Vec<CacheConfig> {
    [390u64, 1024, 2048, 4096, 8192, 16_384]
        .iter()
        .flat_map(|&kb| {
            WritePolicy::TABLE_VI.into_iter().map(move |p| CacheConfig {
                cache_bytes: kb * 1024,
                block_size: 4096,
                write_policy: p,
                ..CacheConfig::default()
            })
        })
        .collect()
}

fn bench_sweep(c: &mut Criterion) {
    let trace = a5_trace();
    let grid = table_vi_grid();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    g.throughput(Throughput::Elements(grid.len() as u64));
    g.bench_function("table6_grid_1_thread", |b| {
        b.iter(|| sweep::run_with_jobs(&trace, &grid, 1))
    });
    g.bench_function(format!("table6_grid_{cores}_threads"), |b| {
        b.iter(|| sweep::run_with_jobs(&trace, &grid, cores))
    });
    // Fixed worker count so the bench exercises the threaded path even
    // on single-core machines (measures spawn/queue overhead there).
    g.bench_function("table6_grid_4_workers", |b| {
        b.iter(|| sweep::run_with_jobs(&trace, &grid, 4))
    });
    g.bench_function("expansion_alone", |b| {
        b.iter(|| replay_events(&trace, &grid[0]))
    });
    // Single-pass stack-distance profiling versus 24 direct replays,
    // both on one worker so the comparison is pure algorithm.
    g.bench_function("table6_profiled_single_pass", |b| {
        stack::set_enabled(true);
        b.iter(|| sweep::run_with_jobs(&trace, &grid, 1))
    });
    g.bench_function("table6_direct_24_replays", |b| {
        stack::set_enabled(false);
        b.iter(|| sweep::run_with_jobs(&trace, &grid, 1));
        stack::set_enabled(true);
    });
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
