//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! replacement policy, whole-block-overwrite elision, delete
//! invalidation, read-write billing, and the bsdfs write policies.
//!
//! Each target reports the *work* (wall time) of the configuration;
//! the printed `disk_ios` side effects are what the ablation studies
//! in EXPERIMENTS.md cite.

use criterion::{criterion_group, criterion_main, Criterion};

use bsdfs::{BufWritePolicy, Fs, FsParams, OpenFlags};
use cachesim::{replay_events, CacheConfig, Replacement, RwHandling, Simulator, WritePolicy};
use fstrace::Trace;
use workload::{generate, MachineProfile, WorkloadConfig};

fn trace() -> Trace {
    generate(&WorkloadConfig {
        profile: MachineProfile::ucbarpa(),
        seed: 21,
        duration_hours: 0.15,
        ..WorkloadConfig::default()
    })
    .expect("generation")
    .trace
}

fn bench_replacement(c: &mut Criterion) {
    let t = trace();
    let base = CacheConfig {
        cache_bytes: 1 << 20,
        write_policy: WritePolicy::DelayedWrite,
        ..CacheConfig::default()
    };
    let events = replay_events(&t, &base);
    let mut g = c.benchmark_group("ablation_replacement");
    for (name, repl) in [("lru", Replacement::Lru), ("fifo", Replacement::Fifo)] {
        let cfg = CacheConfig {
            replacement: repl,
            ..base.clone()
        };
        let ios = Simulator::run_events(&events, &cfg).disk_ios();
        g.bench_function(format!("{name}_ios_{ios}"), |b| {
            b.iter(|| Simulator::run_events(&events, &cfg))
        });
    }
    g.finish();
}

fn bench_elision_and_invalidation(c: &mut Criterion) {
    let t = trace();
    let base = CacheConfig {
        cache_bytes: 1 << 20,
        write_policy: WritePolicy::DelayedWrite,
        ..CacheConfig::default()
    };
    let events = replay_events(&t, &base);
    let mut g = c.benchmark_group("ablation_mechanisms");
    let variants: [(&str, CacheConfig); 3] = [
        ("full", base.clone()),
        (
            "no_elision",
            CacheConfig {
                whole_block_elision: false,
                ..base.clone()
            },
        ),
        (
            "no_invalidation",
            CacheConfig {
                invalidate_on_delete: false,
                ..base.clone()
            },
        ),
    ];
    for (name, cfg) in variants {
        let ios = Simulator::run_events(&events, &cfg).disk_ios();
        g.bench_function(format!("{name}_ios_{ios}"), |b| {
            b.iter(|| Simulator::run_events(&events, &cfg))
        });
    }
    g.finish();
}

fn bench_rw_handling(c: &mut Criterion) {
    let t = trace();
    let mut g = c.benchmark_group("ablation_rw_billing");
    for (name, rw) in [
        ("as_write", RwHandling::Write),
        ("as_read", RwHandling::Read),
        ("as_both", RwHandling::Both),
    ] {
        let cfg = CacheConfig {
            cache_bytes: 1 << 20,
            write_policy: WritePolicy::DelayedWrite,
            rw_handling: rw,
            ..CacheConfig::default()
        };
        let ios = Simulator::run(&t, &cfg).disk_ios();
        g.bench_function(format!("{name}_ios_{ios}"), |b| {
            b.iter(|| Simulator::run(&t, &cfg))
        });
    }
    g.finish();
}

fn bench_bsdfs_write_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bsdfs_policy");
    g.sample_size(10);
    for (name, policy) in [
        ("write_through", BufWritePolicy::WriteThrough),
        (
            "flush_30s",
            BufWritePolicy::FlushBack {
                interval_ms: 30_000,
            },
        ),
        ("delayed", BufWritePolicy::DelayedWrite),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut fs = Fs::with_policy(FsParams::small(), policy).unwrap();
                fs.set_trace_enabled(false);
                for i in 0..50u64 {
                    let p = format!("/f{i}");
                    let fd = fs.open(&p, OpenFlags::create_write(), 0, i * 100).unwrap();
                    fs.write(fd, 6_000, i * 100).unwrap();
                    fs.close(fd, i * 100 + 50).unwrap();
                    if i % 2 == 0 {
                        fs.unlink(&p, 0, i * 100 + 60).unwrap();
                    }
                }
                fs.sync(10_000);
                fs.disk_stats().total_ops()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_replacement,
    bench_elision_and_invalidation,
    bench_rw_handling,
    bench_bsdfs_write_policies
);
criterion_main!(benches);
