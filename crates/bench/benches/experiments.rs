//! Experiment regeneration benchmarks: one target per table/figure of
//! the paper, each timing the full driver on a standard trace set.
//!
//! These double as the benchmark form of the reproduction harness (the
//! `repro` binary prints the same rows).

use criterion::{criterion_group, criterion_main, Criterion};

use bsdtrace::{experiments, ReproConfig, TraceSet};

fn standard_set() -> TraceSet {
    TraceSet::generate(&ReproConfig {
        hours: 0.2,
        seed: 1985,
        ..ReproConfig::default()
    })
    .expect("trace set")
}

fn bench_experiments(c: &mut Criterion) {
    let set = standard_set();
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("table1_selected_results", |b| {
        b.iter(|| experiments::table1::run(&set))
    });
    g.bench_function("table3_overall_statistics", |b| {
        b.iter(|| experiments::table3::run(&set))
    });
    g.bench_function("table4_system_activity", |b| {
        b.iter(|| experiments::table4::run(&set))
    });
    g.bench_function("table5_sequentiality", |b| {
        b.iter(|| experiments::table5::run(&set))
    });
    g.bench_function("fig1_run_lengths", |b| {
        b.iter(|| experiments::fig1::run(&set))
    });
    g.bench_function("fig2_file_sizes", |b| {
        b.iter(|| experiments::fig2::run(&set))
    });
    g.bench_function("fig3_open_times", |b| {
        b.iter(|| experiments::fig3::run(&set))
    });
    g.bench_function("fig4_lifetimes", |b| {
        b.iter(|| experiments::fig4::run(&set))
    });
    g.bench_function("gaps_section31", |b| {
        b.iter(|| experiments::gaps::run(&set))
    });
    g.bench_function("table6_fig5_cache_size_policy", |b| {
        b.iter(|| experiments::table6::run(&set))
    });
    g.bench_function("table7_fig6_block_size", |b| {
        b.iter(|| experiments::table7::run(&set))
    });
    g.bench_function("fig7_paging", |b| b.iter(|| experiments::fig7::run(&set)));
    g.bench_function("residency_section62", |b| {
        b.iter(|| experiments::residency::run(&set))
    });
    g.bench_function("comparisons_section64", |b| {
        b.iter(|| experiments::comparisons::run(&set))
    });
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.sample_size(10);
    g.bench_function("all_three_traces_0.1h", |b| {
        b.iter(|| {
            TraceSet::generate(&ReproConfig {
                hours: 0.1,
                seed: 5,
                ..ReproConfig::default()
            })
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_experiments, bench_trace_generation);
criterion_main!(benches);
