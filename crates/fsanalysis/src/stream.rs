//! Single-pass streaming analysis: every analyzer in this crate as an
//! incremental consumer, driven once per trace.
//!
//! The batch `analyze(...)` entry points materialize nothing extra: each
//! is a thin wrapper over the [`Analyzer`] implementation in its module,
//! and [`run_analyzers`] drives *all* of them over one pass of the
//! record stream, sharing a single [`SessionBuilder`] for the run
//! deduction. Memory is bounded by the number of simultaneously open
//! files plus the analyzers' own summaries — never by trace length — so
//! a multi-day trace streams straight from disk.
//!
//! # Fidelity
//!
//! In the replay-fidelity taxonomy (`cachesim::Fidelity`, DESIGN.md
//! §15) this suite is open/syscall-level *by construction*: analyzers
//! consume records and [`OpenSession`]s — never block decompositions —
//! so its results are invariant across replay fidelities. It is fed
//! through the same record layer as the expanders, which is what lets
//! one trace pass drive both Section-5 analysis and any-fidelity cache
//! replay.
//!
//! # Contract
//!
//! An [`Analyzer`] sees, in trace order:
//!
//! 1. [`Analyzer::observe`] for every record;
//! 2. [`Analyzer::on_session`] immediately after the `close` record that
//!    completed the session (after `observe` of that same record);
//! 3. [`Analyzer::on_unclosed`] at end of stream for each never-closed
//!    session, ordered by `(open_time, open_id)`;
//! 4. [`Analyzer::finish`] exactly once to produce the result.

use fstrace::{OpenSession, SessionBuilder, TraceRecord};

use crate::activity::{ActivityAnalysis, ActivityBuilder};
use crate::intervals::{EventGapAnalysis, EventGapBuilder};
use crate::lifetime::{LifetimeAnalysis, LifetimeBuilder};
use crate::opentime::{OpenTimeAnalysis, OpenTimeBuilder};
use crate::sequential::{
    RunLengthAnalysis, RunLengthBuilder, SequentialityBuilder, SequentialityReport,
};
use crate::sizes::{FileSizeAnalysis, FileSizeBuilder};
use crate::users::{UserAnalysis, UserAnalysisBuilder};

/// An incremental trace analyzer.
///
/// Implementations accumulate state from records and reconstructed
/// sessions, then produce their summary in [`Analyzer::finish`]. The
/// default method bodies ignore the corresponding input, so a purely
/// session-driven analyzer implements only [`Analyzer::on_session`] and
/// a purely record-driven one only [`Analyzer::observe`].
pub trait Analyzer {
    /// The summary produced at the end of the stream.
    type Output;

    /// Feeds one trace record, in time order.
    fn observe(&mut self, _rec: &TraceRecord) {}

    /// Feeds a session completed by the record just observed.
    fn on_session(&mut self, _s: &OpenSession) {}

    /// Feeds a session still open when the stream ended
    /// (`close_time == None`).
    fn on_unclosed(&mut self, _s: &OpenSession) {}

    /// Consumes the analyzer, producing its summary.
    fn finish(self) -> Self::Output;
}

/// The result of one shared pass over a trace: every analysis this
/// crate offers, computed together.
#[derive(Debug, Clone)]
pub struct AnalysisSuite {
    /// Table IV: users, active users, per-user throughput.
    pub activity: ActivityAnalysis,
    /// Table V: sequentiality by access mode.
    pub sequentiality: SequentialityReport,
    /// Figure 1: sequential run lengths.
    pub run_lengths: RunLengthAnalysis,
    /// Figure 2: dynamic file sizes at close.
    pub sizes: FileSizeAnalysis,
    /// Figure 3: open durations.
    pub open_times: OpenTimeAnalysis,
    /// Figure 4: new-file lifetimes.
    pub lifetimes: LifetimeAnalysis,
    /// Section 3.1: event-gap bounds.
    pub gaps: EventGapAnalysis,
    /// Table IV extension: per-user burstiness.
    pub users: UserAnalysis,
}

/// Drives all analyzers over one record stream with one shared
/// [`SessionBuilder`].
///
/// Feed records with [`AnalysisStream::observe`], then call
/// [`AnalysisStream::finish`]. Live memory is reported by
/// [`AnalysisStream::live_sessions`].
pub struct AnalysisStream {
    sessions: SessionBuilder,
    activity: ActivityBuilder,
    sequentiality: SequentialityBuilder,
    run_lengths: RunLengthBuilder,
    sizes: FileSizeBuilder,
    open_times: OpenTimeBuilder,
    lifetimes: LifetimeBuilder,
    gaps: EventGapBuilder,
    users: UserAnalysisBuilder,
}

impl AnalysisStream {
    /// Creates a stream computing activity over the given window lengths
    /// (in seconds; the paper uses 600 and 10).
    pub fn new(window_secs: &[u64]) -> Self {
        AnalysisStream {
            sessions: SessionBuilder::new(),
            activity: ActivityBuilder::new(window_secs),
            sequentiality: SequentialityBuilder::default(),
            run_lengths: RunLengthBuilder::default(),
            sizes: FileSizeBuilder::default(),
            open_times: OpenTimeBuilder::default(),
            lifetimes: LifetimeBuilder::default(),
            gaps: EventGapBuilder::default(),
            users: UserAnalysisBuilder::default(),
        }
    }

    /// Feeds one record to every analyzer, dispatching any session the
    /// record completes.
    pub fn observe(&mut self, rec: &TraceRecord) {
        self.activity.observe(rec);
        self.lifetimes.observe(rec);
        self.gaps.observe(rec);
        if let Some(s) = self.sessions.observe(rec) {
            self.sequentiality.on_session(&s);
            self.run_lengths.on_session(&s);
            self.sizes.on_session(&s);
            self.open_times.on_session(&s);
            self.lifetimes.on_session(&s);
            self.users.on_session(&s);
        }
    }

    /// Feeds every record of a decoded columnar block, in order — the
    /// batched twin of [`AnalysisStream::observe`] for
    /// [`fstrace::RecordBlock`] producers. Each record is materialized
    /// from the columns on the stack; results are bit-identical to
    /// observing the records one by one.
    pub fn observe_block(&mut self, block: &fstrace::RecordBlock) {
        for i in 0..block.len() {
            self.observe(&block.get(i));
        }
    }

    /// Number of sessions currently held open — the stream's live
    /// memory, O(simultaneously open files).
    pub fn live_sessions(&self) -> usize {
        self.sessions.live_sessions()
    }

    /// Greatest number of simultaneously open sessions seen so far.
    pub fn live_sessions_peak(&self) -> usize {
        self.sessions.live_sessions_peak()
    }

    /// Flushes unclosed sessions and produces every analysis.
    pub fn finish(self) -> AnalysisSuite {
        let AnalysisStream {
            sessions,
            mut activity,
            sequentiality,
            mut run_lengths,
            sizes,
            open_times,
            lifetimes,
            gaps,
            mut users,
        } = self;
        let (unclosed, _anomalies) = sessions.finish();
        for s in &unclosed {
            activity.on_unclosed(s);
            run_lengths.on_unclosed(s);
            users.on_unclosed(s);
        }
        AnalysisSuite {
            activity: activity.finish(),
            sequentiality: sequentiality.finish(),
            run_lengths: run_lengths.finish(),
            sizes: sizes.finish(),
            open_times: open_times.finish(),
            lifetimes: lifetimes.finish(),
            gaps: gaps.finish(),
            users: users.finish(),
        }
    }
}

/// Runs every analyzer over `records` in a single shared pass.
///
/// `records` must be in time order (any [`fstrace::Trace`] is). This is
/// the streaming equivalent of calling each `analyze(...)` entry point
/// separately — and produces bit-identical results, because those entry
/// points are wrappers over the same builders.
///
/// Accepts borrowed or owned records (anything
/// `Borrow<TraceRecord>`), so both `Trace::records()` and decoded
/// archive streams feed it directly.
pub fn run_analyzers<I>(records: I, window_secs: &[u64]) -> AnalysisSuite
where
    I: IntoIterator,
    I::Item: std::borrow::Borrow<TraceRecord>,
{
    use std::borrow::Borrow;
    let mut stream = AnalysisStream::new(window_secs);
    for rec in records {
        stream.observe(rec.borrow());
    }
    stream.finish()
}

/// Runs every analyzer over a **block** stream in a single pass: one
/// reused [`fstrace::RecordBlock`] is refilled via
/// [`fstrace::FillBlock`] and drained through
/// [`AnalysisStream::observe_block`], so producers that recycle blocks
/// (e.g. `tracestore::PipelinedBlocks`) feed the whole suite with no
/// per-chunk allocation. Results are bit-identical to
/// [`run_analyzers`] over the same records.
pub fn run_analyzers_blocks<S: fstrace::FillBlock>(
    mut source: S,
    window_secs: &[u64],
) -> AnalysisSuite {
    let mut stream = AnalysisStream::new(window_secs);
    let mut block = fstrace::RecordBlock::new();
    while source.fill_next(&mut block) {
        stream.observe_block(&block);
    }
    stream.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fstrace::{AccessMode, Trace, TraceBuilder};

    /// A trace exercising every event kind, an unclosed open, and an
    /// orphan close.
    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        let u1 = b.new_user_id();
        let u2 = b.new_user_id();

        let f1 = b.new_file_id();
        let o = b.open(0, f1, u1, AccessMode::ReadOnly, 4_000, false);
        b.close(1_000, o, 4_000); // Whole-file read.

        let f2 = b.new_file_id();
        let o = b.open(2_000, f2, u2, AccessMode::WriteOnly, 0, true);
        b.close(2_500, o, 900); // New file written.

        let o = b.open(12_000, f2, u2, AccessMode::ReadWrite, 900, false);
        b.seek(12_100, o, 0, 900);
        b.close(12_400, o, 1_100); // Append 200 B.
        b.truncate(14_000, f2, 0, u2); // Death + rebirth.
        b.unlink(20_000, f2, u2); // Death.

        let f3 = b.new_file_id();
        b.execve(21_000, f3, u1, 32_000);
        b.open(22_000, f3, u1, AccessMode::ReadOnly, 32_000, false); // Unclosed.
        b.close(23_000, fstrace::OpenId(999), 10); // Orphan.
        b.finish()
    }

    #[test]
    fn suite_matches_individual_analyses() {
        let trace = sample();
        let windows = [600, 10];
        let suite = run_analyzers(trace.records(), &windows);

        let mut activity = ActivityAnalysis::analyze(&trace, &windows);
        assert_eq!(suite.activity.total_bytes, activity.total_bytes);
        assert_eq!(suite.activity.total_users, activity.total_users);
        assert_eq!(suite.activity.duration_secs, activity.duration_secs);
        let mut suite_activity = suite.activity.clone();
        for (a, b) in suite_activity.windows.iter_mut().zip(&mut activity.windows) {
            assert_eq!(a.max_active, b.max_active);
            assert_eq!(a.avg_active(), b.avg_active());
            assert_eq!(a.avg_throughput(), b.avg_throughput());
            assert_eq!(
                a.throughput_per_active.population_stddev(),
                b.throughput_per_active.population_stddev()
            );
        }

        let sessions = trace.sessions();
        let seq = SequentialityReport::analyze(&sessions);
        assert_eq!(suite.sequentiality.total_accesses(), seq.total_accesses());
        assert_eq!(suite.sequentiality.total_bytes(), seq.total_bytes());
        assert_eq!(
            suite.sequentiality.whole_file_fraction(),
            seq.whole_file_fraction()
        );

        let mut runs = RunLengthAnalysis::analyze(&sessions);
        let mut suite_runs = suite.run_lengths.clone();
        assert_eq!(
            suite_runs.by_runs.total_weight(),
            runs.by_runs.total_weight()
        );
        assert_eq!(
            suite_runs.fraction_of_bytes_le(1_000),
            runs.fraction_of_bytes_le(1_000)
        );

        let mut sizes = FileSizeAnalysis::analyze(&sessions);
        let mut suite_sizes = suite.sizes.clone();
        assert_eq!(
            suite_sizes.fraction_of_accesses_le(1_000),
            sizes.fraction_of_accesses_le(1_000)
        );

        let mut open_times = OpenTimeAnalysis::analyze(&sessions);
        let mut suite_open = suite.open_times.clone();
        assert_eq!(suite_open.median_ms(), open_times.median_ms());

        let lifetimes = LifetimeAnalysis::analyze(&trace);
        assert_eq!(suite.lifetimes.events, lifetimes.events);
        assert_eq!(suite.lifetimes.censored, lifetimes.censored);

        let mut gaps = EventGapAnalysis::analyze(&trace);
        let mut suite_gaps = suite.gaps.clone();
        assert_eq!(
            suite_gaps.gaps_ms.total_weight(),
            gaps.gaps_ms.total_weight()
        );
        assert_eq!(suite_gaps.fraction_le_secs(0.5), gaps.fraction_le_secs(0.5));

        let users = UserAnalysis::analyze(&trace);
        assert_eq!(suite.users.users, users.users);
    }

    #[test]
    fn live_sessions_track_open_files() {
        let mut b = TraceBuilder::new();
        let u = b.new_user_id();
        let f = b.new_file_id();
        let o1 = b.open(0, f, u, AccessMode::ReadOnly, 10, false);
        let o2 = b.open(5, f, u, AccessMode::ReadOnly, 10, false);
        b.close(10, o1, 10);
        b.close(20, o2, 10);
        let trace = b.finish();

        let mut stream = AnalysisStream::new(&[10]);
        let mut peak = 0;
        for rec in trace.records() {
            stream.observe(rec);
            peak = peak.max(stream.live_sessions());
        }
        assert_eq!(peak, 2);
        assert_eq!(stream.live_sessions(), 0);
        assert_eq!(stream.live_sessions_peak(), 2);
    }

    #[test]
    fn observe_block_matches_observe() {
        let trace = sample();
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for r in trace.records() {
            prev = fstrace::codec::encode_into(&mut buf, r, prev);
        }
        // Chop the encoded stream into 3-record blocks and feed those.
        let mut batched = AnalysisStream::new(&[600, 10]);
        let mut pos = 0;
        let mut ticks = 0u64;
        let mut block = fstrace::RecordBlock::new();
        while pos < buf.len() {
            ticks = fstrace::block::decode_block(&buf, &mut pos, ticks, buf.len(), 3, &mut block)
                .expect("well-formed");
            batched.observe_block(&block);
        }
        let batched = batched.finish();
        let streamed = run_analyzers(trace.records(), &[600, 10]);
        assert_eq!(batched.activity.total_bytes, streamed.activity.total_bytes);
        assert_eq!(
            batched.sequentiality.total_accesses(),
            streamed.sequentiality.total_accesses()
        );
        assert_eq!(batched.lifetimes.events, streamed.lifetimes.events);
        assert_eq!(batched.users.users, streamed.users.users);
        let (mut a, mut b) = (batched.open_times, streamed.open_times);
        assert_eq!(a.median_ms(), b.median_ms());
    }

    #[test]
    fn empty_stream_finishes_cleanly() {
        let suite = run_analyzers([].iter(), &[600]);
        assert_eq!(suite.activity.total_users, 0);
        assert_eq!(suite.sequentiality.total_accesses(), 0);
        assert_eq!(suite.lifetimes.censored, 0);
        assert!(suite.users.users.is_empty());
    }
}
